//! The transport seam: how fabric traffic leaves the process.
//!
//! [`Fabric`] routes every remote-bound message through a [`Transport`].
//! In-process universes use [`SharedMemTransport`], a stub that is never
//! actually called (every rank is local, so the fabric delivers straight
//! into the destination's match queues — the hot path pays exactly one
//! cached-bool branch for the seam's existence). Multiprocess universes
//! use [`SocketTransport`], the progress engine that carries the same
//! protocol over Unix-domain or TCP sockets:
//!
//! * **Eager**: the payload is framed and shipped; the receiving
//!   process's reader thread copies it into a pooled buffer and feeds it
//!   to the ordinary matching path ([`Fabric::deliver_wire_eager`]).
//! * **Rendezvous**: the sender pins its buffer in `pending_rdv` and
//!   ships an RTS. When the receiver matches it, the posted buffer parks
//!   with the transport and a CTS goes back; the sender's reader answers
//!   the CTS by framing the pinned bytes (the wire analogue of the
//!   zero-copy handoff) and only then sets the sender's completion, so
//!   `pready`/`parrived` and every completion stay the same lock-free
//!   atomics as in-process.
//! * **Barrier**: rank 0 coordinates; everyone ships `BarrierArrive`,
//!   rank 0 broadcasts `BarrierRelease` for the generation.
//! * **RMA**: windows announce their length to a remote origin; puts and
//!   gets become `Put`/`GetReq`/`GetResp` frames applied by the target's
//!   reader thread. Per-peer frames are FIFO, so every put of an epoch is
//!   applied before the completion/done message that follows it — remote
//!   flush rides on socket ordering.
//!
//! # Threading model
//!
//! Per peer: one **writer** thread owning the socket's write half and an
//! unbounded channel (senders only enqueue — a send can never block on a
//! remote process, so there is no distributed write-write deadlock), and
//! one **reader** thread owning the read half, dispatching frames into
//! the fabric. Abort tears both down: the failing process broadcasts an
//! `Abort` frame, then `shutdown(2)` unblocks its own readers.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use pcomm_net::frame::{
    Frame, ABORT_MESSAGE_LOST, ABORT_MISUSE, ABORT_MISUSE_RANK, ABORT_PEER_PANICKED,
};
use pcomm_net::{Endpoint, Mesh};

use crate::error::{PcommError, PeerSocketState};
use crate::fabric::{Fabric, PostedRecv};
use crate::sync::{Completion, Mutex};

/// Slice for non-unwinding waits in teardown paths (mirrors the
/// fabric's `WAIT_SLICE`).
const TEARDOWN_SLICE: Duration = Duration::from_millis(2);

/// Hard deadline on the finalize barrier: every healthy peer reaches it
/// as soon as its closure returns, so far past this something is wrong
/// and the run fails instead of hanging.
const FINALIZE_TIMEOUT: Duration = Duration::from_secs(30);

/// How a fabric reaches ranks hosted outside this process. All methods
/// except the introspective ones are called only for remote ranks of a
/// multiprocess run.
pub(crate) trait Transport: Send + Sync {
    /// The rank this process hosts (multiprocess runs).
    fn local_rank(&self) -> usize;

    /// Whether ranks live in separate processes.
    fn is_multiproc(&self) -> bool;

    /// Ship an eager payload to a remote rank.
    fn ship_eager(&self, dst: usize, shard: usize, ctx: u64, tag: i64, data: &[u8]);

    /// Ship a rendezvous RTS for a pinned source buffer; the buffer's
    /// `done` fires when the CTS comes back and the data has been framed.
    fn ship_rts(&self, dst: usize, shard: usize, ctx: u64, tag: i64, pinned: PinnedSend);

    /// Park a matched posted receive until the wire data lands, and
    /// answer the CTS.
    #[allow(clippy::too_many_arguments)] // one per envelope field
    fn accept_remote_rdv(
        &self,
        src: usize,
        rdv_id: u64,
        posted: PostedRecv,
        shard: usize,
        tag: i64,
        rts_ns: Option<u64>,
    );

    /// Cross-process barrier (rank 0 coordinates).
    fn barrier(&self, fabric: &Fabric, rank: usize);

    /// Announce a window's length to its remote origin.
    fn announce_win(&self, origin: usize, win_ctx: u64, len: usize);

    /// Block until the remote target announced the window; returns its
    /// length.
    fn wait_win_announce(&self, fabric: &Fabric, rank: usize, win_ctx: u64) -> usize;

    /// One-sided put into a remote window.
    fn put(&self, target: usize, win_ctx: u64, offset: usize, data: &[u8]);

    /// One-sided get from a remote window (blocking round trip).
    fn get(
        &self,
        fabric: &Fabric,
        rank: usize,
        target: usize,
        win_ctx: u64,
        offset: usize,
        len: usize,
    ) -> Vec<u8>;

    /// Socket health per peer, for stall reports.
    fn peer_states(&self) -> Vec<PeerSocketState>;

    /// Tell every peer the universe failed (first broadcast wins;
    /// subsequent calls are no-ops).
    fn broadcast_abort(&self, err: &PcommError);
}

/// A rendezvous source buffer pinned for the wire: the pointer stays
/// valid until `done` is set (fabric invariant (1) — the safe wrappers
/// block or hold the ticket until then).
pub(crate) struct PinnedSend {
    pub(crate) ptr: *const u8,
    pub(crate) len: usize,
    pub(crate) done: Arc<Completion>,
}

// SAFETY: the pointer is only read by the sender's own reader thread
// (answering the CTS) before `done.set()`; invariant (1) keeps the
// buffer alive and unmodified until then, and the post-abort grace in
// the drain paths covers a copy already in flight.
unsafe impl Send for PinnedSend {}

/// The in-process "transport": every rank is local, so nothing here can
/// ever be called. Exists so the fabric carries exactly one transport
/// object either way and the seam costs one cached branch.
pub(crate) struct SharedMemTransport;

impl Transport for SharedMemTransport {
    fn local_rank(&self) -> usize {
        0
    }

    fn is_multiproc(&self) -> bool {
        false
    }

    fn ship_eager(&self, _: usize, _: usize, _: u64, _: i64, _: &[u8]) {
        unreachable!("shared-memory fabric never routes through the wire")
    }

    fn ship_rts(&self, _: usize, _: usize, _: u64, _: i64, _: PinnedSend) {
        unreachable!("shared-memory fabric never routes through the wire")
    }

    fn accept_remote_rdv(&self, _: usize, _: u64, _: PostedRecv, _: usize, _: i64, _: Option<u64>) {
        unreachable!("shared-memory fabric never routes through the wire")
    }

    fn barrier(&self, _: &Fabric, _: usize) {
        unreachable!("in-process barriers use the fabric's condvar path")
    }

    fn announce_win(&self, _: usize, _: u64, _: usize) {
        unreachable!("shared-memory fabric never routes through the wire")
    }

    fn wait_win_announce(&self, _: &Fabric, _: usize, _: u64) -> usize {
        unreachable!("shared-memory fabric never routes through the wire")
    }

    fn put(&self, _: usize, _: u64, _: usize, _: &[u8]) {
        unreachable!("shared-memory fabric never routes through the wire")
    }

    fn get(&self, _: &Fabric, _: usize, _: usize, _: u64, _: usize, _: usize) -> Vec<u8> {
        unreachable!("shared-memory fabric never routes through the wire")
    }

    fn peer_states(&self) -> Vec<PeerSocketState> {
        Vec::new()
    }

    fn broadcast_abort(&self, _: &PcommError) {}
}

/// What the writer thread consumes.
enum WriterMsg {
    /// An encoded frame to put on the wire.
    Frame(Vec<u8>),
    /// Flush and exit (teardown).
    Shutdown,
}

/// A pinned rendezvous send waiting for its CTS.
struct PendingRdv {
    pinned: PinnedSend,
    dst: usize,
}

/// A matched posted receive waiting for its wire data.
struct RemoteRecv {
    posted: PostedRecv,
    shard: usize,
    tag: i64,
    /// Local timestamp of the RTS frame's arrival, for the RdvCopy span.
    rts_ns: Option<u64>,
}

/// Per-peer socket machinery.
struct Peer {
    /// The original stream; kept for `shutdown` (which unblocks the
    /// reader on abort). Reader and writer own `try_clone`s.
    endpoint: Endpoint,
    tx: Sender<WriterMsg>,
    /// Taken by `start`.
    rx: Mutex<Option<Receiver<WriterMsg>>>,
    connected: Arc<AtomicBool>,
    frames_sent: Arc<AtomicU64>,
    frames_received: Arc<AtomicU64>,
    saw_bye: Arc<AtomicBool>,
    writer: Mutex<Option<JoinHandle<()>>>,
}

/// The socket progress engine: per-peer reader/writer threads plus the
/// request state they complete (see the module docs for the model).
pub(crate) struct SocketTransport {
    rank: usize,
    n_ranks: usize,
    peers: Vec<Option<Peer>>,
    next_rdv_id: AtomicU64,
    /// Sender side: pinned buffers waiting for a CTS, by rendezvous id.
    pending_rdv: Mutex<HashMap<u64, PendingRdv>>,
    /// Receiver side: matched buffers waiting for data, by (src, id).
    remote_recvs: Mutex<HashMap<(usize, u64), RemoteRecv>>,
    /// This process's barrier generation counter (SPMD-aligned).
    barrier_gen: AtomicU64,
    /// Rank 0 only: arrival counts per generation.
    arrivals: Mutex<HashMap<u64, usize>>,
    /// Release completions per generation (waiter or release creates).
    releases: Mutex<HashMap<u64, Arc<Completion>>>,
    /// Window announcements: completion + announced length per win ctx.
    #[allow(clippy::type_complexity)]
    win_slots: Mutex<HashMap<u64, (Arc<Completion>, Option<usize>)>>,
    next_get_token: AtomicU64,
    /// In-flight gets: completion + landing slot per token.
    #[allow(clippy::type_complexity)]
    get_waiters: Mutex<HashMap<u64, (Arc<Completion>, Arc<Mutex<Option<Vec<u8>>>>)>>,
    abort_sent: AtomicBool,
    readers: Mutex<Vec<JoinHandle<()>>>,
}

impl SocketTransport {
    /// Wrap an established mesh. Threads start in
    /// [`SocketTransport::start`], once the fabric exists.
    pub(crate) fn new(mesh: Mesh) -> SocketTransport {
        let rank = mesh.rank;
        let n_ranks = mesh.n_ranks;
        let peers = mesh
            .peers
            .into_iter()
            .map(|ep| {
                ep.map(|endpoint| {
                    let (tx, rx) = std::sync::mpsc::channel();
                    Peer {
                        endpoint,
                        tx,
                        rx: Mutex::new(Some(rx)),
                        connected: Arc::new(AtomicBool::new(true)),
                        frames_sent: Arc::new(AtomicU64::new(0)),
                        frames_received: Arc::new(AtomicU64::new(0)),
                        saw_bye: Arc::new(AtomicBool::new(false)),
                        writer: Mutex::new(None),
                    }
                })
            })
            .collect();
        SocketTransport {
            rank,
            n_ranks,
            peers,
            next_rdv_id: AtomicU64::new(0),
            pending_rdv: Mutex::new(HashMap::new()),
            remote_recvs: Mutex::new(HashMap::new()),
            barrier_gen: AtomicU64::new(0),
            arrivals: Mutex::new(HashMap::new()),
            releases: Mutex::new(HashMap::new()),
            win_slots: Mutex::new(HashMap::new()),
            next_get_token: AtomicU64::new(0),
            get_waiters: Mutex::new(HashMap::new()),
            abort_sent: AtomicBool::new(false),
            readers: Mutex::new(Vec::new()),
        }
    }

    /// Spawn the per-peer reader and writer threads. Called once, after
    /// the fabric referencing this transport exists.
    pub(crate) fn start(self: &Arc<SocketTransport>, fabric: &Arc<Fabric>) {
        let mut readers = self.readers.lock();
        for peer_rank in 0..self.n_ranks {
            let Some(peer) = &self.peers[peer_rank] else {
                continue;
            };
            let rx = peer
                .rx
                .lock()
                .take()
                .expect("SocketTransport::start called twice");
            let ep = peer.endpoint.try_clone().expect("endpoint clone");
            let sent = Arc::clone(&peer.frames_sent);
            let connected = Arc::clone(&peer.connected);
            let f = Arc::clone(fabric);
            let writer = std::thread::Builder::new()
                .name(format!("pcomm-wr{peer_rank}"))
                .spawn(move || writer_loop(ep, rx, f, peer_rank, sent, connected))
                .expect("spawn writer thread");
            *peer.writer.lock() = Some(writer);

            let ep = peer.endpoint.try_clone().expect("endpoint clone");
            let received = Arc::clone(&peer.frames_received);
            let connected = Arc::clone(&peer.connected);
            let saw_bye = Arc::clone(&peer.saw_bye);
            let t = Arc::clone(self);
            let f = Arc::clone(fabric);
            let reader = std::thread::Builder::new()
                .name(format!("pcomm-rd{peer_rank}"))
                .spawn(move || reader_loop(t, f, peer_rank, ep, received, connected, saw_bye))
                .expect("spawn reader thread");
            readers.push(reader);
        }
    }

    /// Enqueue one frame toward `dst` (never blocks; the writer thread
    /// does the I/O). Sends to an already-torn-down peer are dropped.
    fn send_frame(&self, dst: usize, frame: &Frame) {
        if let Some(peer) = &self.peers[dst] {
            let _ = peer.tx.send(WriterMsg::Frame(frame.encode()));
        }
    }

    /// Get-or-create the release completion for barrier generation
    /// `gen` (reader thread and waiting rank race to create it).
    fn release_completion(&self, gen: u64) -> Arc<Completion> {
        Arc::clone(self.releases.lock().entry(gen).or_default())
    }

    /// Rank 0: count an arrival for `gen`; on the last one, broadcast
    /// the release and complete the local waiter.
    fn note_arrival(&self, gen: u64) {
        debug_assert_eq!(self.rank, 0, "only rank 0 coordinates barriers");
        let all_in = {
            let mut arrivals = self.arrivals.lock();
            let count = arrivals.entry(gen).or_insert(0);
            *count += 1;
            if *count == self.n_ranks {
                arrivals.remove(&gen);
                true
            } else {
                false
            }
        };
        if all_in {
            for peer in 1..self.n_ranks {
                self.send_frame(peer, &Frame::BarrierRelease { gen });
            }
            self.release_completion(gen).set();
        }
    }

    /// Sender side of the wire rendezvous: a CTS arrived, so frame the
    /// pinned bytes and complete the send.
    fn handle_cts(&self, fabric: &Fabric, peer: usize, rdv_id: u64) {
        let Some(pending) = self.pending_rdv.lock().remove(&rdv_id) else {
            return; // duplicate or post-abort straggler
        };
        if fabric.aborted() {
            // The sender is unwinding via the abort; its buffer may be
            // on its way out — do not touch it, do not set done.
            return;
        }
        let PinnedSend { ptr, len, done } = pending.pinned;
        // SAFETY: invariant (1) — the source buffer stays alive and
        // unmodified until `done.set()` below; the abort check above plus
        // the drain grace cover teardown races, as in the in-process
        // fulfill path.
        let data = unsafe { std::slice::from_raw_parts(ptr, len) }.to_vec();
        self.send_frame(
            peer,
            &Frame::RdvData {
                rdv_id,
                payload: data,
            },
        );
        done.set();
    }

    /// Dispatch one received frame. Returns `false` when the peer said
    /// goodbye and the reader should exit.
    fn dispatch(&self, fabric: &Arc<Fabric>, peer: usize, frame: Frame) -> bool {
        match frame {
            Frame::Eager {
                shard,
                ctx,
                tag,
                payload,
            } => fabric.deliver_wire_eager(peer, shard as usize, ctx, tag, &payload),
            Frame::Rts {
                shard,
                ctx,
                tag,
                len,
                rdv_id,
            } => fabric.deliver_wire_rts(peer, shard as usize, ctx, tag, len as usize, rdv_id),
            Frame::Cts { rdv_id } => self.handle_cts(fabric, peer, rdv_id),
            Frame::RdvData { rdv_id, payload } => {
                let entry = self.remote_recvs.lock().remove(&(peer, rdv_id));
                if let Some(r) = entry {
                    fabric.complete_remote_rdv(r.posted, peer, r.tag, r.shard, &payload, r.rts_ns);
                }
            }
            Frame::BarrierArrive { gen } => self.note_arrival(gen),
            Frame::BarrierRelease { gen } => self.release_completion(gen).set(),
            Frame::Abort {
                kind,
                a,
                b,
                tag,
                attempts,
                detail,
            } => fabric.fail_from_wire(decode_abort(kind, a, b, tag, attempts, detail)),
            Frame::Bye => return false,
            Frame::WinAnnounce { win_ctx, len } => {
                let completion = {
                    let mut slots = self.win_slots.lock();
                    let slot = slots
                        .entry(win_ctx)
                        .or_insert_with(|| (Completion::new(), None));
                    slot.1 = Some(len as usize);
                    Arc::clone(&slot.0)
                };
                completion.set();
            }
            Frame::Put {
                win_ctx,
                offset,
                payload,
            } => fabric.apply_remote_put(peer, win_ctx, offset as usize, &payload),
            Frame::GetReq {
                win_ctx,
                offset,
                len,
                token,
            } => match fabric.read_win(win_ctx, offset as usize, len as usize) {
                Some(data) => self.send_frame(
                    peer,
                    &Frame::GetResp {
                        token,
                        payload: data,
                    },
                ),
                None => fabric.fail(PcommError::misuse(
                    peer,
                    format!("get of {len} B at offset {offset} misses window ctx {win_ctx}"),
                )),
            },
            Frame::GetResp { token, payload } => {
                let waiter = {
                    let waiters = self.get_waiters.lock();
                    waiters
                        .get(&token)
                        .map(|(c, s)| (Arc::clone(c), Arc::clone(s)))
                };
                if let Some((completion, slot)) = waiter {
                    *slot.lock() = Some(payload);
                    completion.set();
                }
            }
            Frame::Hello { .. } => {} // mesh rendezvous only; stray copies ignored
        }
        true
    }

    /// Shut the wire down after the rank's closure returned. Clean runs
    /// pass a closing barrier first — nobody sends `Bye` while a peer
    /// might still need them — then flush `Bye`, join the writers, and
    /// join the readers (each exits on its peer's `Bye`). Aborted runs
    /// skip the barrier, make sure the abort was broadcast, and
    /// `shutdown(2)` the sockets so blocked readers return. Never
    /// unwinds: failures found here are recorded on the fabric.
    pub(crate) fn finalize(&self, fabric: &Fabric) {
        if !fabric.aborted() {
            let gen = self.barrier_gen.fetch_add(1, Ordering::Relaxed);
            let completion = self.release_completion(gen);
            if self.rank == 0 {
                self.note_arrival(gen);
            } else {
                self.send_frame(0, &Frame::BarrierArrive { gen });
            }
            let deadline = Instant::now() + FINALIZE_TIMEOUT;
            loop {
                if completion.wait_timeout(TEARDOWN_SLICE) {
                    break;
                }
                if fabric.aborted() {
                    break;
                }
                if Instant::now() >= deadline {
                    fabric.fail(PcommError::Misuse {
                        rank: Some(self.rank),
                        detail: format!(
                            "finalize barrier timed out after {FINALIZE_TIMEOUT:?}: \
                             some rank process neither finished nor aborted"
                        ),
                    });
                    break;
                }
            }
            self.releases.lock().remove(&gen);
        }
        if fabric.aborted() {
            // Usually already broadcast by the `fail` that aborted us;
            // `abort_sent` dedupes. Covers failures recorded before the
            // transport was attached.
            if let Some(err) = fabric.failure_snapshot() {
                self.broadcast_abort(&err);
            }
        }
        for peer in self.peers.iter().flatten() {
            let _ = peer.tx.send(WriterMsg::Frame(Frame::Bye.encode()));
            let _ = peer.tx.send(WriterMsg::Shutdown);
        }
        for peer in self.peers.iter().flatten() {
            if let Some(writer) = peer.writer.lock().take() {
                let _ = writer.join();
            }
        }
        if fabric.aborted() {
            // Readers may be parked in a blocking read on a peer that
            // will never speak again; killing our half unblocks them
            // (they exit quietly once the abort flag is up).
            for peer in self.peers.iter().flatten() {
                peer.endpoint.shutdown();
            }
        } else {
            // Bound the clean-path reads too: every peer passed the
            // barrier, so its Bye is at most a write away — if it does
            // not arrive within the establish-grade timeout the reader
            // errors out instead of hanging the join below.
            for peer in self.peers.iter().flatten() {
                let _ = peer
                    .endpoint
                    .set_read_timeout(Some(pcomm_net::mesh::ESTABLISH_TIMEOUT));
            }
        }
        let readers = std::mem::take(&mut *self.readers.lock());
        for reader in readers {
            let _ = reader.join();
        }
    }
}

impl Transport for SocketTransport {
    fn local_rank(&self) -> usize {
        self.rank
    }

    fn is_multiproc(&self) -> bool {
        true
    }

    fn ship_eager(&self, dst: usize, shard: usize, ctx: u64, tag: i64, data: &[u8]) {
        self.send_frame(
            dst,
            &Frame::Eager {
                shard: shard as u16,
                ctx,
                tag,
                payload: data.to_vec(),
            },
        );
    }

    fn ship_rts(&self, dst: usize, shard: usize, ctx: u64, tag: i64, pinned: PinnedSend) {
        let rdv_id = self.next_rdv_id.fetch_add(1, Ordering::Relaxed);
        let len = pinned.len as u64;
        self.pending_rdv
            .lock()
            .insert(rdv_id, PendingRdv { pinned, dst });
        self.send_frame(
            dst,
            &Frame::Rts {
                shard: shard as u16,
                ctx,
                tag,
                len,
                rdv_id,
            },
        );
    }

    fn accept_remote_rdv(
        &self,
        src: usize,
        rdv_id: u64,
        posted: PostedRecv,
        shard: usize,
        tag: i64,
        rts_ns: Option<u64>,
    ) {
        self.remote_recvs.lock().insert(
            (src, rdv_id),
            RemoteRecv {
                posted,
                shard,
                tag,
                rts_ns,
            },
        );
        self.send_frame(src, &Frame::Cts { rdv_id });
    }

    fn barrier(&self, fabric: &Fabric, rank: usize) {
        let gen = self.barrier_gen.fetch_add(1, Ordering::Relaxed);
        let completion = self.release_completion(gen);
        if self.rank == 0 {
            self.note_arrival(gen);
        } else {
            self.send_frame(0, &Frame::BarrierArrive { gen });
        }
        fabric.wait_on(&completion, rank, || {
            (format!("barrier (generation {gen})"), None, None)
        });
        self.releases.lock().remove(&gen);
    }

    fn announce_win(&self, origin: usize, win_ctx: u64, len: usize) {
        self.send_frame(
            origin,
            &Frame::WinAnnounce {
                win_ctx,
                len: len as u64,
            },
        );
    }

    fn wait_win_announce(&self, fabric: &Fabric, rank: usize, win_ctx: u64) -> usize {
        let completion = {
            let mut slots = self.win_slots.lock();
            Arc::clone(
                &slots
                    .entry(win_ctx)
                    .or_insert_with(|| (Completion::new(), None))
                    .0,
            )
        };
        fabric.wait_on(&completion, rank, || {
            (format!("attach_win(ctx={win_ctx})"), None, None)
        });
        self.win_slots
            .lock()
            .get(&win_ctx)
            .and_then(|slot| slot.1)
            .expect("announced window carries a length")
    }

    fn put(&self, target: usize, win_ctx: u64, offset: usize, data: &[u8]) {
        self.send_frame(
            target,
            &Frame::Put {
                win_ctx,
                offset: offset as u64,
                payload: data.to_vec(),
            },
        );
    }

    fn get(
        &self,
        fabric: &Fabric,
        rank: usize,
        target: usize,
        win_ctx: u64,
        offset: usize,
        len: usize,
    ) -> Vec<u8> {
        let token = self.next_get_token.fetch_add(1, Ordering::Relaxed);
        let completion = Completion::new();
        let slot: Arc<Mutex<Option<Vec<u8>>>> = Arc::new(Mutex::new(None));
        self.get_waiters
            .lock()
            .insert(token, (Arc::clone(&completion), Arc::clone(&slot)));
        self.send_frame(
            target,
            &Frame::GetReq {
                win_ctx,
                offset: offset as u64,
                len: len as u64,
                token,
            },
        );
        fabric.wait_on(&completion, rank, || {
            (
                format!("rma get({len} B from rank {target})"),
                None,
                Some(target),
            )
        });
        self.get_waiters.lock().remove(&token);
        let data = slot.lock().take();
        data.expect("completed get carries its payload")
    }

    fn peer_states(&self) -> Vec<PeerSocketState> {
        let pending = self.pending_rdv.lock();
        self.peers
            .iter()
            .enumerate()
            .filter_map(|(rank, peer)| {
                let peer = peer.as_ref()?;
                Some(PeerSocketState {
                    peer: rank,
                    connected: peer.connected.load(Ordering::Acquire),
                    frames_sent: peer.frames_sent.load(Ordering::Relaxed),
                    frames_received: peer.frames_received.load(Ordering::Relaxed),
                    pending_rdv: pending.values().filter(|p| p.dst == rank).count(),
                })
            })
            .collect()
    }

    fn broadcast_abort(&self, err: &PcommError) {
        if self.abort_sent.swap(true, Ordering::SeqCst) {
            return;
        }
        let frame = encode_abort(err);
        for peer in 0..self.n_ranks {
            if peer != self.rank {
                self.send_frame(peer, &frame);
            }
        }
    }
}

/// Writer thread: drain the channel onto the socket. A write error
/// means the peer is gone — record it (unless the universe is already
/// unwinding) and discard the rest of the queue so enqueuers never
/// notice.
fn writer_loop(
    mut ep: Endpoint,
    rx: Receiver<WriterMsg>,
    fabric: Arc<Fabric>,
    peer: usize,
    frames_sent: Arc<AtomicU64>,
    connected: Arc<AtomicBool>,
) {
    use std::io::Write;
    loop {
        match rx.recv() {
            Ok(WriterMsg::Frame(bytes)) => {
                if ep.write_all(&bytes).and_then(|()| ep.flush()).is_err() {
                    connected.store(false, Ordering::Release);
                    if !fabric.aborted() {
                        fabric.fail(PcommError::PeerPanicked {
                            rank: peer,
                            message: format!(
                                "rank process exited unexpectedly \
                                 (connection to rank {peer} broke mid-write)"
                            ),
                        });
                    }
                    // Drain until Shutdown so senders keep enqueueing
                    // into a live channel during teardown.
                    loop {
                        match rx.recv() {
                            Ok(WriterMsg::Shutdown) | Err(_) => return,
                            Ok(WriterMsg::Frame(_)) => {}
                        }
                    }
                }
                frames_sent.fetch_add(1, Ordering::Relaxed);
            }
            Ok(WriterMsg::Shutdown) | Err(_) => return,
        }
    }
}

/// Reader thread: decode frames and dispatch them into the fabric until
/// the peer says `Bye`, the connection drops, or the universe aborts.
#[allow(clippy::too_many_arguments)] // thread-capture plumbing
fn reader_loop(
    transport: Arc<SocketTransport>,
    fabric: Arc<Fabric>,
    peer: usize,
    mut ep: Endpoint,
    frames_received: Arc<AtomicU64>,
    connected: Arc<AtomicBool>,
    saw_bye: Arc<AtomicBool>,
) {
    loop {
        match Frame::read_from(&mut ep) {
            Ok(frame) => {
                frames_received.fetch_add(1, Ordering::Relaxed);
                if !transport.dispatch(&fabric, peer, frame) {
                    saw_bye.store(true, Ordering::Release);
                    return; // clean goodbye
                }
            }
            Err(err) => {
                connected.store(false, Ordering::Release);
                if !fabric.aborted() {
                    // EOF (or any read error) without a Bye: the peer
                    // process died. Turn the would-be hang into a typed
                    // error for every local waiter.
                    fabric.fail(PcommError::PeerPanicked {
                        rank: peer,
                        message: format!(
                            "rank process exited unexpectedly (connection to rank {peer} \
                             lost: {err})"
                        ),
                    });
                }
                return;
            }
        }
    }
}

/// Encode a [`PcommError`] into the wire's `Abort` frame.
fn encode_abort(err: &PcommError) -> Frame {
    match err {
        PcommError::MessageLost {
            src,
            dst,
            tag,
            attempts,
        } => Frame::Abort {
            kind: ABORT_MESSAGE_LOST,
            a: *src as u64,
            b: *dst as u64,
            tag: *tag,
            attempts: *attempts as u64,
            detail: String::new(),
        },
        PcommError::PeerPanicked { rank, message } => Frame::Abort {
            kind: ABORT_PEER_PANICKED,
            a: *rank as u64,
            b: 0,
            tag: 0,
            attempts: 0,
            detail: message.clone(),
        },
        PcommError::Misuse {
            rank: Some(rank),
            detail,
        } => Frame::Abort {
            kind: ABORT_MISUSE_RANK,
            a: *rank as u64,
            b: 0,
            tag: 0,
            attempts: 0,
            detail: detail.clone(),
        },
        PcommError::Misuse { rank: None, detail } => Frame::Abort {
            kind: ABORT_MISUSE,
            a: 0,
            b: 0,
            tag: 0,
            attempts: 0,
            detail: detail.clone(),
        },
        // A stall report does not survive the wire structurally; peers
        // get the rendered text (their own runs were not the stalled
        // one, so a Misuse-grade message is the honest summary).
        PcommError::Stall(report) => Frame::Abort {
            kind: ABORT_MISUSE,
            a: 0,
            b: 0,
            tag: 0,
            attempts: 0,
            detail: format!("peer stalled: {report}"),
        },
    }
}

/// Decode a wire `Abort` frame back into a [`PcommError`].
fn decode_abort(kind: u8, a: u64, b: u64, tag: i64, attempts: u64, detail: String) -> PcommError {
    match kind {
        ABORT_MESSAGE_LOST => PcommError::MessageLost {
            src: a as usize,
            dst: b as usize,
            tag,
            attempts: attempts as u32,
        },
        ABORT_PEER_PANICKED => PcommError::PeerPanicked {
            rank: a as usize,
            message: detail,
        },
        ABORT_MISUSE_RANK => PcommError::Misuse {
            rank: Some(a as usize),
            detail,
        },
        _ => PcommError::Misuse { rank: None, detail },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abort_frames_roundtrip_the_error_taxonomy() {
        let cases = vec![
            PcommError::MessageLost {
                src: 1,
                dst: 0,
                tag: 9,
                attempts: 4,
            },
            PcommError::PeerPanicked {
                rank: 2,
                message: "boom".into(),
            },
            PcommError::Misuse {
                rank: Some(3),
                detail: "double pready".into(),
            },
            PcommError::Misuse {
                rank: None,
                detail: "verify findings".into(),
            },
        ];
        for err in cases {
            let Frame::Abort {
                kind,
                a,
                b,
                tag,
                attempts,
                detail,
            } = encode_abort(&err)
            else {
                panic!("encode_abort must produce Abort frames");
            };
            assert_eq!(decode_abort(kind, a, b, tag, attempts, detail), err);
        }
    }

    #[test]
    fn stall_decays_to_misuse_with_rendered_report() {
        let err = PcommError::Stall(Box::new(crate::error::StallReport {
            watchdog_ms: 100,
            quiet_ms: 150,
            finished_ranks: vec![],
            blocked: vec![],
            unmatched_posted: vec![],
            unmatched_unexpected: vec![],
            matched: 3,
            peers: vec![],
        }));
        let Frame::Abort { kind, detail, .. } = encode_abort(&err) else {
            panic!("expected Abort");
        };
        assert_eq!(kind, ABORT_MISUSE);
        assert!(detail.contains("peer stalled"), "{detail}");
    }
}
