//! The transport seam: how fabric traffic leaves the process.
//!
//! [`Fabric`] routes every remote-bound message through a [`Transport`].
//! In-process universes use [`SharedMemTransport`], a stub that is never
//! actually called (every rank is local, so the fabric delivers straight
//! into the destination's match queues — the hot path pays exactly one
//! cached-bool branch for the seam's existence). Multiprocess universes
//! use [`SocketTransport`], the progress engine that carries the same
//! protocol over Unix-domain or TCP sockets:
//!
//! * **Eager**: the payload is framed and shipped; the receiving
//!   process's reader thread copies it into a pooled buffer and feeds it
//!   to the ordinary matching path ([`Fabric::deliver_wire_eager`]).
//! * **Rendezvous**: the sender pins its buffer in `pending_rdv` and
//!   ships an RTS. When the receiver matches it, the posted buffer parks
//!   with the transport and a CTS goes back; the sender's reader answers
//!   the CTS by framing the pinned bytes (the wire analogue of the
//!   zero-copy handoff) and only then sets the sender's completion, so
//!   `pready`/`parrived` and every completion stay the same lock-free
//!   atomics as in-process.
//! * **Partitioned streaming**: a wire-bound partitioned send announces
//!   its whole buffer with one `PartRts`; the receiver pins its whole
//!   destination and answers `PartCts`. From then on every `pready`-
//!   completed run of partitions is coalesced toward the
//!   `PCOMM_NET_AGGR` threshold and shipped as an order-independent
//!   `PartData { offset, payload }` range the moment it is ready —
//!   partitions stream across the process boundary instead of waiting
//!   for the whole buffer. Both ends are zero-copy: the source buffer
//!   is pinned (MPI forbids touching it between `start` and `wait`
//!   anyway), so writers put ranges on the wire with a vectored write
//!   straight out of application memory, and readers `read(2)` each
//!   range straight *into* the pinned destination — the only copies
//!   are the kernel's socket transfers. A message's `sent` completion
//!   flips when the writers have written its last byte; the receiver
//!   flips the per-message completions whose byte ranges have fully
//!   landed, so `parrived` goes true partition-by-partition across
//!   processes, exactly like the in-process early-bird path.
//! * **Barrier**: rank 0 coordinates; everyone ships `BarrierArrive`,
//!   rank 0 broadcasts `BarrierRelease` for the generation.
//! * **RMA**: windows announce their length to a remote origin; puts and
//!   gets become `Put`/`GetReq`/`GetResp` frames applied by the target's
//!   reader thread. Per-peer frames are FIFO, so every put of an epoch is
//!   applied before the completion/done message that follows it — remote
//!   flush rides on socket ordering.
//!
//! # Threading model
//!
//! Per peer, per lane: one **writer** thread owning that lane's write
//! half and an unbounded channel (senders only enqueue — a send can
//! never block on a remote process, so there is no distributed
//! write-write deadlock), and one **reader** thread owning the read
//! half, dispatching frames into the fabric. Lane 0 carries all
//! ordered traffic (eager, rendezvous control, barriers, RMA, abort,
//! `Bye`); lanes `1..N` (`PCOMM_NET_LANES`) carry only the
//! order-independent `PartData` ranges, round-robined so a large
//! partition stream cannot head-of-line-block small eager traffic.
//! Writers drain their channel in batches and put each batch on the
//! wire with one vectored write. Abort tears everything down: the
//! failing process broadcasts an `Abort` frame, then `shutdown(2)`
//! unblocks its own readers.

use std::collections::{HashMap, VecDeque};
use std::io::{self, IoSlice, Read, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use pcomm_net::frame::{
    self, Frame, ABORT_MESSAGE_LOST, ABORT_MISUSE, ABORT_MISUSE_RANK, ABORT_PEER_PANICKED,
    MAX_FRAME_BODY,
};
use pcomm_net::{Endpoint, Mesh};
use pcomm_trace::EventKind;

use crate::error::{PcommError, PeerSocketState};
use crate::fabric::{Fabric, MsgInfo, PostedRecv};
use crate::sync::{Completion, Mutex};

/// Slice for non-unwinding waits in teardown paths (mirrors the
/// fabric's `WAIT_SLICE`).
const TEARDOWN_SLICE: Duration = Duration::from_millis(2);

/// Hard deadline on the finalize barrier: every healthy peer reaches it
/// as soon as its closure returns, so far past this something is wrong
/// and the run fails instead of hanging.
const FINALIZE_TIMEOUT: Duration = Duration::from_secs(30);

/// Most frames a writer puts on the wire with one vectored write. Past
/// this the batch spans enough bytes that syscall overhead is already
/// amortised.
const WRITER_BATCH: usize = 16;

/// How a fabric reaches ranks hosted outside this process. All methods
/// except the introspective ones are called only for remote ranks of a
/// multiprocess run.
pub(crate) trait Transport: Send + Sync {
    /// The rank this process hosts (multiprocess runs).
    fn local_rank(&self) -> usize;

    /// Whether ranks live in separate processes.
    fn is_multiproc(&self) -> bool;

    /// Ship an eager payload to a remote rank.
    fn ship_eager(&self, dst: usize, shard: usize, ctx: u64, tag: i64, data: &[u8]);

    /// Ship a rendezvous RTS for a pinned source buffer; the buffer's
    /// `done` fires when the CTS comes back and the data has been framed.
    fn ship_rts(&self, dst: usize, shard: usize, ctx: u64, tag: i64, pinned: PinnedSend);

    /// Park a matched posted receive until the wire data lands, and
    /// answer the CTS.
    #[allow(clippy::too_many_arguments)] // one per envelope field
    fn accept_remote_rdv(
        &self,
        src: usize,
        rdv_id: u64,
        posted: PostedRecv,
        shard: usize,
        tag: i64,
        rts_ns: Option<u64>,
    );

    /// Open a partitioned stream toward `dst`: announce `total_len`
    /// pinned bytes for the pair on `ctx` and return the stream id that
    /// subsequent pushes name. `spans` are the sender's per-message byte
    /// ranges; each span's `done` fires once the writers have put its
    /// last byte on the wire.
    fn part_stream_begin(
        &self,
        dst: usize,
        ctx: u64,
        total_len: usize,
        spans: Vec<SendSpan>,
    ) -> u64;

    /// Hand one ready byte range (`parts` coalesced partitions ending
    /// their `pready`s) to the stream. `data` is *pinned*, not copied:
    /// it must stay alive and unmodified until the covering spans'
    /// `done` completions fire (fabric invariant (1) — partitioned
    /// storage lives until its signals drain). Ranges queue until the
    /// `PartCts` arrives, then flow; the stream retires itself once
    /// every one of `total_len` bytes has been pushed.
    fn part_stream_push(
        &self,
        fabric: &Fabric,
        stream_id: u64,
        offset: u64,
        data: &[u8],
        parts: u16,
    );

    /// Pin a whole partitioned destination buffer for the next stream
    /// from `src` on `ctx`; pairs FIFO with incoming `PartRts`s.
    fn part_stream_post(&self, fabric: &Fabric, src: usize, ctx: u64, recv: PartStreamRecv);

    /// Cross-process barrier (rank 0 coordinates).
    fn barrier(&self, fabric: &Fabric, rank: usize);

    /// Announce a window's length to its remote origin.
    fn announce_win(&self, origin: usize, win_ctx: u64, len: usize);

    /// Block until the remote target announced the window; returns its
    /// length.
    fn wait_win_announce(&self, fabric: &Fabric, rank: usize, win_ctx: u64) -> usize;

    /// One-sided put into a remote window.
    fn put(&self, target: usize, win_ctx: u64, offset: usize, data: &[u8]);

    /// One-sided get from a remote window (blocking round trip).
    fn get(
        &self,
        fabric: &Fabric,
        rank: usize,
        target: usize,
        win_ctx: u64,
        offset: usize,
        len: usize,
    ) -> Vec<u8>;

    /// Socket health per peer, for stall reports.
    fn peer_states(&self) -> Vec<PeerSocketState>;

    /// Tell every peer the universe failed (first broadcast wins;
    /// subsequent calls are no-ops).
    fn broadcast_abort(&self, err: &PcommError);
}

/// A rendezvous source buffer pinned for the wire: the pointer stays
/// valid until `done` is set (fabric invariant (1) — the safe wrappers
/// block or hold the ticket until then).
pub(crate) struct PinnedSend {
    pub(crate) ptr: *const u8,
    pub(crate) len: usize,
    pub(crate) done: Arc<Completion>,
}

// SAFETY: the pointer is only read by the sender's own reader thread
// (answering the CTS) before `done.set()`; invariant (1) keeps the
// buffer alive and unmodified until then, and the post-abort grace in
// the drain paths covers a copy already in flight.
unsafe impl Send for PinnedSend {}

/// One message of a pinned partitioned destination: the byte range it
/// owns and the request state to flip once every byte has landed.
pub(crate) struct PartStreamMsg {
    /// Byte offset of the message in the whole destination buffer.
    pub(crate) offset: usize,
    /// Message length in bytes.
    pub(crate) len: usize,
    /// Bytes of the range not yet committed; initialised to `len`.
    pub(crate) remaining: AtomicUsize,
    /// The `parrived`/wait completion for the message.
    pub(crate) completion: Arc<Completion>,
    /// Envelope slot the fabric fills on completion.
    pub(crate) info: Arc<Mutex<Option<MsgInfo>>>,
    /// Verify-layer identity `(request, message)` for the recv event.
    pub(crate) verify_msg: Option<(u16, u16)>,
    /// Message tag (the message index, as in the eager/rdv path).
    pub(crate) tag: i64,
}

/// A whole partitioned destination buffer pinned for an incoming
/// stream, handed to the transport by `precv.start()`.
pub(crate) struct PartStreamRecv {
    /// Base of the destination buffer.
    pub(crate) base: *mut u8,
    /// Whole-buffer length in bytes.
    pub(crate) total_len: usize,
    /// Per-message ranges covering `0..total_len`.
    pub(crate) msgs: Vec<PartStreamMsg>,
}

// SAFETY: the destination buffer outlives the stream (the receiving
// request's storage is pinned until its completions fire and the
// request drains them before release — invariant (1) again), and the
// reader threads that dereference `base` only write disjoint ranges.
unsafe impl Send for PartStreamRecv {}

/// One message's byte span of a pinned partitioned *source* buffer:
/// `done` (the sender's "buffer reusable" signal) flips once the
/// writers have put every byte of the span on the wire.
pub(crate) struct SendSpan {
    /// Byte offset of the message in the whole source buffer.
    pub(crate) offset: usize,
    /// Message length in bytes.
    pub(crate) len: usize,
    /// Bytes of the span not yet written; initialised to `len`.
    pub(crate) remaining: AtomicUsize,
    /// The sender-side wait completion for the message.
    pub(crate) done: Arc<Completion>,
}

/// One coalesced run of ready partitions, pinned in the source buffer
/// (adjacent pushes are contiguous memory, so coalescing just extends
/// the length).
struct PinChunk {
    /// Byte offset of the run in the whole source buffer.
    offset: u64,
    /// First byte of the run; valid until the covering spans complete.
    ptr: *const u8,
    /// Run length in bytes.
    len: usize,
    /// Partitions coalesced into the run (trace geometry).
    parts: u16,
}

// SAFETY: the pointed-to source buffer stays alive and unmodified until
// the covering spans' `done` completions fire (fabric invariant (1) —
// the request drains them before its storage drops), and only writer
// threads read through it.
unsafe impl Send for PinChunk {}

/// Sender-side state of one partitioned stream: the aggregation window
/// plus ranges queued while the `PartCts` is still in flight.
struct StreamSend {
    dst: usize,
    /// The receiver pinned its destination (`PartCts` arrived).
    cts: bool,
    /// Every byte was pushed and the tail auto-flushed; the entry dies
    /// once `cts` is also true.
    flushed: bool,
    /// Whole-buffer length; pushes auto-flush the tail on reaching it.
    total_len: usize,
    /// Bytes pushed so far.
    pushed: usize,
    /// The open aggregation window: grows while pushes stay adjacent.
    pend: Option<PinChunk>,
    /// Threshold-complete chunks waiting for the CTS.
    queued: Vec<PinChunk>,
    /// Per-message spans the writers complete as chunk writes finish.
    spans: Arc<Vec<SendSpan>>,
}

impl StreamSend {
    /// Fold one pushed range into the aggregation window and return the
    /// chunks (if any) that are now ready for the wire: adjacent ranges
    /// coalesce until they reach `aggr`, a gap flushes the open window,
    /// an already-threshold-sized range goes out directly, and the final
    /// byte of the buffer flushes whatever remains (no separate flush
    /// call, so `wait` can never deadlock against an unshipped tail).
    fn push(
        &mut self,
        offset: u64,
        ptr: *const u8,
        len: usize,
        parts: u16,
        aggr: usize,
    ) -> Vec<PinChunk> {
        self.pushed += len;
        let mut out = Vec::new();
        match &mut self.pend {
            Some(p) if p.offset + p.len as u64 == offset => {
                // Adjacent in the source buffer ⇒ contiguous memory:
                // extend the pinned run in place.
                // SAFETY: `p.ptr + p.len` stays within (one past) the
                // same pinned allocation the run came from.
                debug_assert_eq!(unsafe { p.ptr.add(p.len) }, ptr, "adjacent ⇒ contiguous");
                p.len += len;
                p.parts = p.parts.saturating_add(parts);
                if p.len >= aggr {
                    out.push(self.pend.take().expect("pend checked above"));
                }
            }
            _ => {
                if let Some(p) = self.pend.take() {
                    out.push(p);
                }
                let chunk = PinChunk {
                    offset,
                    ptr,
                    len,
                    parts,
                };
                if len >= aggr {
                    out.push(chunk);
                } else {
                    self.pend = Some(chunk);
                }
            }
        }
        if self.pushed >= self.total_len {
            self.flushed = true;
            if let Some(p) = self.pend.take() {
                out.push(p);
            }
        }
        out
    }
}

/// Receiver-side state of one active partitioned stream: where ranges
/// land and which message completions they flip.
struct StreamRecv {
    base: *mut u8,
    total_len: usize,
    /// Bytes of the whole buffer not yet committed; the stream retires
    /// when this hits zero.
    remaining_total: AtomicUsize,
    msgs: Vec<PartStreamMsg>,
}

// SAFETY: same argument as [`PartStreamRecv`]; `Sync` because multiple
// reader lanes commit concurrently, but every byte of the destination
// belongs to exactly one `PartData` frame, so writes never alias.
unsafe impl Send for StreamRecv {}
unsafe impl Sync for StreamRecv {}

/// FIFO pairing of incoming `PartRts`s with posted destinations for one
/// `(src, ctx)` partitioned pair — whichever side shows up first waits.
#[derive(Default)]
struct PartPair {
    /// Streams announced by the sender, not yet posted: `(id, len)`.
    pending_rts: VecDeque<(u64, usize)>,
    /// Destinations posted by the receiver, not yet announced.
    waiting: VecDeque<PartStreamRecv>,
}

/// A pinned partitioned range headed for the wire: the writer encodes
/// an 18-byte `PartData` header into scratch and writes the payload
/// straight from the source buffer (no copy), then completes the spans
/// the range covers.
struct StreamWrite {
    rdv_id: u64,
    offset: u64,
    ptr: *const u8,
    len: usize,
    spans: Arc<Vec<SendSpan>>,
}

// SAFETY: same argument as [`PinChunk`] — the source stays pinned until
// the spans' `done` completions fire, and only the owning writer thread
// reads through the pointer.
unsafe impl Send for StreamWrite {}

/// What a writer thread consumes. Frames cross the channel undecoded;
/// the writer encodes into its own reusable scratch buffers.
enum WriterMsg {
    /// A frame to put on the wire.
    Frame(Frame),
    /// A pinned partitioned range (zero-copy payload).
    Stream(StreamWrite),
    /// Flush and exit (teardown).
    Shutdown,
}

/// A pinned rendezvous send waiting for its CTS.
struct PendingRdv {
    pinned: PinnedSend,
    dst: usize,
}

/// A matched posted receive waiting for its wire data.
struct RemoteRecv {
    posted: PostedRecv,
    shard: usize,
    tag: i64,
    /// Local timestamp of the RTS frame's arrival, for the RdvCopy span.
    rts_ns: Option<u64>,
}

/// One writer lane of a peer: its own socket, a writer thread draining
/// `tx`, and a direct write handle under `direct` that lets *reader*
/// threads put a CTS-released batch on the wire without a thread hop.
struct Lane {
    /// The original stream; kept for `shutdown` (which unblocks the
    /// reader on abort). Reader and writer own `try_clone`s.
    endpoint: Endpoint,
    tx: Sender<WriterMsg>,
    /// Taken by `start`.
    rx: Mutex<Option<Receiver<WriterMsg>>>,
    writer: Mutex<Option<JoinHandle<()>>>,
    /// The write half. The lane's writer thread locks it per batch;
    /// reader threads releasing a CTS batch write under the same mutex
    /// directly, skipping the context switch that would otherwise cap
    /// partitioned bandwidth on small machines. App threads never
    /// write here — a `pready` must not donate its timeslice to a
    /// blocking socket write.
    direct: Mutex<Option<Endpoint>>,
}

/// Per-peer socket machinery: `lanes[0]` is the ordered lane, the rest
/// carry `PartData` only.
struct Peer {
    lanes: Vec<Lane>,
    connected: Arc<AtomicBool>,
    frames_sent: Arc<AtomicU64>,
    frames_received: Arc<AtomicU64>,
    saw_bye: Arc<AtomicBool>,
    /// Round-robin cursor over the data lanes.
    next_lane: AtomicUsize,
}

/// The socket progress engine: per-peer-per-lane reader/writer threads
/// plus the request state they complete (see the module docs for the
/// model).
pub(crate) struct SocketTransport {
    rank: usize,
    n_ranks: usize,
    peers: Vec<Option<Peer>>,
    next_rdv_id: AtomicU64,
    /// `PCOMM_NET_AGGR`: partition-stream aggregation threshold.
    aggr: usize,
    /// Sender side: pinned buffers waiting for a CTS, by rendezvous id.
    pending_rdv: Mutex<HashMap<u64, PendingRdv>>,
    /// Receiver side: matched buffers waiting for data, by (src, id).
    remote_recvs: Mutex<HashMap<(usize, u64), RemoteRecv>>,
    /// Sender side: open partitioned streams, by stream id.
    streams_out: Mutex<HashMap<u64, StreamSend>>,
    /// Receiver side: RTS/post pairing per partitioned (src, ctx) pair.
    part_registry: Mutex<HashMap<(usize, u64), PartPair>>,
    /// Receiver side: active streams taking `PartData`, by (src, id).
    streams_in: Mutex<HashMap<(usize, u64), Arc<StreamRecv>>>,
    /// This process's barrier generation counter (SPMD-aligned).
    barrier_gen: AtomicU64,
    /// Rank 0 only: arrival counts per generation.
    arrivals: Mutex<HashMap<u64, usize>>,
    /// Release completions per generation (waiter or release creates).
    releases: Mutex<HashMap<u64, Arc<Completion>>>,
    /// Window announcements: completion + announced length per win ctx.
    #[allow(clippy::type_complexity)]
    win_slots: Mutex<HashMap<u64, (Arc<Completion>, Option<usize>)>>,
    next_get_token: AtomicU64,
    /// In-flight gets: completion + landing slot per token.
    #[allow(clippy::type_complexity)]
    get_waiters: Mutex<HashMap<u64, (Arc<Completion>, Arc<Mutex<Option<Vec<u8>>>>)>>,
    abort_sent: AtomicBool,
    readers: Mutex<Vec<JoinHandle<()>>>,
}

impl SocketTransport {
    /// Wrap an established mesh. Threads start in
    /// [`SocketTransport::start`], once the fabric exists.
    pub(crate) fn new(mesh: Mesh) -> SocketTransport {
        let rank = mesh.rank;
        let n_ranks = mesh.n_ranks;
        let peers = mesh
            .peers
            .into_iter()
            .map(|eps| {
                eps.map(|endpoints| {
                    let lanes = endpoints
                        .into_iter()
                        .map(|endpoint| {
                            let (tx, rx) = std::sync::mpsc::channel();
                            Lane {
                                endpoint,
                                tx,
                                rx: Mutex::new(Some(rx)),
                                writer: Mutex::new(None),
                                direct: Mutex::new(None),
                            }
                        })
                        .collect();
                    Peer {
                        lanes,
                        connected: Arc::new(AtomicBool::new(true)),
                        frames_sent: Arc::new(AtomicU64::new(0)),
                        frames_received: Arc::new(AtomicU64::new(0)),
                        saw_bye: Arc::new(AtomicBool::new(false)),
                        next_lane: AtomicUsize::new(0),
                    }
                })
            })
            .collect();
        SocketTransport {
            rank,
            n_ranks,
            peers,
            next_rdv_id: AtomicU64::new(0),
            aggr: pcomm_net::launch::aggr_from_env(),
            pending_rdv: Mutex::new(HashMap::new()),
            remote_recvs: Mutex::new(HashMap::new()),
            streams_out: Mutex::new(HashMap::new()),
            part_registry: Mutex::new(HashMap::new()),
            streams_in: Mutex::new(HashMap::new()),
            barrier_gen: AtomicU64::new(0),
            arrivals: Mutex::new(HashMap::new()),
            releases: Mutex::new(HashMap::new()),
            win_slots: Mutex::new(HashMap::new()),
            next_get_token: AtomicU64::new(0),
            get_waiters: Mutex::new(HashMap::new()),
            abort_sent: AtomicBool::new(false),
            readers: Mutex::new(Vec::new()),
        }
    }

    /// Spawn the per-peer-per-lane reader and writer threads. Called
    /// once, after the fabric referencing this transport exists.
    pub(crate) fn start(self: &Arc<SocketTransport>, fabric: &Arc<Fabric>) {
        let mut readers = self.readers.lock();
        for (peer_rank, peer) in self.peers.iter().enumerate() {
            let Some(peer) = peer else {
                continue;
            };
            for (lane_idx, lane) in peer.lanes.iter().enumerate() {
                let rx = lane
                    .rx
                    .lock()
                    .take()
                    .expect("SocketTransport::start called twice");
                // Every lane gets BOTH a write handle under the lane
                // mutex and a writer thread draining the channel. App
                // threads always enqueue (a `pready` must never block
                // on socket I/O — inline writes stall the computation
                // for a scheduler quantum on oversubscribed hosts);
                // reader threads releasing a CTS batch write directly
                // under the same mutex, skipping the thread hop.
                *lane.direct.lock() = Some(lane.endpoint.try_clone().expect("endpoint clone"));
                let sent = Arc::clone(&peer.frames_sent);
                let connected = Arc::clone(&peer.connected);
                let f = Arc::clone(fabric);
                let t = Arc::clone(self);
                let writer = std::thread::Builder::new()
                    .name(format!("pcomm-wr{peer_rank}.{lane_idx}"))
                    .spawn(move || writer_loop(t, rx, f, peer_rank, lane_idx, sent, connected))
                    .expect("spawn writer thread");
                *lane.writer.lock() = Some(writer);

                let ep = lane.endpoint.try_clone().expect("endpoint clone");
                let received = Arc::clone(&peer.frames_received);
                let connected = Arc::clone(&peer.connected);
                let saw_bye = Arc::clone(&peer.saw_bye);
                let t = Arc::clone(self);
                let f = Arc::clone(fabric);
                let reader = std::thread::Builder::new()
                    .name(format!("pcomm-rd{peer_rank}.{lane_idx}"))
                    .spawn(move || {
                        reader_loop(t, f, peer_rank, lane_idx, ep, received, connected, saw_bye)
                    })
                    .expect("spawn reader thread");
                readers.push(reader);
            }
        }
    }

    /// Enqueue one frame toward `dst` on a specific lane (never blocks;
    /// the writer thread does the I/O). Sends to an already-torn-down
    /// peer are dropped.
    fn send_frame_lane(&self, dst: usize, lane: usize, frame: Frame) {
        if let Some(peer) = &self.peers[dst] {
            let _ = peer.lanes[lane].tx.send(WriterMsg::Frame(frame));
        }
    }

    /// Enqueue one ordered frame toward `dst` (lane 0).
    fn send_frame(&self, dst: usize, frame: Frame) {
        self.send_frame_lane(dst, 0, frame);
    }

    /// Round-robin a `PartData` chunk over the data lanes; with one
    /// lane everything shares lane 0.
    fn pick_lane(&self, peer: &Peer) -> usize {
        let n = peer.lanes.len();
        if n == 1 {
            0
        } else {
            1 + peer.next_lane.fetch_add(1, Ordering::Relaxed) % (n - 1)
        }
    }

    /// Put the ready chunks of stream `rdv_id` on the wire toward
    /// `dst`, round-robined over the data lanes. `inline` picks the
    /// write discipline: reader threads (CTS release) pass `true` and
    /// write each lane's share directly as one vectored batch (headers
    /// from the stack, payloads straight from the pinned source — no
    /// thread hop); app threads (post-CTS `pready`) pass `false` and
    /// enqueue to the lane writers instead, because a blocking socket
    /// write inside `pready` stalls the computation for a scheduler
    /// quantum whenever the host is oversubscribed.
    fn dispatch_chunks(
        &self,
        fabric: &Fabric,
        dst: usize,
        rdv_id: u64,
        spans: &Arc<Vec<SendSpan>>,
        chunks: Vec<PinChunk>,
        inline: bool,
    ) {
        let Some(peer) = &self.peers[dst] else {
            return;
        };
        let n_lanes = peer.lanes.len();
        let mut buckets: Vec<Vec<PinChunk>> = (0..n_lanes).map(|_| Vec::new()).collect();
        for chunk in chunks {
            let lane = self.pick_lane(peer);
            let (parts, offset, bytes) = (chunk.parts, chunk.offset, chunk.len as u64);
            fabric
                .trace()
                .emit(self.rank as u16, || EventKind::StreamChunk {
                    lane: lane as u16,
                    parts,
                    offset,
                    bytes,
                });
            buckets[lane].push(chunk);
        }
        if !inline {
            for (lane_idx, bucket) in buckets.into_iter().enumerate() {
                for chunk in bucket {
                    let _ = peer.lanes[lane_idx].tx.send(WriterMsg::Stream(StreamWrite {
                        rdv_id,
                        offset: chunk.offset,
                        ptr: chunk.ptr,
                        len: chunk.len,
                        spans: Arc::clone(spans),
                    }));
                }
            }
            return;
        }
        for (lane_idx, bucket) in buckets.into_iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let lane = &peer.lanes[lane_idx];
            let mut guard = lane.direct.lock();
            let Some(ep) = guard.as_mut() else {
                drop(guard);
                for chunk in bucket {
                    let _ = lane.tx.send(WriterMsg::Stream(StreamWrite {
                        rdv_id,
                        offset: chunk.offset,
                        ptr: chunk.ptr,
                        len: chunk.len,
                        spans: Arc::clone(spans),
                    }));
                }
                continue;
            };
            if fabric.aborted() {
                // The source buffers may already be unwinding: drop the
                // chunks unsent (their waiters unwind via the abort).
                continue;
            }
            let headers: Vec<[u8; 4 + frame::PART_DATA_BODY_HDR]> = bucket
                .iter()
                .map(|c| frame::part_data_header(rdv_id, c.offset, c.len))
                .collect();
            let mut slices: Vec<&[u8]> = Vec::with_capacity(bucket.len() * 2);
            for (header, chunk) in headers.iter().zip(&bucket) {
                slices.push(header);
                // SAFETY: the source buffer stays pinned until the
                // spans completed below fire (invariant (1)); the abort
                // check above plus the drain grace cover teardown
                // races, as in the rendezvous CTS path.
                slices.push(unsafe { std::slice::from_raw_parts(chunk.ptr, chunk.len) });
            }
            if write_all_vectored(ep, &slices)
                .and_then(|()| ep.flush())
                .is_err()
            {
                peer.connected.store(false, Ordering::Release);
                if !fabric.aborted() {
                    fabric.fail(PcommError::PeerPanicked {
                        rank: dst,
                        message: format!(
                            "rank process exited unexpectedly \
                             (connection to rank {dst} broke mid-stream)"
                        ),
                    });
                }
                continue;
            }
            for chunk in &bucket {
                complete_spans(spans, chunk.offset as usize, chunk.len);
            }
            peer.frames_sent
                .fetch_add(bucket.len() as u64, Ordering::Relaxed);
        }
    }

    /// Receiver: a sender announced a stream. Pair it with a posted
    /// destination if one is waiting, else park the announcement.
    fn handle_part_rts(
        &self,
        fabric: &Fabric,
        src: usize,
        ctx: u64,
        total_len: usize,
        rdv_id: u64,
    ) {
        let recv = {
            let mut reg = self.part_registry.lock();
            let pair = reg.entry((src, ctx)).or_default();
            match pair.waiting.pop_front() {
                Some(recv) => Some(recv),
                None => {
                    pair.pending_rts.push_back((rdv_id, total_len));
                    None
                }
            }
        };
        if let Some(recv) = recv {
            self.activate_stream(fabric, src, rdv_id, total_len, recv, true);
        }
    }

    /// Receiver: a posted destination met its announcement — validate,
    /// register the active stream, and clear the sender to stream.
    /// `inline` is true when called from a reader thread (RTS arrival),
    /// false from an app thread (`start` posting the destination).
    fn activate_stream(
        &self,
        fabric: &Fabric,
        src: usize,
        rdv_id: u64,
        total_len: usize,
        recv: PartStreamRecv,
        inline: bool,
    ) {
        if recv.total_len != total_len {
            fabric.fail(PcommError::misuse(
                src,
                format!(
                    "partitioned stream length mismatch: sender announced {total_len} B, \
                     receiver pinned {} B",
                    recv.total_len
                ),
            ));
            return;
        }
        let stream = Arc::new(StreamRecv {
            base: recv.base,
            total_len,
            remaining_total: AtomicUsize::new(total_len),
            msgs: recv.msgs,
        });
        self.streams_in.lock().insert((src, rdv_id), stream);
        // From a reader thread, prefer a direct data-lane write for the
        // CTS: the sender's data-lane reader then dispatches the queued
        // chunks from its own thread, so the whole release chain costs
        // no writer-thread wakeups. The CTS orders against nothing on
        // the ordered lane — the sender just needs it as fast as
        // possible. From an app thread, enqueue instead of blocking.
        if inline {
            self.send_data_frame(fabric, src, Frame::PartCts { rdv_id });
        } else {
            self.send_frame(src, Frame::PartCts { rdv_id });
        }
    }

    /// Put a small control frame on a data lane's socket directly if
    /// one exists (bypassing the lane-0 writer thread), else fall back
    /// to the ordered lane. Only valid for frames with no ordering
    /// obligation toward lane-0 traffic.
    fn send_data_frame(&self, fabric: &Fabric, dst: usize, frame: Frame) {
        let Some(peer) = &self.peers[dst] else {
            return;
        };
        for lane in peer.lanes.iter().skip(1) {
            let mut guard = lane.direct.lock();
            if let Some(ep) = guard.as_mut() {
                let mut buf = Vec::with_capacity(32);
                frame.encode_into(&mut buf);
                if write_all_vectored(ep, &[&buf])
                    .and_then(|()| ep.flush())
                    .is_err()
                {
                    peer.connected.store(false, Ordering::Release);
                    if !fabric.aborted() {
                        fabric.fail(PcommError::PeerPanicked {
                            rank: dst,
                            message: format!(
                                "rank process exited unexpectedly \
                                 (connection to rank {dst} broke mid-write)"
                            ),
                        });
                    }
                    return;
                }
                peer.frames_sent.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        self.send_frame(dst, frame);
    }

    /// Sender: the receiver pinned its destination — release every
    /// queued chunk onto the data lanes.
    fn handle_part_cts(&self, fabric: &Fabric, peer: usize, rdv_id: u64) {
        if fabric.aborted() {
            return;
        }
        let (dst, spans, chunks) = {
            let mut out = self.streams_out.lock();
            let Some(stream) = out.get_mut(&rdv_id) else {
                return; // duplicate or post-abort straggler
            };
            stream.cts = true;
            let chunks = std::mem::take(&mut stream.queued);
            let dst = stream.dst;
            let spans = Arc::clone(&stream.spans);
            if stream.flushed {
                out.remove(&rdv_id);
            }
            (dst, spans, chunks)
        };
        debug_assert_eq!(dst, peer, "PartCts must come from the stream's receiver");
        // Runs on a reader thread: write the batch directly.
        self.dispatch_chunks(fabric, dst, rdv_id, &spans, chunks, true);
    }

    /// Receiver: look up the active stream for `(src, rdv_id)` and
    /// validate that `offset..offset+len` fits its destination. Returns
    /// `None` for post-abort stragglers (the caller discards the bytes);
    /// an overflowing range fails the universe.
    fn stream_range(
        &self,
        fabric: &Fabric,
        src: usize,
        rdv_id: u64,
        offset: usize,
        len: usize,
    ) -> Option<Arc<StreamRecv>> {
        if fabric.aborted() {
            return None;
        }
        let stream = self.streams_in.lock().get(&(src, rdv_id)).cloned()?;
        match offset.checked_add(len) {
            Some(end) if end <= stream.total_len => Some(stream),
            _ => {
                fabric.fail(PcommError::misuse(
                    src,
                    format!(
                        "partitioned stream range {offset}+{len} overflows a \
                         {}-byte destination",
                        stream.total_len
                    ),
                ));
                None
            }
        }
    }

    /// Receiver: the bytes of `offset..offset+len` are in the pinned
    /// destination — flip every message completion the range finishes
    /// and retire the stream once the whole buffer has landed.
    #[allow(clippy::too_many_arguments)] // one per envelope field
    fn commit_stream_range(
        &self,
        fabric: &Fabric,
        src: usize,
        lane: usize,
        rdv_id: u64,
        stream: &StreamRecv,
        offset: usize,
        len: usize,
    ) {
        let end = offset + len;
        let mut msgs_done = 0u16;
        for msg in &stream.msgs {
            let lo = msg.offset.max(offset);
            let hi = (msg.offset + msg.len).min(end);
            if lo >= hi {
                continue;
            }
            let overlap = hi - lo;
            // AcqRel: the final decrement acquires every earlier
            // committer's bytes, so the completion flip below publishes
            // a fully written message range.
            let before = msg.remaining.fetch_sub(overlap, Ordering::AcqRel);
            if before == overlap {
                fabric.complete_stream_msg(
                    src,
                    msg.tag,
                    msg.len,
                    &msg.info,
                    &msg.completion,
                    msg.verify_msg,
                );
                msgs_done += 1;
            }
        }
        let (off64, bytes) = (offset as u64, len as u64);
        fabric
            .trace()
            .emit(self.rank as u16, || EventKind::StreamCommit {
                lane: lane as u16,
                msgs: msgs_done,
                offset: off64,
                bytes,
            });
        if stream.remaining_total.fetch_sub(len, Ordering::AcqRel) == len {
            self.streams_in.lock().remove(&(src, rdv_id));
        }
    }

    /// Receiver: one already-decoded range landed (the `dispatch` slow
    /// path; lane readers normally read payloads straight into the
    /// destination instead) — copy it in and commit.
    fn handle_part_data(
        &self,
        fabric: &Fabric,
        src: usize,
        lane: usize,
        rdv_id: u64,
        offset: u64,
        payload: &[u8],
    ) {
        let len = payload.len();
        let offset = offset as usize;
        let Some(stream) = self.stream_range(fabric, src, rdv_id, offset, len) else {
            return;
        };
        // SAFETY: the destination stays pinned until the completions set
        // by the commit fire (invariant (1), via `PartStreamRecv`'s
        // contract), the bounds were checked by `stream_range`, and
        // every destination byte belongs to exactly one `PartData`
        // frame, so concurrent commits from different lanes never alias.
        unsafe {
            std::ptr::copy_nonoverlapping(payload.as_ptr(), stream.base.add(offset), len);
        }
        self.commit_stream_range(fabric, src, lane, rdv_id, &stream, offset, len);
    }

    /// Get-or-create the release completion for barrier generation
    /// `gen` (reader thread and waiting rank race to create it).
    fn release_completion(&self, gen: u64) -> Arc<Completion> {
        Arc::clone(self.releases.lock().entry(gen).or_default())
    }

    /// Rank 0: count an arrival for `gen`; on the last one, broadcast
    /// the release and complete the local waiter.
    fn note_arrival(&self, gen: u64) {
        debug_assert_eq!(self.rank, 0, "only rank 0 coordinates barriers");
        let all_in = {
            let mut arrivals = self.arrivals.lock();
            let count = arrivals.entry(gen).or_insert(0);
            *count += 1;
            if *count == self.n_ranks {
                arrivals.remove(&gen);
                true
            } else {
                false
            }
        };
        if all_in {
            for peer in 1..self.n_ranks {
                self.send_frame(peer, Frame::BarrierRelease { gen });
            }
            self.release_completion(gen).set();
        }
    }

    /// Sender side of the wire rendezvous: a CTS arrived, so frame the
    /// pinned bytes and complete the send.
    fn handle_cts(&self, fabric: &Fabric, peer: usize, rdv_id: u64) {
        let Some(pending) = self.pending_rdv.lock().remove(&rdv_id) else {
            return; // duplicate or post-abort straggler
        };
        if fabric.aborted() {
            // The sender is unwinding via the abort; its buffer may be
            // on its way out — do not touch it, do not set done.
            return;
        }
        let PinnedSend { ptr, len, done } = pending.pinned;
        // SAFETY: invariant (1) — the source buffer stays alive and
        // unmodified until `done.set()` below; the abort check above plus
        // the drain grace cover teardown races, as in the in-process
        // fulfill path.
        let data = unsafe { std::slice::from_raw_parts(ptr, len) }.to_vec();
        self.send_frame(
            peer,
            Frame::RdvData {
                rdv_id,
                payload: data,
            },
        );
        done.set();
    }

    /// Dispatch one received frame. Returns `false` when the peer said
    /// goodbye and the reader should exit.
    fn dispatch(&self, fabric: &Arc<Fabric>, peer: usize, lane: usize, frame: Frame) -> bool {
        match frame {
            Frame::Eager {
                shard,
                ctx,
                tag,
                payload,
            } => fabric.deliver_wire_eager(peer, shard as usize, ctx, tag, &payload),
            Frame::Rts {
                shard,
                ctx,
                tag,
                len,
                rdv_id,
            } => fabric.deliver_wire_rts(peer, shard as usize, ctx, tag, len as usize, rdv_id),
            Frame::Cts { rdv_id } => self.handle_cts(fabric, peer, rdv_id),
            Frame::RdvData { rdv_id, payload } => {
                let entry = self.remote_recvs.lock().remove(&(peer, rdv_id));
                if let Some(r) = entry {
                    fabric.complete_remote_rdv(r.posted, peer, r.tag, r.shard, &payload, r.rts_ns);
                }
            }
            Frame::PartRts {
                ctx,
                total_len,
                rdv_id,
            } => self.handle_part_rts(fabric, peer, ctx, total_len as usize, rdv_id),
            Frame::PartCts { rdv_id } => self.handle_part_cts(fabric, peer, rdv_id),
            Frame::PartData {
                rdv_id,
                offset,
                payload,
            } => self.handle_part_data(fabric, peer, lane, rdv_id, offset, &payload),
            Frame::BarrierArrive { gen } => self.note_arrival(gen),
            Frame::BarrierRelease { gen } => self.release_completion(gen).set(),
            Frame::Abort {
                kind,
                a,
                b,
                tag,
                attempts,
                detail,
            } => fabric.fail_from_wire(decode_abort(kind, a, b, tag, attempts, detail)),
            Frame::Bye => return false,
            Frame::WinAnnounce { win_ctx, len } => {
                let completion = {
                    let mut slots = self.win_slots.lock();
                    let slot = slots
                        .entry(win_ctx)
                        .or_insert_with(|| (Completion::new(), None));
                    slot.1 = Some(len as usize);
                    Arc::clone(&slot.0)
                };
                completion.set();
            }
            Frame::Put {
                win_ctx,
                offset,
                payload,
            } => fabric.apply_remote_put(peer, win_ctx, offset as usize, &payload),
            Frame::GetReq {
                win_ctx,
                offset,
                len,
                token,
            } => match fabric.read_win(win_ctx, offset as usize, len as usize) {
                Some(data) => self.send_frame(
                    peer,
                    Frame::GetResp {
                        token,
                        payload: data,
                    },
                ),
                None => fabric.fail(PcommError::misuse(
                    peer,
                    format!("get of {len} B at offset {offset} misses window ctx {win_ctx}"),
                )),
            },
            Frame::GetResp { token, payload } => {
                let waiter = {
                    let waiters = self.get_waiters.lock();
                    waiters
                        .get(&token)
                        .map(|(c, s)| (Arc::clone(c), Arc::clone(s)))
                };
                if let Some((completion, slot)) = waiter {
                    *slot.lock() = Some(payload);
                    completion.set();
                }
            }
            Frame::Hello { .. } => {} // mesh rendezvous only; stray copies ignored
        }
        true
    }

    /// Shut the wire down after the rank's closure returned. Clean runs
    /// pass a closing barrier first — nobody sends `Bye` while a peer
    /// might still need them, and no queued stream chunk can be
    /// outstanding (a receiver cannot reach the barrier until its data
    /// landed) — then flush `Bye` on every lane, join the writers, and
    /// join the readers (each exits on its peer's `Bye`). Aborted runs
    /// skip the barrier, make sure the abort was broadcast, and
    /// `shutdown(2)` the sockets so blocked readers return. Never
    /// unwinds: failures found here are recorded on the fabric.
    pub(crate) fn finalize(&self, fabric: &Fabric) {
        if !fabric.aborted() {
            let gen = self.barrier_gen.fetch_add(1, Ordering::Relaxed);
            let completion = self.release_completion(gen);
            if self.rank == 0 {
                self.note_arrival(gen);
            } else {
                self.send_frame(0, Frame::BarrierArrive { gen });
            }
            let deadline = Instant::now() + FINALIZE_TIMEOUT;
            loop {
                if completion.wait_timeout(TEARDOWN_SLICE) {
                    break;
                }
                if fabric.aborted() {
                    break;
                }
                if Instant::now() >= deadline {
                    fabric.fail(PcommError::Misuse {
                        rank: Some(self.rank),
                        detail: format!(
                            "finalize barrier timed out after {FINALIZE_TIMEOUT:?}: \
                             some rank process neither finished nor aborted"
                        ),
                    });
                    break;
                }
            }
            self.releases.lock().remove(&gen);
        }
        if fabric.aborted() {
            // Usually already broadcast by the `fail` that aborted us;
            // `abort_sent` dedupes. Covers failures recorded before the
            // transport was attached.
            if let Some(err) = fabric.failure_snapshot() {
                self.broadcast_abort(&err);
            }
        }
        for peer in self.peers.iter().flatten() {
            for lane in &peer.lanes {
                // Through the writer thread on every lane, so the
                // goodbye drains behind any still-queued stream chunks.
                let _ = lane.tx.send(WriterMsg::Frame(Frame::Bye));
                let _ = lane.tx.send(WriterMsg::Shutdown);
            }
        }
        for peer in self.peers.iter().flatten() {
            for lane in &peer.lanes {
                if let Some(writer) = lane.writer.lock().take() {
                    let _ = writer.join();
                }
            }
        }
        if fabric.aborted() {
            // Readers may be parked in a blocking read on a peer that
            // will never speak again; killing our half unblocks them
            // (they exit quietly once the abort flag is up).
            for peer in self.peers.iter().flatten() {
                for lane in &peer.lanes {
                    lane.endpoint.shutdown();
                }
            }
        } else {
            // Bound the clean-path reads too: every peer passed the
            // barrier, so its Bye is at most a write away — if it does
            // not arrive within the establish-grade timeout the reader
            // errors out instead of hanging the join below.
            for peer in self.peers.iter().flatten() {
                for lane in &peer.lanes {
                    let _ = lane
                        .endpoint
                        .set_read_timeout(Some(pcomm_net::mesh::ESTABLISH_TIMEOUT));
                }
            }
        }
        let readers = std::mem::take(&mut *self.readers.lock());
        for reader in readers {
            let _ = reader.join();
        }
    }
}

impl Transport for SocketTransport {
    fn local_rank(&self) -> usize {
        self.rank
    }

    fn is_multiproc(&self) -> bool {
        true
    }

    fn ship_eager(&self, dst: usize, shard: usize, ctx: u64, tag: i64, data: &[u8]) {
        self.send_frame(
            dst,
            Frame::Eager {
                shard: shard as u16,
                ctx,
                tag,
                payload: data.to_vec(),
            },
        );
    }

    fn ship_rts(&self, dst: usize, shard: usize, ctx: u64, tag: i64, pinned: PinnedSend) {
        let rdv_id = self.next_rdv_id.fetch_add(1, Ordering::Relaxed);
        let len = pinned.len as u64;
        self.pending_rdv
            .lock()
            .insert(rdv_id, PendingRdv { pinned, dst });
        self.send_frame(
            dst,
            Frame::Rts {
                shard: shard as u16,
                ctx,
                tag,
                len,
                rdv_id,
            },
        );
    }

    fn accept_remote_rdv(
        &self,
        src: usize,
        rdv_id: u64,
        posted: PostedRecv,
        shard: usize,
        tag: i64,
        rts_ns: Option<u64>,
    ) {
        self.remote_recvs.lock().insert(
            (src, rdv_id),
            RemoteRecv {
                posted,
                shard,
                tag,
                rts_ns,
            },
        );
        self.send_frame(src, Frame::Cts { rdv_id });
    }

    fn part_stream_begin(
        &self,
        dst: usize,
        ctx: u64,
        total_len: usize,
        spans: Vec<SendSpan>,
    ) -> u64 {
        let rdv_id = self.next_rdv_id.fetch_add(1, Ordering::Relaxed);
        // Register before the RTS leaves so a fast PartCts finds us.
        self.streams_out.lock().insert(
            rdv_id,
            StreamSend {
                dst,
                cts: false,
                flushed: false,
                total_len,
                pushed: 0,
                pend: None,
                queued: Vec::new(),
                spans: Arc::new(spans),
            },
        );
        self.send_frame(
            dst,
            Frame::PartRts {
                ctx,
                total_len: total_len as u64,
                rdv_id,
            },
        );
        rdv_id
    }

    fn part_stream_push(
        &self,
        fabric: &Fabric,
        stream_id: u64,
        offset: u64,
        data: &[u8],
        parts: u16,
    ) {
        let aggr = self.aggr;
        let (dst, spans, ready) = {
            let mut out = self.streams_out.lock();
            let Some(stream) = out.get_mut(&stream_id) else {
                return; // post-abort straggler
            };
            let chunks = stream.push(offset, data.as_ptr(), data.len(), parts, aggr);
            if stream.cts {
                let dst = stream.dst;
                let spans = Arc::clone(&stream.spans);
                if stream.flushed {
                    // Last byte pushed post-CTS: the entry is done.
                    out.remove(&stream_id);
                }
                (dst, spans, chunks)
            } else {
                // The CTS handler drains `queued` (auto-flushed tail
                // included) and retires the entry when it arrives.
                stream.queued.extend(chunks);
                return;
            }
        };
        // Runs on an app thread (inside `pready`): enqueue, never block.
        self.dispatch_chunks(fabric, dst, stream_id, &spans, ready, false);
    }

    fn part_stream_post(&self, fabric: &Fabric, src: usize, ctx: u64, recv: PartStreamRecv) {
        let activate = {
            let mut reg = self.part_registry.lock();
            let pair = reg.entry((src, ctx)).or_default();
            if let Some((rdv_id, total_len)) = pair.pending_rts.pop_front() {
                Some((rdv_id, total_len, recv))
            } else {
                pair.waiting.push_back(recv);
                None
            }
        };
        if let Some((rdv_id, total_len, recv)) = activate {
            self.activate_stream(fabric, src, rdv_id, total_len, recv, false);
        }
    }

    fn barrier(&self, fabric: &Fabric, rank: usize) {
        let gen = self.barrier_gen.fetch_add(1, Ordering::Relaxed);
        let completion = self.release_completion(gen);
        if self.rank == 0 {
            self.note_arrival(gen);
        } else {
            self.send_frame(0, Frame::BarrierArrive { gen });
        }
        fabric.wait_on(&completion, rank, || {
            (format!("barrier (generation {gen})"), None, None)
        });
        self.releases.lock().remove(&gen);
    }

    fn announce_win(&self, origin: usize, win_ctx: u64, len: usize) {
        self.send_frame(
            origin,
            Frame::WinAnnounce {
                win_ctx,
                len: len as u64,
            },
        );
    }

    fn wait_win_announce(&self, fabric: &Fabric, rank: usize, win_ctx: u64) -> usize {
        let completion = {
            let mut slots = self.win_slots.lock();
            Arc::clone(
                &slots
                    .entry(win_ctx)
                    .or_insert_with(|| (Completion::new(), None))
                    .0,
            )
        };
        fabric.wait_on(&completion, rank, || {
            (format!("attach_win(ctx={win_ctx})"), None, None)
        });
        self.win_slots
            .lock()
            .get(&win_ctx)
            .and_then(|slot| slot.1)
            .expect("announced window carries a length")
    }

    fn put(&self, target: usize, win_ctx: u64, offset: usize, data: &[u8]) {
        self.send_frame(
            target,
            Frame::Put {
                win_ctx,
                offset: offset as u64,
                payload: data.to_vec(),
            },
        );
    }

    fn get(
        &self,
        fabric: &Fabric,
        rank: usize,
        target: usize,
        win_ctx: u64,
        offset: usize,
        len: usize,
    ) -> Vec<u8> {
        let token = self.next_get_token.fetch_add(1, Ordering::Relaxed);
        let completion = Completion::new();
        let slot: Arc<Mutex<Option<Vec<u8>>>> = Arc::new(Mutex::new(None));
        self.get_waiters
            .lock()
            .insert(token, (Arc::clone(&completion), Arc::clone(&slot)));
        self.send_frame(
            target,
            Frame::GetReq {
                win_ctx,
                offset: offset as u64,
                len: len as u64,
                token,
            },
        );
        fabric.wait_on(&completion, rank, || {
            (
                format!("rma get({len} B from rank {target})"),
                None,
                Some(target),
            )
        });
        self.get_waiters.lock().remove(&token);
        let data = slot.lock().take();
        data.expect("completed get carries its payload")
    }

    fn peer_states(&self) -> Vec<PeerSocketState> {
        let pending = self.pending_rdv.lock();
        let streams = self.streams_out.lock();
        self.peers
            .iter()
            .enumerate()
            .filter_map(|(rank, peer)| {
                let peer = peer.as_ref()?;
                Some(PeerSocketState {
                    peer: rank,
                    connected: peer.connected.load(Ordering::Acquire),
                    frames_sent: peer.frames_sent.load(Ordering::Relaxed),
                    frames_received: peer.frames_received.load(Ordering::Relaxed),
                    // Un-CTS'd partitioned streams count as pending
                    // rendezvous: same diagnosis (waiting on the peer).
                    pending_rdv: pending.values().filter(|p| p.dst == rank).count()
                        + streams.values().filter(|s| s.dst == rank).count(),
                })
            })
            .collect()
    }

    fn broadcast_abort(&self, err: &PcommError) {
        if self.abort_sent.swap(true, Ordering::SeqCst) {
            return;
        }
        let frame = encode_abort(err);
        for peer in 0..self.n_ranks {
            if peer != self.rank {
                self.send_frame(peer, frame.clone());
            }
        }
    }
}

/// Write every slice in `bufs`, retrying partial vectored writes with a
/// manual `(slice, offset)` cursor — `write_all_vectored` is still
/// unstable in std.
fn write_all_vectored(w: &mut impl Write, bufs: &[&[u8]]) -> io::Result<()> {
    let (mut idx, mut off) = (0usize, 0usize);
    while idx < bufs.len() {
        let slices: Vec<IoSlice<'_>> = std::iter::once(IoSlice::new(&bufs[idx][off..]))
            .chain(bufs[idx + 1..].iter().map(|b| IoSlice::new(b)))
            .collect();
        let mut n = w.write_vectored(&slices)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                "net: socket accepted no bytes",
            ));
        }
        while n > 0 && idx < bufs.len() {
            let rem = bufs[idx].len() - off;
            if n >= rem {
                n -= rem;
                off = 0;
                idx += 1;
            } else {
                off += n;
                n = 0;
            }
        }
    }
    Ok(())
}

/// Flip the `done` completions of every sender span fully covered once
/// `offset..offset+len` is on the wire (sender-side mirror of the
/// receiver's commit bookkeeping).
fn complete_spans(spans: &[SendSpan], offset: usize, len: usize) {
    let end = offset + len;
    for span in spans {
        let lo = span.offset.max(offset);
        let hi = (span.offset + span.len).min(end);
        if lo >= hi {
            continue;
        }
        let overlap = hi - lo;
        // AcqRel chains the writers' progress like the receiver side.
        if span.remaining.fetch_sub(overlap, Ordering::AcqRel) == overlap {
            span.done.set();
        }
    }
}

/// Writer thread: drain the channel onto the socket in vectored
/// batches. Control frames encode into per-slot scratch buffers reused
/// across batches; pinned stream ranges get an 18-byte header in
/// scratch and their payload slice passed to the kernel straight from
/// the source buffer — the batch goes out as one vectored write. A
/// write error means the peer is gone — record it (unless the universe
/// is already unwinding) and discard the rest of the queue so enqueuers
/// never notice.
fn writer_loop(
    transport: Arc<SocketTransport>,
    rx: Receiver<WriterMsg>,
    fabric: Arc<Fabric>,
    peer: usize,
    lane_idx: usize,
    frames_sent: Arc<AtomicU64>,
    connected: Arc<AtomicBool>,
) {
    let lane = &transport.peers[peer]
        .as_ref()
        .expect("writer thread for a missing peer")
        .lanes[lane_idx];
    let mut scratch: Vec<Vec<u8>> = (0..WRITER_BATCH).map(|_| Vec::new()).collect();
    let mut batch: Vec<WriterMsg> = Vec::with_capacity(WRITER_BATCH);
    loop {
        batch.clear();
        match rx.recv() {
            Ok(WriterMsg::Shutdown) | Err(_) => return,
            Ok(msg) => batch.push(msg),
        }
        let mut shutdown = false;
        while batch.len() < WRITER_BATCH {
            match rx.try_recv() {
                Ok(WriterMsg::Shutdown) => {
                    shutdown = true;
                    break;
                }
                Ok(msg) => batch.push(msg),
                Err(_) => break,
            }
        }
        // An aborting universe may already be unwinding the buffers
        // that stream entries point into: drop them unsent (their
        // waiters unwind via the abort), keep the control frames (the
        // abort broadcast is one of them).
        let aborting = fabric.aborted();
        for (slot, msg) in scratch.iter_mut().zip(&batch) {
            match msg {
                WriterMsg::Frame(f) => f.encode_into(slot),
                WriterMsg::Stream(sw) => {
                    frame::encode_part_data_header(sw.rdv_id, sw.offset, sw.len, slot)
                }
                WriterMsg::Shutdown => unreachable!("Shutdown never enters the batch"),
            }
        }
        let mut slices: Vec<&[u8]> = Vec::with_capacity(batch.len() * 2);
        for (slot, msg) in scratch.iter().zip(&batch) {
            match msg {
                WriterMsg::Frame(_) => slices.push(slot),
                WriterMsg::Stream(sw) => {
                    if aborting {
                        continue;
                    }
                    slices.push(slot);
                    // SAFETY: the source buffer stays pinned until the
                    // spans completed below fire (invariant (1)); the
                    // abort check above plus the drain grace cover
                    // teardown races, as in the rendezvous CTS path.
                    slices.push(unsafe { std::slice::from_raw_parts(sw.ptr, sw.len) });
                }
                WriterMsg::Shutdown => {}
            }
        }
        // The write happens under the lane mutex: reader threads
        // releasing a CTS batch write the same socket directly, and the
        // mutex is what keeps the two writers' frames from interleaving.
        let wrote = {
            let mut guard = lane.direct.lock();
            match guard.as_mut() {
                Some(ep) => write_all_vectored(ep, &slices).and_then(|()| ep.flush()),
                None => Err(io::Error::new(
                    io::ErrorKind::NotConnected,
                    "net: lane endpoint already torn down",
                )),
            }
        };
        if wrote.is_err() {
            connected.store(false, Ordering::Release);
            if !fabric.aborted() {
                fabric.fail(PcommError::PeerPanicked {
                    rank: peer,
                    message: format!(
                        "rank process exited unexpectedly \
                         (connection to rank {peer} broke mid-write)"
                    ),
                });
            }
            if shutdown {
                return;
            }
            // Drain until Shutdown so senders keep enqueueing into a
            // live channel during teardown.
            loop {
                match rx.recv() {
                    Ok(WriterMsg::Shutdown) | Err(_) => return,
                    Ok(_) => {}
                }
            }
        }
        for msg in &batch {
            if let WriterMsg::Stream(sw) = msg {
                if !aborting {
                    complete_spans(&sw.spans, sw.offset as usize, sw.len);
                }
            }
        }
        frames_sent.fetch_add(batch.len() as u64, Ordering::Relaxed);
        if shutdown {
            return;
        }
    }
}

/// Read the six-byte frame head: length prefix, version, opcode. The
/// version is validated here so both reader paths start from a trusted
/// head.
fn read_head(ep: &mut Endpoint) -> io::Result<(usize, u8)> {
    let mut head = [0u8; 6];
    ep.read_exact(&mut head)?;
    let len = u32::from_le_bytes(head[..4].try_into().expect("4-byte prefix")) as usize;
    if !(2..=MAX_FRAME_BODY).contains(&len) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("net: implausible frame length {len}"),
        ));
    }
    frame::check_version(head[4])?;
    Ok((len, head[5]))
}

/// Fast path for an incoming `PartData` frame: read the 16-byte stream
/// header, then read the payload straight into the pinned destination —
/// the socket is the only copy. Ranges for retired streams (post-abort
/// stragglers) are read into `scratch` and discarded so the byte stream
/// stays framed.
fn read_part_data(
    transport: &SocketTransport,
    fabric: &Fabric,
    peer: usize,
    lane: usize,
    ep: &mut Endpoint,
    body_len: usize,
    scratch: &mut Vec<u8>,
) -> io::Result<()> {
    if body_len < frame::PART_DATA_BODY_HDR {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("net: truncated PartData body ({body_len} B)"),
        ));
    }
    let mut hdr = [0u8; 16];
    ep.read_exact(&mut hdr)?;
    let rdv_id = u64::from_le_bytes(hdr[..8].try_into().expect("8-byte id"));
    let offset = u64::from_le_bytes(hdr[8..].try_into().expect("8-byte offset")) as usize;
    let len = body_len - frame::PART_DATA_BODY_HDR;
    match transport.stream_range(fabric, peer, rdv_id, offset, len) {
        Some(stream) => {
            // SAFETY: the destination stays pinned until the commit's
            // completions fire (invariant (1), via `PartStreamRecv`'s
            // contract), `stream_range` checked the bounds, and every
            // destination byte belongs to exactly one `PartData` frame,
            // so concurrent lane readers never alias.
            let dest = unsafe { std::slice::from_raw_parts_mut(stream.base.add(offset), len) };
            ep.read_exact(dest)?;
            transport.commit_stream_range(fabric, peer, lane, rdv_id, &stream, offset, len);
        }
        None => {
            scratch.clear();
            scratch.resize(len, 0);
            ep.read_exact(scratch)?;
        }
    }
    Ok(())
}

/// Shared reader error path: EOF (or any read/decode error) without a
/// `Bye` means the peer process died — turn the would-be hang into a
/// typed error for every local waiter.
fn reader_failed(fabric: &Fabric, connected: &AtomicBool, peer: usize, err: &io::Error) {
    connected.store(false, Ordering::Release);
    if !fabric.aborted() {
        fabric.fail(PcommError::PeerPanicked {
            rank: peer,
            message: format!(
                "rank process exited unexpectedly (connection to rank {peer} lost: {err})"
            ),
        });
    }
}

/// Reader thread: decode frames and dispatch them into the fabric until
/// the peer says `Bye`, the connection drops, or the universe aborts.
/// `PartData` frames take a borrow-decode fast path that commits the
/// range straight out of the reusable receive buffer — one copy from
/// socket to destination.
#[allow(clippy::too_many_arguments)] // thread-capture plumbing
fn reader_loop(
    transport: Arc<SocketTransport>,
    fabric: Arc<Fabric>,
    peer: usize,
    lane: usize,
    mut ep: Endpoint,
    frames_received: Arc<AtomicU64>,
    connected: Arc<AtomicBool>,
    saw_bye: Arc<AtomicBool>,
) {
    let mut body: Vec<u8> = Vec::new();
    loop {
        let (len, op) = match read_head(&mut ep) {
            Ok(head) => head,
            Err(err) => {
                reader_failed(&fabric, &connected, peer, &err);
                return;
            }
        };
        frames_received.fetch_add(1, Ordering::Relaxed);
        let keep_going = if frame::is_part_data(op) {
            read_part_data(&transport, &fabric, peer, lane, &mut ep, len, &mut body).map(|()| true)
        } else {
            body.clear();
            body.resize(len, 0);
            // `read_head` already validated the wire's version byte;
            // rebuild the two head bytes `Frame::decode` expects.
            body[0] = frame::WIRE_VERSION;
            body[1] = op;
            ep.read_exact(&mut body[2..])
                .and_then(|()| Frame::decode(&body))
                .map(|f| transport.dispatch(&fabric, peer, lane, f))
        };
        match keep_going {
            Ok(true) => {}
            Ok(false) => {
                saw_bye.store(true, Ordering::Release);
                return; // clean goodbye
            }
            Err(err) => {
                reader_failed(&fabric, &connected, peer, &err);
                return;
            }
        }
    }
}

/// Encode a [`PcommError`] into the wire's `Abort` frame.
fn encode_abort(err: &PcommError) -> Frame {
    match err {
        PcommError::MessageLost {
            src,
            dst,
            tag,
            attempts,
        } => Frame::Abort {
            kind: ABORT_MESSAGE_LOST,
            a: *src as u64,
            b: *dst as u64,
            tag: *tag,
            attempts: *attempts as u64,
            detail: String::new(),
        },
        PcommError::PeerPanicked { rank, message } => Frame::Abort {
            kind: ABORT_PEER_PANICKED,
            a: *rank as u64,
            b: 0,
            tag: 0,
            attempts: 0,
            detail: message.clone(),
        },
        PcommError::Misuse {
            rank: Some(rank),
            detail,
        } => Frame::Abort {
            kind: ABORT_MISUSE_RANK,
            a: *rank as u64,
            b: 0,
            tag: 0,
            attempts: 0,
            detail: detail.clone(),
        },
        PcommError::Misuse { rank: None, detail } => Frame::Abort {
            kind: ABORT_MISUSE,
            a: 0,
            b: 0,
            tag: 0,
            attempts: 0,
            detail: detail.clone(),
        },
        // A stall report does not survive the wire structurally; peers
        // get the rendered text (their own runs were not the stalled
        // one, so a Misuse-grade message is the honest summary).
        PcommError::Stall(report) => Frame::Abort {
            kind: ABORT_MISUSE,
            a: 0,
            b: 0,
            tag: 0,
            attempts: 0,
            detail: format!("peer stalled: {report}"),
        },
    }
}

/// Decode a wire `Abort` frame back into a [`PcommError`].
fn decode_abort(kind: u8, a: u64, b: u64, tag: i64, attempts: u64, detail: String) -> PcommError {
    match kind {
        ABORT_MESSAGE_LOST => PcommError::MessageLost {
            src: a as usize,
            dst: b as usize,
            tag,
            attempts: attempts as u32,
        },
        ABORT_PEER_PANICKED => PcommError::PeerPanicked {
            rank: a as usize,
            message: detail,
        },
        ABORT_MISUSE_RANK => PcommError::Misuse {
            rank: Some(a as usize),
            detail,
        },
        _ => PcommError::Misuse { rank: None, detail },
    }
}

/// The in-process "transport": every rank is local, so nothing here can
/// ever be called. Exists so the fabric carries exactly one transport
/// object either way and the seam costs one cached branch.
pub(crate) struct SharedMemTransport;

impl Transport for SharedMemTransport {
    fn local_rank(&self) -> usize {
        0
    }

    fn is_multiproc(&self) -> bool {
        false
    }

    fn ship_eager(&self, _: usize, _: usize, _: u64, _: i64, _: &[u8]) {
        unreachable!("shared-memory fabric never routes through the wire")
    }

    fn ship_rts(&self, _: usize, _: usize, _: u64, _: i64, _: PinnedSend) {
        unreachable!("shared-memory fabric never routes through the wire")
    }

    fn accept_remote_rdv(&self, _: usize, _: u64, _: PostedRecv, _: usize, _: i64, _: Option<u64>) {
        unreachable!("shared-memory fabric never routes through the wire")
    }

    fn part_stream_begin(&self, _: usize, _: u64, _: usize, _: Vec<SendSpan>) -> u64 {
        unreachable!("shared-memory fabric never routes through the wire")
    }

    fn part_stream_push(&self, _: &Fabric, _: u64, _: u64, _: &[u8], _: u16) {
        unreachable!("shared-memory fabric never routes through the wire")
    }

    fn part_stream_post(&self, _: &Fabric, _: usize, _: u64, _: PartStreamRecv) {
        unreachable!("shared-memory fabric never routes through the wire")
    }

    fn barrier(&self, _: &Fabric, _: usize) {
        unreachable!("in-process barriers use the fabric's condvar path")
    }

    fn announce_win(&self, _: usize, _: u64, _: usize) {
        unreachable!("shared-memory fabric never routes through the wire")
    }

    fn wait_win_announce(&self, _: &Fabric, _: usize, _: u64) -> usize {
        unreachable!("shared-memory fabric never routes through the wire")
    }

    fn put(&self, _: usize, _: u64, _: usize, _: &[u8]) {
        unreachable!("shared-memory fabric never routes through the wire")
    }

    fn get(&self, _: &Fabric, _: usize, _: usize, _: u64, _: usize, _: usize) -> Vec<u8> {
        unreachable!("shared-memory fabric never routes through the wire")
    }

    fn peer_states(&self) -> Vec<PeerSocketState> {
        Vec::new()
    }

    fn broadcast_abort(&self, _: &PcommError) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abort_frames_roundtrip_the_error_taxonomy() {
        let cases = vec![
            PcommError::MessageLost {
                src: 1,
                dst: 0,
                tag: 9,
                attempts: 4,
            },
            PcommError::PeerPanicked {
                rank: 2,
                message: "boom".into(),
            },
            PcommError::Misuse {
                rank: Some(3),
                detail: "double pready".into(),
            },
            PcommError::Misuse {
                rank: None,
                detail: "verify findings".into(),
            },
        ];
        for err in cases {
            let Frame::Abort {
                kind,
                a,
                b,
                tag,
                attempts,
                detail,
            } = encode_abort(&err)
            else {
                panic!("encode_abort must produce Abort frames");
            };
            assert_eq!(decode_abort(kind, a, b, tag, attempts, detail), err);
        }
    }

    #[test]
    fn stall_decays_to_misuse_with_rendered_report() {
        let err = PcommError::Stall(Box::new(crate::error::StallReport {
            watchdog_ms: 100,
            quiet_ms: 150,
            finished_ranks: vec![],
            blocked: vec![],
            unmatched_posted: vec![],
            unmatched_unexpected: vec![],
            matched: 3,
            peers: vec![],
        }));
        let Frame::Abort { kind, detail, .. } = encode_abort(&err) else {
            panic!("expected Abort");
        };
        assert_eq!(kind, ABORT_MISUSE);
        assert!(detail.contains("peer stalled"), "{detail}");
    }

    /// A writer that accepts at most 3 bytes per call, across however
    /// many slices — exercises every partial-write resume path.
    struct DribbleWriter {
        out: Vec<u8>,
    }

    impl Write for DribbleWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            let n = buf.len().min(3);
            self.out.extend_from_slice(&buf[..n]);
            Ok(n)
        }

        fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
            let mut left = 3usize;
            let mut written = 0usize;
            for b in bufs {
                if left == 0 {
                    break;
                }
                let n = b.len().min(left);
                self.out.extend_from_slice(&b[..n]);
                written += n;
                left -= n;
            }
            Ok(written)
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_all_vectored_survives_partial_writes() {
        let bufs: [Vec<u8>; 5] = [
            vec![1u8, 2, 3, 4, 5],
            vec![],
            vec![6u8],
            vec![7u8; 10],
            vec![8u8, 9],
        ];
        let slices: Vec<&[u8]> = bufs.iter().map(|b| b.as_slice()).collect();
        let mut w = DribbleWriter { out: Vec::new() };
        write_all_vectored(&mut w, &slices).unwrap();
        let want: Vec<u8> = bufs.concat();
        assert_eq!(w.out, want);
    }

    fn fresh_stream(total_len: usize) -> StreamSend {
        StreamSend {
            dst: 1,
            cts: false,
            flushed: false,
            total_len,
            pushed: 0,
            pend: None,
            queued: Vec::new(),
            spans: Arc::new(Vec::new()),
        }
    }

    #[test]
    fn adjacent_ranges_coalesce_until_the_threshold() {
        let buf = vec![0u8; 4096];
        let mut s = fresh_stream(1 << 20);
        assert!(s.push(0, buf.as_ptr(), 100, 1, 256).is_empty());
        assert!(s.push(100, buf[100..].as_ptr(), 100, 1, 256).is_empty());
        let out = s.push(200, buf[200..].as_ptr(), 100, 2, 256);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].offset, 0);
        assert_eq!(out[0].len, 300);
        assert_eq!(out[0].parts, 4);
        assert!(s.pend.is_none(), "dispatched chunk leaves no window");
    }

    #[test]
    fn a_gap_flushes_the_open_window() {
        let buf = vec![0u8; 1024];
        let mut s = fresh_stream(1 << 20);
        assert!(s.push(0, buf.as_ptr(), 100, 1, 256).is_empty());
        let out = s.push(500, buf[500..].as_ptr(), 100, 1, 256);
        assert_eq!(out.len(), 1);
        assert_eq!((out[0].offset, out[0].len), (0, 100));
        let tail = s.pend.take().expect("gap range opens a new window");
        assert_eq!((tail.offset, tail.len), (500, 100));
    }

    #[test]
    fn threshold_sized_ranges_skip_the_window() {
        let buf = vec![0u8; 8192];
        let mut s = fresh_stream(1 << 20);
        let out = s.push(0, buf.as_ptr(), 512, 4, 256);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].len, 512);
        assert!(s.pend.is_none());
        // And with a non-adjacent window open, both come out in order.
        assert!(s.push(4096, buf[4096..].as_ptr(), 10, 1, 256).is_empty());
        let out = s.push(0, buf.as_ptr(), 512, 4, 256);
        assert_eq!(out.len(), 2);
        assert_eq!((out[0].offset, out[0].len), (4096, 10));
        assert_eq!((out[1].offset, out[1].len), (0, 512));
    }

    #[test]
    fn the_final_push_flushes_the_tail_window() {
        let buf = vec![0u8; 300];
        let mut s = fresh_stream(300);
        assert!(s.push(0, buf.as_ptr(), 100, 1, 1 << 20).is_empty());
        let out = s.push(100, buf[100..].as_ptr(), 200, 3, 1 << 20);
        assert_eq!(
            out.len(),
            1,
            "reaching total_len flushes without an explicit call"
        );
        assert_eq!((out[0].offset, out[0].len, out[0].parts), (0, 300, 4));
        assert!(s.flushed, "stream retires itself once fully pushed");
        assert!(s.pend.is_none());
    }

    #[test]
    fn span_completion_fires_exactly_when_a_span_is_fully_written() {
        let spans = vec![
            SendSpan {
                offset: 0,
                len: 100,
                remaining: AtomicUsize::new(100),
                done: Completion::new(),
            },
            SendSpan {
                offset: 100,
                len: 100,
                remaining: AtomicUsize::new(100),
                done: Completion::new(),
            },
        ];
        complete_spans(&spans, 0, 150);
        assert!(spans[0].done.is_set(), "fully covered span completes");
        assert!(!spans[1].done.is_set(), "half-written span stays pending");
        complete_spans(&spans, 150, 50);
        assert!(spans[1].done.is_set(), "second write covers the remainder");
    }
}
