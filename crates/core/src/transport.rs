//! The transport seam: how fabric traffic leaves the process.
//!
//! [`Fabric`] routes every remote-bound message through a [`Transport`].
//! In-process universes use [`SharedMemTransport`], a stub that is never
//! actually called (every rank is local, so the fabric delivers straight
//! into the destination's match queues — the hot path pays exactly one
//! cached-bool branch for the seam's existence). Multiprocess universes
//! use [`SocketTransport`], the progress engine that carries the same
//! protocol over Unix-domain or TCP sockets:
//!
//! * **Eager**: the payload is framed and shipped; the receiving
//!   process's reader thread copies it into a pooled buffer and feeds it
//!   to the ordinary matching path ([`Fabric::deliver_wire_eager`]).
//! * **Rendezvous**: the sender pins its buffer in `pending_rdv` and
//!   ships an RTS. When the receiver matches it, the posted buffer parks
//!   with the transport and a CTS goes back; the sender's reader answers
//!   the CTS by framing the pinned bytes (the wire analogue of the
//!   zero-copy handoff) and only then sets the sender's completion, so
//!   `pready`/`parrived` and every completion stay the same lock-free
//!   atomics as in-process.
//! * **Partitioned streaming**: a wire-bound partitioned send announces
//!   its whole buffer with one `PartRts`; the receiver pins its whole
//!   destination and answers `PartCts`. From then on every `pready`-
//!   completed run of partitions is coalesced toward the
//!   `PCOMM_NET_AGGR` threshold and shipped as an order-independent
//!   `PartData { offset, payload }` range the moment it is ready —
//!   partitions stream across the process boundary instead of waiting
//!   for the whole buffer. Both ends are zero-copy: the source buffer
//!   is pinned (MPI forbids touching it between `start` and `wait`
//!   anyway), so writers put ranges on the wire with a vectored write
//!   straight out of application memory, and readers `read(2)` each
//!   range straight *into* the pinned destination — the only copies
//!   are the kernel's socket transfers. A message's `sent` completion
//!   flips when the writers have written its last byte; the receiver
//!   flips the per-message completions whose byte ranges have fully
//!   landed, so `parrived` goes true partition-by-partition across
//!   processes, exactly like the in-process early-bird path.
//! * **Barrier**: rank 0 coordinates; everyone ships `BarrierArrive`,
//!   rank 0 broadcasts `BarrierRelease` for the generation.
//! * **RMA**: windows announce their length to a remote origin; puts and
//!   gets become `Put`/`GetReq`/`GetResp` frames applied by the target's
//!   reader thread. Per-peer frames are FIFO, so every put of an epoch is
//!   applied before the completion/done message that follows it — remote
//!   flush rides on socket ordering.
//!
//! # Threading model
//!
//! Per peer, per lane: one **writer** thread owning that lane's write
//! half and an unbounded channel (senders only enqueue — a send can
//! never block on a remote process, so there is no distributed
//! write-write deadlock), and one **reader** thread owning the read
//! half, dispatching frames into the fabric. Lane 0 carries all
//! ordered traffic (eager, rendezvous control, barriers, RMA, abort,
//! `Bye`); lanes `1..N` (`PCOMM_NET_LANES`) carry only the
//! order-independent `PartData` ranges, round-robined so a large
//! partition stream cannot head-of-line-block small eager traffic.
//! Writers drain their channel in batches and put each batch on the
//! wire with one vectored write. Abort tears everything down: the
//! failing process broadcasts an `Abort` frame, then `shutdown(2)`
//! unblocks its own readers.

use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{self, IoSlice, Read, Write};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, OnceLock, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use pcomm_net::frame::{
    self, Frame, ABORT_MESSAGE_LOST, ABORT_MISUSE, ABORT_MISUSE_RANK, ABORT_PEER_PANICKED,
    MAX_FRAME_BODY, MAX_RESYNC_RANGES,
};
use pcomm_net::{Endpoint, Mesh, MeshConfig, WireFault, WireFaults};
use pcomm_trace::{EventKind, FaultKind, FaultPlan};

use crate::error::{PcommError, PeerSocketState};
use crate::fabric::{Fabric, MsgInfo, PostedRecv, WAIT_SLICE};
use crate::sync::{Completion, Mutex};

/// Slice for non-unwinding waits in teardown paths (mirrors the
/// fabric's `WAIT_SLICE`).
pub(crate) const TEARDOWN_SLICE: Duration = Duration::from_millis(2);

/// Hard deadline on the finalize barrier: every healthy peer reaches it
/// as soon as its closure returns, so far past this something is wrong
/// and the run fails instead of hanging.
pub(crate) const FINALIZE_TIMEOUT: Duration = Duration::from_secs(30);

/// Most frames a writer puts on the wire with one vectored write. Past
/// this the batch spans enough bytes that syscall overhead is already
/// amortised.
const WRITER_BATCH: usize = 16;

/// Hard bound on the single lane-0 reconnect attempt: long enough for
/// the peer to notice its own side died and rendezvous, short enough
/// that a genuinely dead peer becomes a typed error well inside the
/// default chaos watchdog budget.
const RECONNECT_TIMEOUT: Duration = Duration::from_secs(2);

/// First writer-queue depth that emits a `WriterQueue` trace event; each
/// further event needs double the depth (the channels are unbounded, so
/// depth growth — not blocking — is the congestion signal).
const QUEUE_HWM_BASE: usize = 64;

/// How a fabric reaches ranks hosted outside this process. All methods
/// except the introspective ones are called only for remote ranks of a
/// multiprocess run.
pub(crate) trait Transport: Send + Sync {
    /// The rank this process hosts (multiprocess runs).
    fn local_rank(&self) -> usize;

    /// Whether ranks live in separate processes.
    fn is_multiproc(&self) -> bool;

    /// Ship an eager payload to a remote rank.
    fn ship_eager(&self, dst: usize, shard: usize, ctx: u64, tag: i64, data: &[u8]);

    /// Ship a rendezvous RTS for a pinned source buffer; the buffer's
    /// `done` fires when the CTS comes back and the data has been framed.
    fn ship_rts(&self, dst: usize, shard: usize, ctx: u64, tag: i64, pinned: PinnedSend);

    /// Park a matched posted receive until the wire data lands, and
    /// answer the CTS.
    #[allow(clippy::too_many_arguments)] // one per envelope field
    fn accept_remote_rdv(
        &self,
        src: usize,
        rdv_id: u64,
        posted: PostedRecv,
        shard: usize,
        tag: i64,
        rts_ns: Option<u64>,
    );

    /// Open a partitioned stream toward `dst`: announce `total_len`
    /// pinned bytes for the pair on `ctx` and return the stream id that
    /// subsequent pushes name. `spans` are the sender's per-message byte
    /// ranges; each span's `done` fires once the writers have put its
    /// last byte on the wire.
    fn part_stream_begin(
        &self,
        dst: usize,
        ctx: u64,
        total_len: usize,
        spans: Vec<SendSpan>,
    ) -> u64;

    /// Hand one ready byte range (`parts` coalesced partitions ending
    /// their `pready`s) to the stream. `data` is *pinned*, not copied:
    /// it must stay alive and unmodified until the covering spans'
    /// `done` completions fire (fabric invariant (1) — partitioned
    /// storage lives until its signals drain). Ranges queue until the
    /// `PartCts` arrives, then flow; the stream retires itself once
    /// every one of `total_len` bytes has been pushed.
    fn part_stream_push(
        &self,
        fabric: &Fabric,
        stream_id: u64,
        offset: u64,
        data: &[u8],
        parts: u16,
    );

    /// Pin a whole partitioned destination buffer for the next stream
    /// from `src` on `ctx`; pairs FIFO with incoming `PartRts`s.
    fn part_stream_post(&self, fabric: &Fabric, src: usize, ctx: u64, recv: PartStreamRecv);

    /// Cross-process barrier (rank 0 coordinates).
    fn barrier(&self, fabric: &Fabric, rank: usize);

    /// Announce a window's length to its remote origin.
    fn announce_win(&self, origin: usize, win_ctx: u64, len: usize);

    /// Block until the remote target announced the window; returns its
    /// length.
    fn wait_win_announce(&self, fabric: &Fabric, rank: usize, win_ctx: u64) -> usize;

    /// One-sided put into a remote window.
    fn put(&self, target: usize, win_ctx: u64, offset: usize, data: &[u8]);

    /// One-sided get from a remote window (blocking round trip).
    fn get(
        &self,
        fabric: &Fabric,
        rank: usize,
        target: usize,
        win_ctx: u64,
        offset: usize,
        len: usize,
    ) -> Vec<u8>;

    /// Socket health per peer, for stall reports.
    fn peer_states(&self) -> Vec<PeerSocketState>;

    /// Tell every peer the universe failed (first broadcast wins;
    /// subsequent calls are no-ops).
    fn broadcast_abort(&self, err: &PcommError);

    /// One bounded wait step inside `Fabric::wait_on`: park until
    /// `completion` fires or a transport-chosen slice elapses; returns
    /// whether it fired. The default simply sleeps on the completion;
    /// transports without progress threads (ipc) override this to run
    /// inline progress while the app thread waits.
    fn wait_slice(&self, fabric: &Fabric, completion: &Completion) -> bool {
        let _ = fabric;
        completion.wait_timeout(WAIT_SLICE)
    }

    /// Try to pin a receiver-side destination of `len` bytes that the
    /// sender can reach directly (the ipc partition arena). Returns the
    /// transport's grant token and the mapped base pointer, or `None`
    /// when the transport has no shared destination memory (sockets) or
    /// the arena is exhausted — callers fall back to owned storage.
    fn alloc_part_dest(&self, src: usize, len: usize) -> Option<(u64, *mut u8)> {
        let _ = (src, len);
        None
    }

    /// Return a grant from `alloc_part_dest` once the receive-side
    /// storage is done with it.
    fn release_part_dest(&self, src: usize, token: u64, len: usize) {
        let _ = (src, token, len);
    }
}

/// A rendezvous source buffer pinned for the wire: the pointer stays
/// valid until `done` is set (fabric invariant (1) — the safe wrappers
/// block or hold the ticket until then).
pub(crate) struct PinnedSend {
    pub(crate) ptr: *const u8,
    pub(crate) len: usize,
    pub(crate) done: Arc<Completion>,
}

// SAFETY: the pointer is only read by the sender's own reader thread
// (answering the CTS) before `done.set()`; invariant (1) keeps the
// buffer alive and unmodified until then, and the post-abort grace in
// the drain paths covers a copy already in flight.
unsafe impl Send for PinnedSend {}

/// One message of a pinned partitioned destination: the byte range it
/// owns and the request state to flip once every byte has landed.
pub(crate) struct PartStreamMsg {
    /// Byte offset of the message in the whole destination buffer.
    pub(crate) offset: usize,
    /// Message length in bytes.
    pub(crate) len: usize,
    /// Bytes of the range not yet committed; initialised to `len`.
    pub(crate) remaining: AtomicUsize,
    /// The `parrived`/wait completion for the message.
    pub(crate) completion: Arc<Completion>,
    /// Envelope slot the fabric fills on completion.
    pub(crate) info: Arc<Mutex<Option<MsgInfo>>>,
    /// Verify-layer identity `(request, message)` for the recv event.
    pub(crate) verify_msg: Option<(u16, u16)>,
    /// Message tag (the message index, as in the eager/rdv path).
    pub(crate) tag: i64,
}

/// A whole partitioned destination buffer pinned for an incoming
/// stream, handed to the transport by `precv.start()`.
pub(crate) struct PartStreamRecv {
    /// Base of the destination buffer.
    pub(crate) base: *mut u8,
    /// Whole-buffer length in bytes.
    pub(crate) total_len: usize,
    /// Per-message ranges covering `0..total_len`.
    pub(crate) msgs: Vec<PartStreamMsg>,
}

// SAFETY: the destination buffer outlives the stream (the receiving
// request's storage is pinned until its completions fire and the
// request drains them before release — invariant (1) again), and the
// reader threads that dereference `base` only write disjoint ranges.
unsafe impl Send for PartStreamRecv {}

/// One message's byte span of a pinned partitioned *source* buffer:
/// `done` (the sender's "buffer reusable" signal) flips once the
/// writers have put every byte of the span on the wire.
pub(crate) struct SendSpan {
    /// Byte offset of the message in the whole source buffer.
    pub(crate) offset: usize,
    /// Message length in bytes.
    pub(crate) len: usize,
    /// Bytes of the span not yet written; initialised to `len`.
    pub(crate) remaining: AtomicUsize,
    /// The sender-side wait completion for the message.
    pub(crate) done: Arc<Completion>,
}

/// One coalesced run of ready partitions, pinned in the source buffer
/// (adjacent pushes are contiguous memory, so coalescing just extends
/// the length).
struct PinChunk {
    /// Byte offset of the run in the whole source buffer.
    offset: u64,
    /// First byte of the run; valid until the covering spans complete.
    ptr: *const u8,
    /// Run length in bytes.
    len: usize,
    /// Partitions coalesced into the run (trace geometry).
    parts: u16,
}

// SAFETY: the pointed-to source buffer stays alive and unmodified until
// the covering spans' `done` completions fire (fabric invariant (1) —
// the request drains them before its storage drops), and only writer
// threads read through it.
unsafe impl Send for PinChunk {}

/// Sender-side state of one partitioned stream: the aggregation window
/// plus ranges queued while the `PartCts` is still in flight.
struct StreamSend {
    dst: usize,
    /// The receiver pinned its destination (`PartCts` arrived).
    cts: bool,
    /// Every byte was pushed and the tail auto-flushed; the entry dies
    /// once `cts` is also true.
    flushed: bool,
    /// Whole-buffer length; pushes auto-flush the tail on reaching it.
    total_len: usize,
    /// Bytes pushed so far.
    pushed: usize,
    /// The open aggregation window: grows while pushes stay adjacent.
    pend: Option<PinChunk>,
    /// Threshold-complete chunks waiting for the CTS.
    queued: Vec<PinChunk>,
    /// Per-message spans the writers complete as chunk writes finish.
    spans: Arc<Vec<SendSpan>>,
}

impl StreamSend {
    /// Fold one pushed range into the aggregation window and return the
    /// chunks (if any) that are now ready for the wire: adjacent ranges
    /// coalesce until they reach `aggr`, a gap flushes the open window,
    /// an already-threshold-sized range goes out directly, and the final
    /// byte of the buffer flushes whatever remains (no separate flush
    /// call, so `wait` can never deadlock against an unshipped tail).
    fn push(
        &mut self,
        offset: u64,
        ptr: *const u8,
        len: usize,
        parts: u16,
        aggr: usize,
    ) -> Vec<PinChunk> {
        self.pushed += len;
        let mut out = Vec::new();
        match &mut self.pend {
            Some(p) if p.offset + p.len as u64 == offset => {
                // Adjacent in the source buffer ⇒ contiguous memory:
                // extend the pinned run in place.
                // SAFETY: `p.ptr + p.len` stays within (one past) the
                // same pinned allocation the run came from.
                debug_assert_eq!(unsafe { p.ptr.add(p.len) }, ptr, "adjacent ⇒ contiguous");
                p.len += len;
                p.parts = p.parts.saturating_add(parts);
                if p.len >= aggr {
                    // PANIC: this match arm bound `Some(p)` from `pend`.
                    out.push(self.pend.take().expect("pend checked above"));
                }
            }
            _ => {
                if let Some(p) = self.pend.take() {
                    out.push(p);
                }
                let chunk = PinChunk {
                    offset,
                    ptr,
                    len,
                    parts,
                };
                if len >= aggr {
                    out.push(chunk);
                } else {
                    self.pend = Some(chunk);
                }
            }
        }
        if self.pushed >= self.total_len {
            self.flushed = true;
            if let Some(p) = self.pend.take() {
                out.push(p);
            }
        }
        out
    }
}

/// Receiver-side state of one active partitioned stream: where ranges
/// land and which message completions they flip.
pub(crate) struct StreamRecv {
    pub(crate) base: *mut u8,
    pub(crate) total_len: usize,
    /// Bytes of the whole buffer not yet committed; the stream retires
    /// when this hits zero.
    pub(crate) remaining_total: AtomicUsize,
    pub(crate) msgs: Vec<PartStreamMsg>,
    /// Sorted, disjoint byte intervals already committed. Failover and
    /// reconnect replay whole batches (at-least-once delivery), so every
    /// commit first claims its range here and only the never-seen-before
    /// sub-ranges count — a duplicate `PartData` is a no-op.
    pub(crate) committed: Mutex<Vec<(usize, usize)>>,
}

// SAFETY: same argument as [`PartStreamRecv`]; `Sync` because multiple
// reader lanes commit concurrently, but every byte of the destination
// belongs to exactly one `PartData` frame, so writes never alias.
unsafe impl Send for StreamRecv {}
unsafe impl Sync for StreamRecv {}

/// FIFO pairing of incoming `PartRts`s with posted destinations for one
/// `(src, ctx)` partitioned pair — whichever side shows up first waits.
#[derive(Default)]
pub(crate) struct PartPair {
    /// Streams announced by the sender, not yet posted: `(id, len)`.
    pub(crate) pending_rts: VecDeque<(u64, usize)>,
    /// Destinations posted by the receiver, not yet announced.
    pub(crate) waiting: VecDeque<PartStreamRecv>,
}

/// A pinned partitioned range headed for the wire: the writer encodes
/// an 18-byte `PartData` header into scratch and writes the payload
/// straight from the source buffer (no copy), then completes the spans
/// the range covers.
struct StreamWrite {
    rdv_id: u64,
    offset: u64,
    ptr: *const u8,
    len: usize,
    spans: Arc<Vec<SendSpan>>,
}

// SAFETY: same argument as [`PinChunk`] — the source stays pinned until
// the spans' `done` completions fire, and only the owning writer thread
// reads through the pointer.
unsafe impl Send for StreamWrite {}

/// A CTS-released rendezvous payload travelling to the wire without an
/// intermediate copy: the 14 header bytes go in writer scratch, the
/// payload slice is handed to the kernel straight from the pinned
/// source buffer, and `pinned.done` fires only after the vectored
/// write — so large non-partitioned sends pay one kernel copy instead
/// of three buffer hops (pinned→Vec, Vec→scratch, scratch→socket).
struct RdvWrite {
    rdv_id: u64,
    pinned: PinnedSend,
}

/// What a writer thread consumes. Frames cross the channel undecoded;
/// the writer encodes into its own reusable scratch buffers.
enum WriterMsg {
    /// A frame to put on the wire.
    Frame(Frame),
    /// A pinned partitioned range (zero-copy payload).
    Stream(StreamWrite),
    /// A pinned rendezvous payload (zero-copy, lane 0).
    Rdv(RdvWrite),
    /// Flush and exit (teardown).
    Shutdown,
}

/// A pinned rendezvous send waiting for its CTS.
struct PendingRdv {
    pinned: PinnedSend,
    dst: usize,
}

/// A matched posted receive waiting for its wire data.
struct RemoteRecv {
    posted: PostedRecv,
    shard: usize,
    tag: i64,
    /// Local timestamp of the RTS frame's arrival, for the RdvCopy span.
    rts_ns: Option<u64>,
}

/// One writer lane of a peer: its own socket, a writer thread draining
/// `tx`, and a direct write handle under `direct` that lets *reader*
/// threads put a CTS-released batch on the wire without a thread hop.
struct Lane {
    /// The original stream; kept for `shutdown` (which unblocks the
    /// reader on abort). Reader and writer own `try_clone`s.
    endpoint: Endpoint,
    tx: Sender<WriterMsg>,
    /// Taken by `start`.
    rx: Mutex<Option<Receiver<WriterMsg>>>,
    writer: Mutex<Option<JoinHandle<()>>>,
    /// The write half. The lane's writer thread locks it per batch;
    /// reader threads releasing a CTS batch write under the same mutex
    /// directly, skipping the context switch that would otherwise cap
    /// partitioned bandwidth on small machines. App threads never
    /// write here — a `pready` must not donate its timeslice to a
    /// blocking socket write. After a lane-0 reconnect this holds the
    /// re-handshaken endpoint.
    direct: Mutex<Option<Endpoint>>,
    /// Cleared when the lane's socket dies; dead data lanes drop out of
    /// the round-robin and their in-flight work fails over.
    alive: AtomicBool,
    /// Writer messages enqueued but not yet consumed by the writer
    /// thread (the backlog of the unbounded channel).
    queued: AtomicUsize,
    /// Verify-grade runs only: monotone per-lane frame counter, bumped
    /// under the lane's `direct` mutex just before each frame's write so
    /// `VerifyWireSend.seq` reproduces exact wire order. Never reset —
    /// a gap in one rank's recorded seqs marks ring overflow, not loss.
    tx_seq: AtomicU32,
}

impl Lane {
    /// Enqueue one writer message, keeping the backlog counter honest.
    /// Gives the message back when the writer thread is gone (lane died
    /// or teardown), so callers can reroute it.
    fn enqueue(&self, msg: WriterMsg) -> Result<(), WriterMsg> {
        // ORDERING: `queued` is an advisory backlog gauge read for
        // congestion tracing and diagnostics; nothing synchronizes on
        // it, so a momentarily stale count is harmless.
        self.queued.fetch_add(1, Ordering::Relaxed);
        match self.tx.send(msg) {
            Ok(()) => Ok(()),
            Err(back) => {
                // ORDERING: same advisory gauge as the increment above.
                self.queued.fetch_sub(1, Ordering::Relaxed);
                Err(back.0)
            }
        }
    }

    /// The writer thread took one message off the channel.
    fn dequeued(&self) {
        // ORDERING: `queued` is an advisory backlog gauge (see
        // `enqueue`); exact interleaving with readers does not matter.
        self.queued.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Outcome of the single bounded lane-0 reconnect attempt for a peer.
enum Reconnected {
    /// Never attempted.
    No,
    /// Attempted and failed: the peer is gone for good.
    Failed,
    /// The re-handshaken lane-0 endpoint (reader/writer use clones; kept
    /// here so teardown can `shutdown` / time-bound it like the
    /// original).
    Yes(Endpoint),
}

/// Per-peer socket machinery: `lanes[0]` is the ordered lane, the rest
/// carry `PartData` only.
struct Peer {
    lanes: Vec<Lane>,
    connected: Arc<AtomicBool>,
    frames_sent: Arc<AtomicU64>,
    frames_received: Arc<AtomicU64>,
    saw_bye: Arc<AtomicBool>,
    /// Round-robin cursor over the data lanes.
    next_lane: AtomicUsize,
    /// Transport-relative ms timestamp of the last frame read from this
    /// peer on any lane — the liveness signal the heartbeat monitor
    /// escalates on.
    last_heard_ms: AtomicU64,
    /// The one bounded lane-0 reconnect, shared by the reader and writer
    /// threads (whichever notices the death first performs it; the other
    /// blocks on this lock and reuses the outcome).
    reconnect: Mutex<Reconnected>,
    /// Reconnect epoch for audit events: 0 until the peer's one bounded
    /// lane-0 reconnect succeeds, 1 after. Bumped while the lane-0
    /// `direct` mutex is held, so writers reading it under that mutex
    /// always stamp frames with the epoch of the socket they write to.
    epoch: AtomicU32,
}

/// The socket progress engine: per-peer-per-lane reader/writer threads
/// plus the request state they complete (see the module docs for the
/// model).
pub(crate) struct SocketTransport {
    rank: usize,
    n_ranks: usize,
    peers: Vec<Option<Peer>>,
    next_rdv_id: AtomicU64,
    /// `PCOMM_NET_AGGR`: partition-stream aggregation threshold.
    aggr: usize,
    /// Sender side: pinned buffers waiting for a CTS, by rendezvous id.
    pending_rdv: Mutex<HashMap<u64, PendingRdv>>,
    /// Receiver side: matched buffers waiting for data, by (src, id).
    remote_recvs: Mutex<HashMap<(usize, u64), RemoteRecv>>,
    /// Sender side: open partitioned streams, by stream id.
    streams_out: Mutex<HashMap<u64, StreamSend>>,
    /// Receiver side: RTS/post pairing per partitioned (src, ctx) pair.
    part_registry: Mutex<HashMap<(usize, u64), PartPair>>,
    /// Receiver side: active streams taking `PartData`, by (src, id).
    streams_in: Mutex<HashMap<(usize, u64), Arc<StreamRecv>>>,
    /// This process's barrier generation counter (SPMD-aligned).
    barrier_gen: AtomicU64,
    /// Rank 0 only: which ranks arrived per generation. A set, not a
    /// count: the ordered lane is at-least-once across a reconnect, so a
    /// replayed `BarrierArrive` must not double-count.
    arrivals: Mutex<HashMap<u64, HashSet<usize>>>,
    /// Release completions per generation (waiter or release creates).
    releases: Mutex<HashMap<u64, Arc<Completion>>>,
    /// Window announcements: completion + announced length per win ctx.
    #[allow(clippy::type_complexity)]
    win_slots: Mutex<HashMap<u64, (Arc<Completion>, Option<usize>)>>,
    next_get_token: AtomicU64,
    /// In-flight gets: completion + landing slot per token.
    #[allow(clippy::type_complexity)]
    get_waiters: Mutex<HashMap<u64, (Arc<Completion>, Arc<Mutex<Option<Vec<u8>>>>)>>,
    abort_sent: AtomicBool,
    readers: Mutex<Vec<JoinHandle<()>>>,
    /// Mesh parameters, kept for the bounded lane-0 reconnect.
    cfg: MeshConfig,
    /// `PCOMM_NET_HB_MS`: heartbeat interval; `None` disables liveness.
    hb_ms: Option<u64>,
    hb_stop: AtomicBool,
    hb_thread: Mutex<Option<JoinHandle<()>>>,
    /// Transport epoch for the ms timestamps in `last_heard_ms`.
    t0: Instant,
    /// Sender side: span sets of live outgoing streams, for answering a
    /// receiver's `StreamResync` after a reconnect. Pruned lazily when
    /// new streams begin.
    resync_spans: Mutex<HashMap<u64, Arc<Vec<SendSpan>>>>,
    /// Set by `start`; lets the wire-fault observer (built in `new`,
    /// before the fabric exists) emit trace events. `Weak` so the
    /// fabric → transport → endpoint → observer chain is not a cycle.
    fault_obs: Arc<OnceLock<Weak<Fabric>>>,
}

impl SocketTransport {
    /// Wrap an established mesh. Threads start in
    /// [`SocketTransport::start`], once the fabric exists. When `plan`
    /// carries wire-class faults every lane endpoint is wrapped in the
    /// seeded fault injector, with an observer that traces each
    /// injection once the fabric is attached.
    pub(crate) fn new(mesh: Mesh, cfg: MeshConfig, plan: Option<&FaultPlan>) -> SocketTransport {
        let rank = mesh.rank;
        let n_ranks = mesh.n_ranks;
        let fault_obs: Arc<OnceLock<Weak<Fabric>>> = Arc::new(OnceLock::new());
        let wire = plan.filter(|p| p.any_wire_faults()).map(|p| {
            let obs = Arc::clone(&fault_obs);
            let local = rank as u16;
            Arc::new(WireFaults {
                seed: p.seed,
                torn: p.wire_torn_p,
                short_read: p.wire_short_read_p,
                garbage: p.wire_garbage_p,
                reset: p.wire_reset_p,
                lane_kill: p.wire_lane_kill,
                half_open: p.wire_half_open,
                on_fault: Some(Arc::new(move |kind, peer, lane| {
                    if let Some(fabric) = obs.get().and_then(Weak::upgrade) {
                        fabric.trace().emit(local, || EventKind::FaultInjected {
                            fault: wire_fault_kind(kind),
                            dst: peer as u16,
                            tag: lane as i64,
                            arg: 0,
                        });
                    }
                })),
            })
        });
        let peers = mesh
            .peers
            .into_iter()
            .enumerate()
            .map(|(peer_rank, eps)| {
                eps.map(|endpoints| {
                    let lanes = endpoints
                        .into_iter()
                        .enumerate()
                        .map(|(lane_idx, endpoint)| {
                            let endpoint = match &wire {
                                Some(plan) => endpoint.with_faults(
                                    Arc::clone(plan),
                                    peer_rank as u32,
                                    lane_idx as u32,
                                ),
                                None => endpoint,
                            };
                            let (tx, rx) = std::sync::mpsc::channel();
                            Lane {
                                endpoint,
                                tx,
                                rx: Mutex::new(Some(rx)),
                                writer: Mutex::new(None),
                                direct: Mutex::new(None),
                                alive: AtomicBool::new(true),
                                queued: AtomicUsize::new(0),
                                tx_seq: AtomicU32::new(0),
                            }
                        })
                        .collect();
                    Peer {
                        lanes,
                        connected: Arc::new(AtomicBool::new(true)),
                        frames_sent: Arc::new(AtomicU64::new(0)),
                        frames_received: Arc::new(AtomicU64::new(0)),
                        saw_bye: Arc::new(AtomicBool::new(false)),
                        next_lane: AtomicUsize::new(0),
                        last_heard_ms: AtomicU64::new(0),
                        reconnect: Mutex::new(Reconnected::No),
                        epoch: AtomicU32::new(0),
                    }
                })
            })
            .collect();
        SocketTransport {
            rank,
            n_ranks,
            peers,
            next_rdv_id: AtomicU64::new(0),
            aggr: pcomm_net::launch::aggr_from_env(),
            pending_rdv: Mutex::new(HashMap::new()),
            remote_recvs: Mutex::new(HashMap::new()),
            streams_out: Mutex::new(HashMap::new()),
            part_registry: Mutex::new(HashMap::new()),
            streams_in: Mutex::new(HashMap::new()),
            barrier_gen: AtomicU64::new(0),
            arrivals: Mutex::new(HashMap::new()),
            releases: Mutex::new(HashMap::new()),
            win_slots: Mutex::new(HashMap::new()),
            next_get_token: AtomicU64::new(0),
            get_waiters: Mutex::new(HashMap::new()),
            abort_sent: AtomicBool::new(false),
            readers: Mutex::new(Vec::new()),
            cfg,
            hb_ms: pcomm_net::launch::hb_ms_from_env(),
            hb_stop: AtomicBool::new(false),
            hb_thread: Mutex::new(None),
            t0: Instant::now(),
            resync_spans: Mutex::new(HashMap::new()),
            fault_obs,
        }
    }

    /// Milliseconds since the transport was built (the epoch of
    /// `last_heard_ms`).
    fn now_ms(&self) -> u64 {
        self.t0.elapsed().as_millis() as u64
    }

    /// A frame arrived from `peer` — refresh its liveness timestamp.
    fn note_heard(&self, peer: usize) {
        if let Some(p) = &self.peers[peer] {
            // ORDERING: liveness timestamp read only by the heartbeat
            // monitor to estimate quiet time; a stale read just shifts
            // the estimate by one poll interval.
            p.last_heard_ms.store(self.now_ms(), Ordering::Relaxed);
        }
    }

    /// Audit hook: one frame is about to leave on `lane_idx` toward
    /// `dst`. Callers hold the lane's `direct` mutex (or run on its
    /// writer thread mid-batch, which writes under the same mutex), so
    /// the per-lane `tx_seq` order is exact wire order and the epoch
    /// read matches the socket the frame goes to. No-op unless the
    /// trace is verify-grade.
    fn emit_wire_send(&self, fabric: &Fabric, dst: usize, lane_idx: usize, op: u8) {
        let trace = fabric.trace();
        if !trace.is_verify() {
            return;
        }
        let Some(peer) = &self.peers[dst] else {
            return;
        };
        // ORDERING: Relaxed suffices — the lane's `direct` mutex already
        // serialises every sender on this counter; the atomic is only a
        // convenience over `Mutex<u32>`.
        let seq = peer.lanes[lane_idx].tx_seq.fetch_add(1, Ordering::Relaxed);
        // Only lane 0 ever reconnects (`recover_lane0`); data lanes live
        // and die on one socket, so their frames are all epoch 0 — which
        // must match the receiver's reader-local count, not the shared
        // peer epoch a lane-0 reconnect bumps.
        let epoch = if lane_idx == 0 {
            peer.epoch.load(Ordering::Acquire)
        } else {
            0
        };
        let (p16, l16, op16) = (dst as u16, lane_idx as u16, op as u16);
        trace.emit_verify(self.rank as u16, || EventKind::VerifyWireSend {
            peer: p16,
            lane: l16,
            op: op16,
            epoch,
            seq,
        });
    }

    /// Audit hook: the `PartData` range `offset..offset+len` of stream
    /// `rdv_id` is about to leave on `lane_idx`. Same locking contract
    /// as [`emit_wire_send`](Self::emit_wire_send); emitted before the
    /// write so a torn batch still records what may have reached the
    /// peer. No-op unless the trace is verify-grade.
    fn emit_stream_data_tx(
        &self,
        fabric: &Fabric,
        dst: usize,
        lane_idx: usize,
        rdv_id: u64,
        offset: u64,
        len: usize,
    ) {
        let (p16, l16, stream) = (dst as u16, lane_idx as u16, rdv_id as u32);
        let len32 = len as u32;
        fabric
            .trace()
            .emit_verify(self.rank as u16, || EventKind::VerifyStreamData {
                peer: p16,
                lane: l16,
                tx: true,
                stream,
                offset,
                len: len32,
            });
    }

    /// Spawn the per-peer-per-lane reader and writer threads (plus the
    /// heartbeat monitor when enabled). Called once, after the fabric
    /// referencing this transport exists. Thread-spawn or socket-clone
    /// failure comes back as a typed error instead of a panic: resource
    /// exhaustion at launch is an environment problem, not a bug.
    pub(crate) fn start(
        self: &Arc<SocketTransport>,
        fabric: &Arc<Fabric>,
    ) -> Result<(), PcommError> {
        let start_err = |what: &str, e: io::Error| PcommError::Misuse {
            rank: Some(self.rank),
            detail: format!("transport start: {what}: {e}"),
        };
        let _ = self.fault_obs.set(Arc::downgrade(fabric));
        let now = self.now_ms();
        let mut readers = self.readers.lock();
        for (peer_rank, peer) in self.peers.iter().enumerate() {
            let Some(peer) = peer else {
                continue;
            };
            // ORDERING: liveness timestamp (see `note_heard`); the
            // heartbeat monitor tolerates staleness.
            peer.last_heard_ms.store(now, Ordering::Relaxed);
            for (lane_idx, lane) in peer.lanes.iter().enumerate() {
                let rx = lane
                    .rx
                    .lock()
                    .take()
                    // PANIC: `Universe::run` calls `start` exactly once
                    // per transport; the rx halves are taken only here.
                    .expect("SocketTransport::start called twice");
                // Every lane gets BOTH a write handle under the lane
                // mutex and a writer thread draining the channel. App
                // threads always enqueue (a `pready` must never block
                // on socket I/O — inline writes stall the computation
                // for a scheduler quantum on oversubscribed hosts);
                // reader threads releasing a CTS batch write directly
                // under the same mutex, skipping the thread hop.
                *lane.direct.lock() = Some(
                    lane.endpoint
                        .try_clone()
                        .map_err(|e| start_err("cloning the lane write handle", e))?,
                );
                let sent = Arc::clone(&peer.frames_sent);
                let connected = Arc::clone(&peer.connected);
                let f = Arc::clone(fabric);
                let t = Arc::clone(self);
                let writer = std::thread::Builder::new()
                    .name(format!("pcomm-wr{peer_rank}.{lane_idx}"))
                    .spawn(move || writer_loop(t, rx, f, peer_rank, lane_idx, sent, connected))
                    .map_err(|e| start_err("spawning a writer thread", e))?;
                *lane.writer.lock() = Some(writer);

                let ep = lane
                    .endpoint
                    .try_clone()
                    .map_err(|e| start_err("cloning the lane read handle", e))?;
                let received = Arc::clone(&peer.frames_received);
                let connected = Arc::clone(&peer.connected);
                let saw_bye = Arc::clone(&peer.saw_bye);
                let t = Arc::clone(self);
                let f = Arc::clone(fabric);
                let reader = std::thread::Builder::new()
                    .name(format!("pcomm-rd{peer_rank}.{lane_idx}"))
                    .spawn(move || {
                        reader_loop(t, f, peer_rank, lane_idx, ep, received, connected, saw_bye)
                    })
                    .map_err(|e| start_err("spawning a reader thread", e))?;
                readers.push(reader);
            }
        }
        drop(readers);
        if self.hb_ms.is_some() {
            let t = Arc::clone(self);
            let f = Arc::clone(fabric);
            let hb = std::thread::Builder::new()
                .name("pcomm-hb".into())
                .spawn(move || heartbeat_loop(t, f))
                .map_err(|e| start_err("spawning the heartbeat thread", e))?;
            *self.hb_thread.lock() = Some(hb);
        }
        Ok(())
    }

    /// Enqueue one frame toward `dst` on a specific lane (never blocks;
    /// the writer thread does the I/O). Sends to an already-torn-down
    /// peer are dropped.
    fn send_frame_lane(&self, dst: usize, lane: usize, frame: Frame) {
        if let Some(peer) = &self.peers[dst] {
            let _ = peer.lanes[lane].enqueue(WriterMsg::Frame(frame));
        }
    }

    /// Enqueue one ordered frame toward `dst` (lane 0).
    fn send_frame(&self, dst: usize, frame: Frame) {
        self.send_frame_lane(dst, 0, frame);
    }

    /// Round-robin a `PartData` chunk over the *surviving* data lanes;
    /// dead lanes drop out of the rotation. With one lane (or every
    /// data lane down) everything shares lane 0.
    fn pick_lane(&self, peer: &Peer) -> usize {
        let n = peer.lanes.len();
        if n > 1 {
            for _ in 0..n - 1 {
                // ORDERING: round-robin cursor — any interleaving still
                // picks a valid lane; fairness is best-effort.
                let lane = 1 + peer.next_lane.fetch_add(1, Ordering::Relaxed) % (n - 1);
                if peer.lanes[lane].alive.load(Ordering::Acquire) {
                    return lane;
                }
            }
        }
        0
    }

    /// A data lane's socket died. First caller (reader and writer race)
    /// marks it dead, kills both halves so the twin thread and the
    /// remote end stop waiting on it, and traces the death. Lane 0 never
    /// goes through here — its failure is a reconnect, not a failover.
    fn data_lane_failed(&self, fabric: &Fabric, peer_rank: usize, lane_idx: usize) {
        debug_assert!(lane_idx > 0, "lane 0 recovers, it does not fail over");
        let Some(peer) = &self.peers[peer_rank] else {
            return;
        };
        let lane = &peer.lanes[lane_idx];
        if !lane.alive.swap(false, Ordering::AcqRel) {
            return;
        }
        lane.endpoint.shutdown();
        let (p16, l16) = (peer_rank as u16, lane_idx as u16);
        fabric
            .trace()
            .emit(self.rank as u16, || EventKind::LaneDown {
                peer: p16,
                lane: l16,
            });
    }

    /// Re-route one pinned stream range after its lane died: pick a
    /// surviving lane (data lanes first, lane 0 as the last resort) and
    /// enqueue it there. An enqueue can only fail when that lane's
    /// writer exited too — mark it dead and keep going; a failed lane-0
    /// enqueue means the universe is tearing down and the range's
    /// waiters unwind via the abort.
    fn requeue_stream(&self, dst: usize, sw: StreamWrite) {
        let Some(peer) = &self.peers[dst] else {
            return;
        };
        let mut msg = WriterMsg::Stream(sw);
        loop {
            let lane_idx = self.pick_lane(peer);
            match peer.lanes[lane_idx].enqueue(msg) {
                Ok(()) => return,
                Err(back) => {
                    peer.lanes[lane_idx].alive.store(false, Ordering::Release);
                    if lane_idx == 0 {
                        return;
                    }
                    msg = back;
                }
            }
        }
    }

    /// Put the ready chunks of stream `rdv_id` on the wire toward
    /// `dst`, round-robined over the data lanes. `inline` picks the
    /// write discipline: reader threads (CTS release) pass `true` and
    /// write each lane's share directly as one vectored batch (headers
    /// from the stack, payloads straight from the pinned source — no
    /// thread hop); app threads (post-CTS `pready`) pass `false` and
    /// enqueue to the lane writers instead, because a blocking socket
    /// write inside `pready` stalls the computation for a scheduler
    /// quantum whenever the host is oversubscribed.
    fn dispatch_chunks(
        &self,
        fabric: &Fabric,
        dst: usize,
        rdv_id: u64,
        spans: &Arc<Vec<SendSpan>>,
        chunks: Vec<PinChunk>,
        inline: bool,
    ) {
        let Some(peer) = &self.peers[dst] else {
            return;
        };
        let n_lanes = peer.lanes.len();
        let mut buckets: Vec<Vec<PinChunk>> = (0..n_lanes).map(|_| Vec::new()).collect();
        for chunk in chunks {
            let lane = self.pick_lane(peer);
            let (parts, offset, bytes) = (chunk.parts, chunk.offset, chunk.len as u64);
            fabric
                .trace()
                .emit(self.rank as u16, || EventKind::StreamChunk {
                    lane: lane as u16,
                    parts,
                    offset,
                    bytes,
                });
            buckets[lane].push(chunk);
        }
        if !inline {
            for (lane_idx, bucket) in buckets.into_iter().enumerate() {
                for chunk in bucket {
                    let sw = StreamWrite {
                        rdv_id,
                        offset: chunk.offset,
                        ptr: chunk.ptr,
                        len: chunk.len,
                        spans: Arc::clone(spans),
                    };
                    if let Err(WriterMsg::Stream(sw)) =
                        peer.lanes[lane_idx].enqueue(WriterMsg::Stream(sw))
                    {
                        // Writer already gone (lane died under us):
                        // reroute to a survivor.
                        self.requeue_stream(dst, sw);
                    }
                }
            }
            return;
        }
        for (lane_idx, bucket) in buckets.into_iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let lane = &peer.lanes[lane_idx];
            let mut guard = lane.direct.lock();
            let Some(ep) = guard.as_mut() else {
                drop(guard);
                for chunk in bucket {
                    let sw = StreamWrite {
                        rdv_id,
                        offset: chunk.offset,
                        ptr: chunk.ptr,
                        len: chunk.len,
                        spans: Arc::clone(spans),
                    };
                    if let Err(WriterMsg::Stream(sw)) = lane.enqueue(WriterMsg::Stream(sw)) {
                        self.requeue_stream(dst, sw);
                    }
                }
                continue;
            };
            if fabric.aborted() {
                // The source buffers may already be unwinding: drop the
                // chunks unsent (their waiters unwind via the abort).
                continue;
            }
            let headers: Vec<[u8; 4 + frame::PART_DATA_BODY_HDR]> = bucket
                .iter()
                .map(|c| frame::part_data_header(rdv_id, c.offset, c.len))
                .collect();
            let mut slices: Vec<&[u8]> = Vec::with_capacity(bucket.len() * 2);
            for (header, chunk) in headers.iter().zip(&bucket) {
                slices.push(header);
                // SAFETY: the source buffer stays pinned until the
                // spans completed below fire (invariant (1)); the abort
                // check above plus the drain grace cover teardown
                // races, as in the rendezvous CTS path.
                slices.push(unsafe { std::slice::from_raw_parts(chunk.ptr, chunk.len) });
            }
            for chunk in &bucket {
                self.emit_wire_send(fabric, dst, lane_idx, frame::op::PART_DATA);
                self.emit_stream_data_tx(fabric, dst, lane_idx, rdv_id, chunk.offset, chunk.len);
            }
            let wrote = write_all_vectored(ep, &slices).and_then(|()| ep.flush());
            drop(slices);
            drop(guard);
            if wrote.is_err() {
                if fabric.aborted() {
                    continue;
                }
                if lane_idx > 0 {
                    // The bucket never reached the wire (or did so only
                    // partially — the receiver's interval ledger absorbs
                    // the overlap): fail the lane over and replay the
                    // chunks on survivors.
                    self.data_lane_failed(fabric, dst, lane_idx);
                }
                let requeued = bucket.len() as u64;
                for chunk in bucket {
                    let sw = StreamWrite {
                        rdv_id,
                        offset: chunk.offset,
                        ptr: chunk.ptr,
                        len: chunk.len,
                        spans: Arc::clone(spans),
                    };
                    // For lane 0 (single-lane meshes) this re-enqueues to
                    // the lane-0 writer, whose own error path performs
                    // the bounded reconnect-and-retry.
                    self.requeue_stream(dst, sw);
                }
                let (p16, l16) = (dst as u16, lane_idx as u16);
                fabric
                    .trace()
                    .emit(self.rank as u16, || EventKind::LaneFailover {
                        peer: p16,
                        lane: l16,
                        requeued,
                    });
                continue;
            }
            for chunk in &bucket {
                complete_spans(spans, chunk.offset as usize, chunk.len);
            }
            let sent = bucket.len() as u64;
            // ORDERING: statistics counter surfaced in diagnostics
            // snapshots only; no memory is published through it.
            peer.frames_sent.fetch_add(sent, Ordering::Relaxed);
        }
    }

    /// Receiver: a sender announced a stream. Pair it with a posted
    /// destination if one is waiting, else park the announcement.
    fn handle_part_rts(
        &self,
        fabric: &Fabric,
        src: usize,
        ctx: u64,
        total_len: usize,
        rdv_id: u64,
    ) {
        {
            let (p16, stream, total) = (src as u16, rdv_id as u32, total_len as u64);
            fabric
                .trace()
                .emit_verify(self.rank as u16, || EventKind::VerifyStreamRts {
                    peer: p16,
                    tx: false,
                    stream,
                    total_len: total,
                });
        }
        let recv = {
            let mut reg = self.part_registry.lock();
            let pair = reg.entry((src, ctx)).or_default();
            match pair.waiting.pop_front() {
                Some(recv) => Some(recv),
                None => {
                    pair.pending_rts.push_back((rdv_id, total_len));
                    None
                }
            }
        };
        if let Some(recv) = recv {
            self.activate_stream(fabric, src, rdv_id, total_len, recv, true);
        }
    }

    /// Receiver: a posted destination met its announcement — validate,
    /// register the active stream, and clear the sender to stream.
    /// `inline` is true when called from a reader thread (RTS arrival),
    /// false from an app thread (`start` posting the destination).
    fn activate_stream(
        &self,
        fabric: &Fabric,
        src: usize,
        rdv_id: u64,
        total_len: usize,
        recv: PartStreamRecv,
        inline: bool,
    ) {
        if recv.total_len != total_len {
            fabric.fail(PcommError::misuse(
                src,
                format!(
                    "partitioned stream length mismatch: sender announced {total_len} B, \
                     receiver pinned {} B",
                    recv.total_len
                ),
            ));
            return;
        }
        let trace = fabric.trace();
        if trace.is_verify() {
            // The receiver is the only side that knows both the wire
            // stream id and the verify-layer (req, msg) identities; these
            // join events let the offline auditor unify the two ranks'
            // independently-interned request ids.
            let stream32 = rdv_id as u32;
            for msg in recv.msgs.iter() {
                let Some((req, m16)) = msg.verify_msg else {
                    continue;
                };
                let (off, len32) = (msg.offset as u64, msg.len as u32);
                trace.emit_verify(self.rank as u16, || EventKind::VerifyStreamMsg {
                    stream: stream32,
                    req,
                    msg: m16,
                    tx: false,
                    offset: off,
                    len: len32,
                });
            }
            let p16 = src as u16;
            let epoch = self.peers[src]
                .as_ref()
                .map_or(0, |p| p.epoch.load(Ordering::Acquire));
            trace.emit_verify(self.rank as u16, || EventKind::VerifyStreamCts {
                peer: p16,
                tx: true,
                stream: stream32,
                epoch,
            });
        }
        let stream = Arc::new(StreamRecv {
            base: recv.base,
            total_len,
            remaining_total: AtomicUsize::new(total_len),
            msgs: recv.msgs,
            committed: Mutex::new(Vec::new()),
        });
        self.streams_in.lock().insert((src, rdv_id), stream);
        // From a reader thread, prefer a direct data-lane write for the
        // CTS: the sender's data-lane reader then dispatches the queued
        // chunks from its own thread, so the whole release chain costs
        // no writer-thread wakeups. The CTS orders against nothing on
        // the ordered lane — the sender just needs it as fast as
        // possible. From an app thread, enqueue instead of blocking.
        if inline {
            self.send_data_frame(fabric, src, Frame::PartCts { rdv_id });
        } else {
            self.send_frame(src, Frame::PartCts { rdv_id });
        }
    }

    /// Put a small control frame on a data lane's socket directly if
    /// one exists (bypassing the lane-0 writer thread), else fall back
    /// to the ordered lane. Only valid for frames with no ordering
    /// obligation toward lane-0 traffic.
    fn send_data_frame(&self, fabric: &Fabric, dst: usize, frame: Frame) {
        let Some(peer) = &self.peers[dst] else {
            return;
        };
        for (lane_idx, lane) in peer.lanes.iter().enumerate().skip(1) {
            if !lane.alive.load(Ordering::Acquire) {
                continue;
            }
            let wrote = {
                let mut guard = lane.direct.lock();
                match guard.as_mut() {
                    Some(ep) => {
                        let mut buf = Vec::with_capacity(32);
                        frame.encode_into(&mut buf);
                        self.emit_wire_send(fabric, dst, lane_idx, frame.op());
                        Some(write_all_vectored(ep, &[&buf]).and_then(|()| ep.flush()))
                    }
                    None => None,
                }
            };
            match wrote {
                Some(Ok(())) => {
                    // ORDERING: statistics counter (diagnostics only).
                    peer.frames_sent.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                Some(Err(_)) => {
                    if fabric.aborted() {
                        return;
                    }
                    // This lane is gone; the frame carries no ordering
                    // obligation, so just try the next survivor.
                    self.data_lane_failed(fabric, dst, lane_idx);
                }
                None => {}
            }
        }
        self.send_frame(dst, frame);
    }

    /// Sender: the receiver pinned its destination — release every
    /// queued chunk onto the data lanes.
    fn handle_part_cts(&self, fabric: &Fabric, peer: usize, rdv_id: u64) {
        if fabric.aborted() {
            return;
        }
        {
            let (p16, stream) = (peer as u16, rdv_id as u32);
            let epoch = self.peers[peer]
                .as_ref()
                .map_or(0, |p| p.epoch.load(Ordering::Acquire));
            fabric
                .trace()
                .emit_verify(self.rank as u16, || EventKind::VerifyStreamCts {
                    peer: p16,
                    tx: false,
                    stream,
                    epoch,
                });
        }
        let (dst, spans, chunks) = {
            let mut out = self.streams_out.lock();
            let Some(stream) = out.get_mut(&rdv_id) else {
                return; // duplicate or post-abort straggler
            };
            stream.cts = true;
            let chunks = std::mem::take(&mut stream.queued);
            let dst = stream.dst;
            let spans = Arc::clone(&stream.spans);
            if stream.flushed {
                out.remove(&rdv_id);
            }
            (dst, spans, chunks)
        };
        debug_assert_eq!(dst, peer, "PartCts must come from the stream's receiver");
        // Runs on a reader thread: write the batch directly.
        self.dispatch_chunks(fabric, dst, rdv_id, &spans, chunks, true);
    }

    /// Receiver: look up the active stream for `(src, rdv_id)` and
    /// validate that `offset..offset+len` fits its destination. Returns
    /// `None` for post-abort stragglers (the caller discards the bytes);
    /// an overflowing range fails the universe.
    fn stream_range(
        &self,
        fabric: &Fabric,
        src: usize,
        rdv_id: u64,
        offset: usize,
        len: usize,
    ) -> Option<Arc<StreamRecv>> {
        if fabric.aborted() {
            return None;
        }
        let stream = self.streams_in.lock().get(&(src, rdv_id)).cloned()?;
        match offset.checked_add(len) {
            Some(end) if end <= stream.total_len => Some(stream),
            _ => {
                fabric.fail(PcommError::misuse(
                    src,
                    format!(
                        "partitioned stream range {offset}+{len} overflows a \
                         {}-byte destination",
                        stream.total_len
                    ),
                ));
                None
            }
        }
    }

    /// Receiver: the bytes of `offset..offset+len` are in the pinned
    /// destination — flip every message completion the range finishes
    /// and retire the stream once the whole buffer has landed.
    #[allow(clippy::too_many_arguments)] // one per envelope field
    fn commit_stream_range(
        &self,
        fabric: &Fabric,
        src: usize,
        lane: usize,
        rdv_id: u64,
        stream: &StreamRecv,
        offset: usize,
        len: usize,
    ) {
        let end = offset + len;
        let trace = fabric.trace();
        let stream32 = rdv_id as u32;
        {
            // Recorded before the dedup claim: the auditor's FSM pass
            // wants every range the wire delivered, duplicates included
            // (replay absorption is exactly what the ledger pass proves).
            let (p16, l16, off64, len32) = (src as u16, lane as u16, offset as u64, len as u32);
            trace.emit_verify(self.rank as u16, || EventKind::VerifyStreamData {
                peer: p16,
                lane: l16,
                tx: false,
                stream: stream32,
                offset: off64,
                len: len32,
            });
        }
        // At-least-once wire: a lane failover or reconnect replays whole
        // batches, so the same range can land twice. Claim it against
        // the stream's interval ledger first — only the never-committed
        // sub-ranges count toward message and stream completion.
        let fresh = {
            let mut committed = stream.committed.lock();
            claim_range(&mut committed, offset, end)
        };
        let fresh_bytes: usize = fresh.iter().map(|&(lo, hi)| hi - lo).sum();
        if fresh_bytes == 0 {
            return; // pure duplicate: every byte landed before
        }
        for &(f_lo, f_hi) in &fresh {
            let (p16, l16, lo64, flen) =
                (src as u16, lane as u16, f_lo as u64, (f_hi - f_lo) as u32);
            trace.emit_verify(self.rank as u16, || EventKind::VerifyStreamCommit {
                peer: p16,
                lane: l16,
                stream: stream32,
                lo: lo64,
                len: flen,
            });
        }
        let mut msgs_done = 0u16;
        for &(f_lo, f_hi) in &fresh {
            for msg in &stream.msgs {
                let lo = msg.offset.max(f_lo);
                let hi = (msg.offset + msg.len).min(f_hi);
                if lo >= hi {
                    continue;
                }
                let overlap = hi - lo;
                // AcqRel: the final decrement acquires every earlier
                // committer's bytes, so the completion flip below
                // publishes a fully written message range. The ledger
                // claim above guarantees each byte is subtracted exactly
                // once, so this never underflows.
                let before = msg.remaining.fetch_sub(overlap, Ordering::AcqRel);
                if before == overlap {
                    fabric.complete_stream_msg(
                        src,
                        msg.tag,
                        msg.len,
                        &msg.info,
                        &msg.completion,
                        msg.verify_msg,
                    );
                    msgs_done += 1;
                }
            }
        }
        let (off64, bytes) = (offset as u64, fresh_bytes as u64);
        fabric
            .trace()
            .emit(self.rank as u16, || EventKind::StreamCommit {
                lane: lane as u16,
                msgs: msgs_done,
                offset: off64,
                bytes,
            });
        if stream
            .remaining_total
            .fetch_sub(fresh_bytes, Ordering::AcqRel)
            == fresh_bytes
        {
            self.streams_in.lock().remove(&(src, rdv_id));
        }
    }

    /// Receiver: one already-decoded range landed (the `dispatch` slow
    /// path; lane readers normally read payloads straight into the
    /// destination instead) — copy it in and commit.
    fn handle_part_data(
        &self,
        fabric: &Fabric,
        src: usize,
        lane: usize,
        rdv_id: u64,
        offset: u64,
        payload: &[u8],
    ) {
        let len = payload.len();
        let offset = offset as usize;
        let Some(stream) = self.stream_range(fabric, src, rdv_id, offset, len) else {
            return;
        };
        // SAFETY: the destination stays pinned until the completions set
        // by the commit fire (invariant (1), via `PartStreamRecv`'s
        // contract), the bounds were checked by `stream_range`, and
        // every destination byte belongs to exactly one `PartData`
        // frame, so concurrent commits from different lanes never alias.
        unsafe {
            std::ptr::copy_nonoverlapping(payload.as_ptr(), stream.base.add(offset), len);
        }
        self.commit_stream_range(fabric, src, lane, rdv_id, &stream, offset, len);
    }

    /// Recover from a dead lane-0 socket with ONE bounded reconnect per
    /// peer for the transport's lifetime: re-run the pair rendezvous
    /// (Hello re-handshake included), swap the new endpoint into the
    /// lane's write handle, and tell the peer which stream bytes we
    /// already hold so it can detect unreplayable loss. The reader and
    /// writer threads race here; whoever arrives first performs the
    /// attempt, the other blocks on the slot and reuses the outcome.
    /// Returns a read handle on the new socket, or `None` when the peer
    /// is gone for good (callers then raise the typed error).
    ///
    /// The reconnected endpoint is deliberately NOT re-wrapped in the
    /// wire-fault plan: recovery is one bounded attempt, and a chaos
    /// matrix must terminate instead of looping kill/reconnect forever.
    fn recover_lane0(&self, fabric: &Fabric, peer_rank: usize) -> Option<Endpoint> {
        let peer = self.peers[peer_rank].as_ref()?;
        if fabric.aborted() || peer.saw_bye.load(Ordering::Acquire) {
            return None;
        }
        let mut slot = peer.reconnect.lock();
        match &*slot {
            Reconnected::Yes(ep) => return ep.try_clone().ok(),
            Reconnected::Failed => return None,
            Reconnected::No => {}
        }
        peer.connected.store(false, Ordering::Release);
        let started = Instant::now();
        let res =
            pcomm_net::mesh::reconnect_pair(&self.cfg, peer_rank, started + RECONNECT_TIMEOUT);
        let (ok, took_ms) = (res.is_ok(), started.elapsed().as_millis() as u64);
        let p16 = peer_rank as u16;
        fabric
            .trace()
            .emit(self.rank as u16, || EventKind::Reconnect {
                peer: p16,
                ok,
                took_ms,
            });
        let ep = match res {
            Ok(ep) => ep,
            Err(_) => {
                *slot = Reconnected::Failed;
                return None;
            }
        };
        let (writer_ep, caller_ep) = match (ep.try_clone(), ep.try_clone()) {
            (Ok(w), Ok(c)) => (w, c),
            _ => {
                *slot = Reconnected::Failed;
                return None;
            }
        };
        {
            // Swap the socket and bump the audit epoch under the same
            // mutex hold: a writer that caught the old endpoint stamps
            // its frames epoch-old, one that sees the new endpoint
            // stamps epoch-new — never mixed.
            let mut direct = peer.lanes[0].direct.lock();
            // ORDERING: Release pairs with the Acquire in
            // `emit_wire_send`; the `direct` mutex already orders the
            // two accesses, the fence is belt and braces.
            peer.epoch.fetch_add(1, Ordering::Release);
            *direct = Some(writer_ep);
        }
        // ORDERING: liveness timestamp (see `note_heard`).
        peer.last_heard_ms.store(self.now_ms(), Ordering::Relaxed);
        peer.connected.store(true, Ordering::Release);
        *slot = Reconnected::Yes(ep);
        drop(slot);
        self.send_stream_resyncs(peer_rank);
        Some(caller_ep)
    }

    /// After a lane-0 reconnect: tell `peer` the high-water state of
    /// every active incoming stream it sends us, as the complement of
    /// the committed ledger. The sender cross-checks the missing ranges
    /// against what it can still replay.
    fn send_stream_resyncs(&self, peer: usize) {
        // (rdv_id, received bytes, missing ranges) per active stream.
        type ResyncReport = (u64, u64, Vec<(u64, u64)>);
        let reports: Vec<ResyncReport> = {
            let streams = self.streams_in.lock();
            streams
                .iter()
                .filter(|((src, _), _)| *src == peer)
                .map(|((_, rdv_id), stream)| {
                    let committed = stream.committed.lock();
                    let received: u64 = committed.iter().map(|&(lo, hi)| (hi - lo) as u64).sum();
                    let mut missing = Vec::new();
                    let mut cursor = 0usize;
                    for &(lo, hi) in committed.iter() {
                        if cursor < lo {
                            missing.push((cursor as u64, lo as u64));
                        }
                        cursor = hi;
                    }
                    if cursor < stream.total_len {
                        missing.push((cursor as u64, stream.total_len as u64));
                    }
                    missing.truncate(MAX_RESYNC_RANGES);
                    (*rdv_id, received, missing)
                })
                .collect()
        };
        for (rdv_id, received, missing) in reports {
            self.send_frame(
                peer,
                Frame::StreamResync {
                    rdv_id,
                    received,
                    missing,
                },
            );
        }
    }

    /// Sender side of a receiver's post-reconnect `StreamResync`: every
    /// missing range must still be replayable. Ranges covered by spans
    /// with writes still pending are fine (the requeued work will carry
    /// them); a missing range whose span already completed means the
    /// source buffer may be unpinned — that is unreplayable loss, and it
    /// becomes a typed error instead of a receiver that waits forever.
    fn handle_stream_resync(
        &self,
        fabric: &Fabric,
        peer: usize,
        rdv_id: u64,
        missing: &[(u64, u64)],
    ) {
        if missing.is_empty() || fabric.aborted() {
            return;
        }
        let spans = self.resync_spans.lock().get(&rdv_id).cloned();
        let lost = match spans {
            // Stream fully retired on our side yet bytes are missing
            // over there: nothing pinned remains to replay.
            None => true,
            Some(spans) => missing.iter().any(|&(lo, hi)| {
                let (lo, hi) = (lo as usize, hi as usize);
                spans.iter().any(|s| {
                    s.offset.max(lo) < (s.offset + s.len).min(hi)
                        && s.remaining.load(Ordering::Acquire) == 0
                })
            }),
        };
        if lost {
            let (p16, stream) = (peer as u16, rdv_id as u32);
            let missing_bytes: u64 = missing.iter().map(|&(lo, hi)| hi - lo).sum();
            fabric
                .trace()
                .emit_verify(self.rank as u16, || EventKind::VerifyStreamLost {
                    peer: p16,
                    stream,
                    missing: missing_bytes,
                });
            fabric.fail(PcommError::MessageLost {
                src: self.rank,
                dst: peer,
                tag: -1,
                attempts: 1,
            });
        }
    }

    /// Get-or-create the release completion for barrier generation
    /// `gen` (reader thread and waiting rank race to create it).
    fn release_completion(&self, gen: u64) -> Arc<Completion> {
        Arc::clone(self.releases.lock().entry(gen).or_default())
    }

    /// Rank 0: record `from`'s arrival for `gen`; on the last distinct
    /// one, broadcast the release and complete the local waiter. Keyed
    /// by rank, not counted: a reconnect can replay a `BarrierArrive`.
    fn note_arrival(&self, gen: u64, from: usize) {
        debug_assert_eq!(self.rank, 0, "only rank 0 coordinates barriers");
        let all_in = {
            let mut arrivals = self.arrivals.lock();
            let ranks = arrivals.entry(gen).or_default();
            ranks.insert(from);
            if ranks.len() == self.n_ranks {
                arrivals.remove(&gen);
                true
            } else {
                false
            }
        };
        if all_in {
            for peer in 1..self.n_ranks {
                self.send_frame(peer, Frame::BarrierRelease { gen });
            }
            self.release_completion(gen).set();
        }
    }

    /// Sender side of the wire rendezvous: a CTS arrived, so frame the
    /// pinned bytes and complete the send.
    fn handle_cts(&self, fabric: &Fabric, peer: usize, rdv_id: u64) {
        let Some(pending) = self.pending_rdv.lock().remove(&rdv_id) else {
            return; // duplicate or post-abort straggler
        };
        if fabric.aborted() {
            // The sender is unwinding via the abort; its buffer may be
            // on its way out — do not touch it, do not set done.
            return;
        }
        // Zero-copy: the pinned source rides to the lane-0 writer as an
        // `RdvWrite`; its `done` fires there, after the vectored write,
        // so the buffer stays pinned through the kernel handoff
        // (invariant (1)). If the writer is already gone the universe is
        // tearing down and the sender unwinds via the abort flag.
        if let Some(p) = &self.peers[peer] {
            let _ = p.lanes[0].enqueue(WriterMsg::Rdv(RdvWrite {
                rdv_id,
                pinned: pending.pinned,
            }));
        }
    }

    /// Dispatch one received frame. Returns `false` when the peer said
    /// goodbye and the reader should exit.
    fn dispatch(&self, fabric: &Arc<Fabric>, peer: usize, lane: usize, frame: Frame) -> bool {
        match frame {
            Frame::Eager {
                shard,
                ctx,
                tag,
                payload,
            } => fabric.deliver_wire_eager(peer, shard as usize, ctx, tag, &payload),
            Frame::Rts {
                shard,
                ctx,
                tag,
                len,
                rdv_id,
            } => fabric.deliver_wire_rts(peer, shard as usize, ctx, tag, len as usize, rdv_id),
            Frame::Cts { rdv_id } => self.handle_cts(fabric, peer, rdv_id),
            Frame::RdvData { rdv_id, payload } => {
                let entry = self.remote_recvs.lock().remove(&(peer, rdv_id));
                if let Some(r) = entry {
                    fabric.complete_remote_rdv(r.posted, peer, r.tag, r.shard, &payload, r.rts_ns);
                }
            }
            Frame::PartRts {
                ctx,
                total_len,
                rdv_id,
            } => self.handle_part_rts(fabric, peer, ctx, total_len as usize, rdv_id),
            Frame::PartCts { rdv_id } => self.handle_part_cts(fabric, peer, rdv_id),
            Frame::PartData {
                rdv_id,
                offset,
                payload,
            } => self.handle_part_data(fabric, peer, lane, rdv_id, offset, &payload),
            Frame::BarrierArrive { gen } => self.note_arrival(gen, peer),
            Frame::BarrierRelease { gen } => self.release_completion(gen).set(),
            // Liveness only; the reader already refreshed `last_heard_ms`.
            Frame::Heartbeat { .. } => {}
            Frame::StreamResync {
                rdv_id, missing, ..
            } => self.handle_stream_resync(fabric, peer, rdv_id, &missing),
            Frame::Abort {
                kind,
                a,
                b,
                tag,
                attempts,
                detail,
            } => fabric.fail_from_wire(decode_abort(kind, a, b, tag, attempts, detail)),
            Frame::Bye => return false,
            Frame::WinAnnounce { win_ctx, len } => {
                let completion = {
                    let mut slots = self.win_slots.lock();
                    let slot = slots
                        .entry(win_ctx)
                        .or_insert_with(|| (Completion::new(), None));
                    slot.1 = Some(len as usize);
                    Arc::clone(&slot.0)
                };
                completion.set();
            }
            Frame::Put {
                win_ctx,
                offset,
                payload,
            } => fabric.apply_remote_put(peer, win_ctx, offset as usize, &payload),
            Frame::GetReq {
                win_ctx,
                offset,
                len,
                token,
            } => match fabric.read_win(win_ctx, offset as usize, len as usize) {
                Some(data) => self.send_frame(
                    peer,
                    Frame::GetResp {
                        token,
                        payload: data,
                    },
                ),
                None => fabric.fail(PcommError::misuse(
                    peer,
                    format!("get of {len} B at offset {offset} misses window ctx {win_ctx}"),
                )),
            },
            Frame::GetResp { token, payload } => {
                let waiter = {
                    let waiters = self.get_waiters.lock();
                    waiters
                        .get(&token)
                        .map(|(c, s)| (Arc::clone(c), Arc::clone(s)))
                };
                if let Some((completion, slot)) = waiter {
                    *slot.lock() = Some(payload);
                    completion.set();
                }
            }
            Frame::Hello { .. } => {} // mesh rendezvous only; stray copies ignored
        }
        true
    }

    /// Shut the wire down after the rank's closure returned. Clean runs
    /// pass a closing barrier first — nobody sends `Bye` while a peer
    /// might still need them, and no queued stream chunk can be
    /// outstanding (a receiver cannot reach the barrier until its data
    /// landed) — then flush `Bye` on every lane, join the writers, and
    /// join the readers (each exits on its peer's `Bye`). Aborted runs
    /// skip the barrier, make sure the abort was broadcast, and
    /// `shutdown(2)` the sockets so blocked readers return. Never
    /// unwinds: failures found here are recorded on the fabric.
    pub(crate) fn finalize(&self, fabric: &Fabric) {
        if !fabric.aborted() {
            // ORDERING: generation allocator — only uniqueness matters;
            // the value travels to peers inside frames, not via memory.
            let gen = self.barrier_gen.fetch_add(1, Ordering::Relaxed);
            let completion = self.release_completion(gen);
            if self.rank == 0 {
                self.note_arrival(gen, self.rank);
            } else {
                self.send_frame(0, Frame::BarrierArrive { gen });
            }
            let deadline = Instant::now() + FINALIZE_TIMEOUT;
            loop {
                if completion.wait_timeout(TEARDOWN_SLICE) {
                    break;
                }
                if fabric.aborted() {
                    break;
                }
                if Instant::now() >= deadline {
                    fabric.fail(PcommError::Misuse {
                        rank: Some(self.rank),
                        detail: format!(
                            "finalize barrier timed out after {FINALIZE_TIMEOUT:?}: \
                             some rank process neither finished nor aborted"
                        ),
                    });
                    break;
                }
            }
            self.releases.lock().remove(&gen);
        }
        // Liveness held through the barrier above (a dead peer there
        // must still escalate); from here on silence is expected.
        self.hb_stop.store(true, Ordering::Release);
        if let Some(hb) = self.hb_thread.lock().take() {
            let _ = hb.join();
        }
        if fabric.aborted() {
            // Usually already broadcast by the `fail` that aborted us;
            // `abort_sent` dedupes. Covers failures recorded before the
            // transport was attached.
            if let Some(err) = fabric.failure_snapshot() {
                self.broadcast_abort(&err);
            }
        }
        for peer in self.peers.iter().flatten() {
            for lane in &peer.lanes {
                // Through the writer thread on every lane, so the
                // goodbye drains behind any still-queued stream chunks.
                let _ = lane.enqueue(WriterMsg::Frame(Frame::Bye));
                let _ = lane.enqueue(WriterMsg::Shutdown);
            }
        }
        for peer in self.peers.iter().flatten() {
            for lane in &peer.lanes {
                if let Some(writer) = lane.writer.lock().take() {
                    let _ = writer.join();
                }
            }
        }
        if fabric.aborted() {
            // Readers may be parked in a blocking read on a peer that
            // will never speak again; killing our half unblocks them
            // (they exit quietly once the abort flag is up). A
            // reconnected lane 0 lives in the reconnect slot, not
            // `endpoint` — kill it too.
            for peer in self.peers.iter().flatten() {
                for lane in &peer.lanes {
                    lane.endpoint.shutdown();
                }
                if let Reconnected::Yes(ep) = &*peer.reconnect.lock() {
                    ep.shutdown();
                }
            }
        } else {
            // Bound the clean-path reads too: every peer passed the
            // barrier, so its Bye is at most a write away — if it does
            // not arrive within the establish-grade timeout the reader
            // errors out instead of hanging the join below.
            for peer in self.peers.iter().flatten() {
                for lane in &peer.lanes {
                    let _ = lane
                        .endpoint
                        .set_read_timeout(Some(pcomm_net::mesh::ESTABLISH_TIMEOUT));
                }
                if let Reconnected::Yes(ep) = &*peer.reconnect.lock() {
                    let _ = ep.set_read_timeout(Some(pcomm_net::mesh::ESTABLISH_TIMEOUT));
                }
            }
        }
        let readers = std::mem::take(&mut *self.readers.lock());
        for reader in readers {
            let _ = reader.join();
        }
    }
}

impl Transport for SocketTransport {
    fn local_rank(&self) -> usize {
        self.rank
    }

    fn is_multiproc(&self) -> bool {
        true
    }

    fn ship_eager(&self, dst: usize, shard: usize, ctx: u64, tag: i64, data: &[u8]) {
        self.send_frame(
            dst,
            Frame::Eager {
                shard: shard as u16,
                ctx,
                tag,
                payload: data.to_vec(),
            },
        );
    }

    fn ship_rts(&self, dst: usize, shard: usize, ctx: u64, tag: i64, pinned: PinnedSend) {
        // ORDERING: id allocator — only uniqueness matters; the id
        // reaches the peer inside the Rts frame, not via memory.
        let rdv_id = self.next_rdv_id.fetch_add(1, Ordering::Relaxed);
        let len = pinned.len as u64;
        self.pending_rdv
            .lock()
            .insert(rdv_id, PendingRdv { pinned, dst });
        self.send_frame(
            dst,
            Frame::Rts {
                shard: shard as u16,
                ctx,
                tag,
                len,
                rdv_id,
            },
        );
    }

    fn accept_remote_rdv(
        &self,
        src: usize,
        rdv_id: u64,
        posted: PostedRecv,
        shard: usize,
        tag: i64,
        rts_ns: Option<u64>,
    ) {
        self.remote_recvs.lock().insert(
            (src, rdv_id),
            RemoteRecv {
                posted,
                shard,
                tag,
                rts_ns,
            },
        );
        self.send_frame(src, Frame::Cts { rdv_id });
    }

    fn part_stream_begin(
        &self,
        dst: usize,
        ctx: u64,
        total_len: usize,
        spans: Vec<SendSpan>,
    ) -> u64 {
        // ORDERING: id allocator (see `ship_rts`) — uniqueness only.
        let rdv_id = self.next_rdv_id.fetch_add(1, Ordering::Relaxed);
        let spans = Arc::new(spans);
        {
            // Keep the span set reachable for a post-reconnect resync
            // check; prune entries whose spans all completed (their
            // buffers may be unpinned — nothing left to vouch for).
            let mut resync = self.resync_spans.lock();
            resync.retain(|_, s| s.iter().any(|sp| !sp.done.is_set()));
            resync.insert(rdv_id, Arc::clone(&spans));
        }
        // Register before the RTS leaves so a fast PartCts finds us.
        self.streams_out.lock().insert(
            rdv_id,
            StreamSend {
                dst,
                cts: false,
                flushed: false,
                total_len,
                pushed: 0,
                pend: None,
                queued: Vec::new(),
                spans,
            },
        );
        self.send_frame(
            dst,
            Frame::PartRts {
                ctx,
                total_len: total_len as u64,
                rdv_id,
            },
        );
        rdv_id
    }

    fn part_stream_push(
        &self,
        fabric: &Fabric,
        stream_id: u64,
        offset: u64,
        data: &[u8],
        parts: u16,
    ) {
        let aggr = self.aggr;
        let (dst, spans, ready) = {
            let mut out = self.streams_out.lock();
            let Some(stream) = out.get_mut(&stream_id) else {
                return; // post-abort straggler
            };
            let chunks = stream.push(offset, data.as_ptr(), data.len(), parts, aggr);
            if stream.cts {
                let dst = stream.dst;
                let spans = Arc::clone(&stream.spans);
                if stream.flushed {
                    // Last byte pushed post-CTS: the entry is done.
                    out.remove(&stream_id);
                }
                (dst, spans, chunks)
            } else {
                // The CTS handler drains `queued` (auto-flushed tail
                // included) and retires the entry when it arrives.
                stream.queued.extend(chunks);
                return;
            }
        };
        // Runs on an app thread (inside `pready`): enqueue, never block.
        self.dispatch_chunks(fabric, dst, stream_id, &spans, ready, false);
    }

    fn part_stream_post(&self, fabric: &Fabric, src: usize, ctx: u64, recv: PartStreamRecv) {
        let activate = {
            let mut reg = self.part_registry.lock();
            let pair = reg.entry((src, ctx)).or_default();
            if let Some((rdv_id, total_len)) = pair.pending_rts.pop_front() {
                Some((rdv_id, total_len, recv))
            } else {
                pair.waiting.push_back(recv);
                None
            }
        };
        if let Some((rdv_id, total_len, recv)) = activate {
            self.activate_stream(fabric, src, rdv_id, total_len, recv, false);
        }
    }

    fn barrier(&self, fabric: &Fabric, rank: usize) {
        // ORDERING: generation allocator (see `finalize`) — uniqueness
        // only; barrier ordering comes from the frames themselves.
        let gen = self.barrier_gen.fetch_add(1, Ordering::Relaxed);
        let completion = self.release_completion(gen);
        if self.rank == 0 {
            self.note_arrival(gen, self.rank);
        } else {
            self.send_frame(0, Frame::BarrierArrive { gen });
        }
        fabric.wait_on(&completion, rank, || {
            (format!("barrier (generation {gen})"), None, None)
        });
        self.releases.lock().remove(&gen);
    }

    fn announce_win(&self, origin: usize, win_ctx: u64, len: usize) {
        self.send_frame(
            origin,
            Frame::WinAnnounce {
                win_ctx,
                len: len as u64,
            },
        );
    }

    fn wait_win_announce(&self, fabric: &Fabric, rank: usize, win_ctx: u64) -> usize {
        let completion = {
            let mut slots = self.win_slots.lock();
            Arc::clone(
                &slots
                    .entry(win_ctx)
                    .or_insert_with(|| (Completion::new(), None))
                    .0,
            )
        };
        fabric.wait_on(&completion, rank, || {
            (format!("attach_win(ctx={win_ctx})"), None, None)
        });
        self.win_slots
            .lock()
            .get(&win_ctx)
            .and_then(|slot| slot.1)
            // PANIC: the completion waited on above is signalled only
            // by the WinAnnounce handler, which stores the length
            // before signalling.
            .expect("announced window carries a length")
    }

    fn put(&self, target: usize, win_ctx: u64, offset: usize, data: &[u8]) {
        self.send_frame(
            target,
            Frame::Put {
                win_ctx,
                offset: offset as u64,
                payload: data.to_vec(),
            },
        );
    }

    fn get(
        &self,
        fabric: &Fabric,
        rank: usize,
        target: usize,
        win_ctx: u64,
        offset: usize,
        len: usize,
    ) -> Vec<u8> {
        // ORDERING: token allocator — uniqueness only, the token rides
        // inside the GetReq frame.
        let token = self.next_get_token.fetch_add(1, Ordering::Relaxed);
        let completion = Completion::new();
        let slot: Arc<Mutex<Option<Vec<u8>>>> = Arc::new(Mutex::new(None));
        self.get_waiters
            .lock()
            .insert(token, (Arc::clone(&completion), Arc::clone(&slot)));
        self.send_frame(
            target,
            Frame::GetReq {
                win_ctx,
                offset: offset as u64,
                len: len as u64,
                token,
            },
        );
        fabric.wait_on(&completion, rank, || {
            (
                format!("rma get({len} B from rank {target})"),
                None,
                Some(target),
            )
        });
        self.get_waiters.lock().remove(&token);
        let data = slot.lock().take();
        // PANIC: the completion waited on above is signalled only by
        // the GetResp handler, which fills the slot before signalling.
        data.expect("completed get carries its payload")
    }

    fn peer_states(&self) -> Vec<PeerSocketState> {
        let pending = self.pending_rdv.lock();
        let streams = self.streams_out.lock();
        let now = self.now_ms();
        self.peers
            .iter()
            .enumerate()
            .filter_map(|(rank, peer)| {
                let peer = peer.as_ref()?;
                // The Relaxed loads below read advisory counters and
                // gauges; this snapshot is inherently racy by design.
                Some(PeerSocketState {
                    peer: rank,
                    connected: peer.connected.load(Ordering::Acquire),
                    // ORDERING: advisory stat for the racy snapshot.
                    frames_sent: peer.frames_sent.load(Ordering::Relaxed),
                    // ORDERING: advisory stat for the racy snapshot.
                    frames_received: peer.frames_received.load(Ordering::Relaxed),
                    // Un-CTS'd partitioned streams count as pending
                    // rendezvous: same diagnosis (waiting on the peer).
                    pending_rdv: pending.values().filter(|p| p.dst == rank).count()
                        + streams.values().filter(|s| s.dst == rank).count(),
                    queued: peer
                        .lanes
                        .iter()
                        // ORDERING: advisory backlog gauge (see
                        // `Lane::enqueue`).
                        .map(|l| l.queued.load(Ordering::Relaxed) as u64)
                        .sum(),
                    lanes_down: peer
                        .lanes
                        .iter()
                        .skip(1)
                        .filter(|l| !l.alive.load(Ordering::Acquire))
                        .count() as u16,
                    // ORDERING: liveness timestamp; staleness only
                    // shifts the quiet-time estimate.
                    quiet_ms: now.saturating_sub(peer.last_heard_ms.load(Ordering::Relaxed)),
                })
            })
            .collect()
    }

    fn broadcast_abort(&self, err: &PcommError) {
        if self.abort_sent.swap(true, Ordering::SeqCst) {
            return;
        }
        let frame = encode_abort(err);
        for peer in 0..self.n_ranks {
            if peer != self.rank {
                self.send_frame(peer, frame.clone());
            }
        }
    }
}

/// Write every slice in `bufs`, retrying partial vectored writes with a
/// manual `(slice, offset)` cursor — `write_all_vectored` is still
/// unstable in std.
fn write_all_vectored(w: &mut impl Write, bufs: &[&[u8]]) -> io::Result<()> {
    let (mut idx, mut off) = (0usize, 0usize);
    while idx < bufs.len() {
        let slices: Vec<IoSlice<'_>> = std::iter::once(IoSlice::new(&bufs[idx][off..]))
            .chain(bufs[idx + 1..].iter().map(|b| IoSlice::new(b)))
            .collect();
        let mut n = w.write_vectored(&slices)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                "net: socket accepted no bytes",
            ));
        }
        while n > 0 && idx < bufs.len() {
            let rem = bufs[idx].len() - off;
            if n >= rem {
                n -= rem;
                off = 0;
                idx += 1;
            } else {
                off += n;
                n = 0;
            }
        }
    }
    Ok(())
}

/// Flip the `done` completions of every sender span fully covered once
/// `offset..offset+len` is on the wire (sender-side mirror of the
/// receiver's commit bookkeeping).
pub(crate) fn complete_spans(spans: &[SendSpan], offset: usize, len: usize) {
    let end = offset + len;
    for span in spans {
        let lo = span.offset.max(offset);
        let hi = (span.offset + span.len).min(end);
        if lo >= hi {
            continue;
        }
        let overlap = hi - lo;
        // Saturating CAS rather than a plain subtraction: a failover
        // replays whole batches, so bytes already counted can come
        // around again — the counter must neither underflow nor fire
        // `done` twice. AcqRel chains the writers' progress like the
        // receiver side.
        let mut cur = span.remaining.load(Ordering::Acquire);
        loop {
            let take = overlap.min(cur);
            if take == 0 {
                break;
            }
            match span.remaining.compare_exchange_weak(
                cur,
                cur - take,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    if cur == take {
                        span.done.set();
                    }
                    break;
                }
                Err(seen) => cur = seen,
            }
        }
    }
}

/// Writer thread: drain the channel onto the socket in vectored
/// batches. Control frames encode into per-slot scratch buffers reused
/// across batches; pinned stream ranges get an 18-byte header in
/// scratch and their payload slice passed to the kernel straight from
/// the source buffer — the batch goes out as one vectored write.
///
/// Write errors split by lane. Lane 0 gets the one bounded reconnect
/// and retries the failed batch on the new socket (at-least-once — the
/// dispatch layer deduplicates); if that fails too the peer is gone:
/// record the typed error and discard the rest of the queue so
/// enqueuers never notice. A data lane fails over instead: mark it
/// dead, push every pinned range (current batch plus backlog) to the
/// surviving lanes, and keep rerouting stragglers until teardown.
fn writer_loop(
    transport: Arc<SocketTransport>,
    rx: Receiver<WriterMsg>,
    fabric: Arc<Fabric>,
    peer: usize,
    lane_idx: usize,
    frames_sent: Arc<AtomicU64>,
    connected: Arc<AtomicBool>,
) {
    let lane = &transport.peers[peer]
        .as_ref()
        // PANIC: writer threads are spawned (in `start`) only for
        // ranks whose peer slot was populated by the mesh join.
        .expect("writer thread for a missing peer")
        .lanes[lane_idx];
    let mut scratch: Vec<Vec<u8>> = (0..WRITER_BATCH).map(|_| Vec::new()).collect();
    let mut batch: Vec<WriterMsg> = Vec::with_capacity(WRITER_BATCH);
    let mut queue_hwm = QUEUE_HWM_BASE;
    loop {
        batch.clear();
        match rx.recv() {
            Err(_) => return,
            Ok(msg) => {
                lane.dequeued();
                match msg {
                    WriterMsg::Shutdown => return,
                    m => batch.push(m),
                }
            }
        }
        let mut shutdown = false;
        while batch.len() < WRITER_BATCH {
            match rx.try_recv() {
                Ok(msg) => {
                    lane.dequeued();
                    match msg {
                        WriterMsg::Shutdown => {
                            shutdown = true;
                            break;
                        }
                        m => batch.push(m),
                    }
                }
                Err(_) => break,
            }
        }
        // Unbounded channels cannot push back, so depth growth is the
        // congestion signal: trace it at doubling high-water marks.
        // ORDERING: advisory backlog gauge (see `Lane::enqueue`).
        let depth = lane.queued.load(Ordering::Relaxed);
        if depth >= queue_hwm {
            let (p16, l16, d64) = (peer as u16, lane_idx as u16, depth as u64);
            fabric
                .trace()
                .emit(transport.rank as u16, || EventKind::WriterQueue {
                    peer: p16,
                    lane: l16,
                    depth: d64,
                });
            while queue_hwm <= depth {
                queue_hwm *= 2;
            }
        }
        // An aborting universe may already be unwinding the buffers
        // that stream entries point into: drop them unsent (their
        // waiters unwind via the abort), keep the control frames (the
        // abort broadcast is one of them).
        let aborting = fabric.aborted();
        for (slot, msg) in scratch.iter_mut().zip(&batch) {
            match msg {
                WriterMsg::Frame(f) => f.encode_into(slot),
                WriterMsg::Stream(sw) => {
                    frame::encode_part_data_header(sw.rdv_id, sw.offset, sw.len, slot)
                }
                WriterMsg::Rdv(rw) => frame::encode_rdv_data_header(rw.rdv_id, rw.pinned.len, slot),
                WriterMsg::Shutdown => unreachable!("Shutdown never enters the batch"),
            }
        }
        let mut slices: Vec<&[u8]> = Vec::with_capacity(batch.len() * 2);
        for (slot, msg) in scratch.iter().zip(&batch) {
            match msg {
                WriterMsg::Frame(_) => slices.push(slot),
                WriterMsg::Stream(sw) => {
                    if aborting {
                        continue;
                    }
                    slices.push(slot);
                    // SAFETY: the source buffer stays pinned until the
                    // spans completed below fire (invariant (1)); the
                    // abort check above plus the drain grace cover
                    // teardown races, as in the rendezvous CTS path.
                    slices.push(unsafe { std::slice::from_raw_parts(sw.ptr, sw.len) });
                }
                WriterMsg::Rdv(rw) => {
                    if aborting {
                        continue;
                    }
                    slices.push(slot);
                    let pinned =
                        // SAFETY: the rendezvous source stays pinned until
                        // `pinned.done` fires after this batch's write
                        // (invariant (1)); same abort/drain-grace argument
                        // as the stream slices above.
                        unsafe { std::slice::from_raw_parts(rw.pinned.ptr, rw.pinned.len) };
                    slices.push(pinned);
                }
                WriterMsg::Shutdown => {}
            }
        }
        // The write happens under the lane mutex: reader threads
        // releasing a CTS batch write the same socket directly, and the
        // mutex is what keeps the two writers' frames from interleaving.
        let write_batch = || {
            let mut guard = lane.direct.lock();
            match guard.as_mut() {
                Some(ep) => {
                    // Audit record under the lane mutex, one event per
                    // frame in wire order, re-stamped on a post-reconnect
                    // retry (each attempt is a genuine new wire frame).
                    for msg in &batch {
                        match msg {
                            WriterMsg::Frame(f) => {
                                transport.emit_wire_send(&fabric, peer, lane_idx, f.op());
                            }
                            WriterMsg::Stream(sw) if !aborting => {
                                transport.emit_wire_send(
                                    &fabric,
                                    peer,
                                    lane_idx,
                                    frame::op::PART_DATA,
                                );
                                transport.emit_stream_data_tx(
                                    &fabric, peer, lane_idx, sw.rdv_id, sw.offset, sw.len,
                                );
                            }
                            WriterMsg::Rdv(_) if !aborting => {
                                transport.emit_wire_send(
                                    &fabric,
                                    peer,
                                    lane_idx,
                                    frame::op::RDV_DATA,
                                );
                            }
                            _ => {}
                        }
                    }
                    write_all_vectored(ep, &slices).and_then(|()| ep.flush())
                }
                None => Err(io::Error::new(
                    io::ErrorKind::NotConnected,
                    "net: lane endpoint already torn down",
                )),
            }
        };
        let mut wrote = write_batch();
        if wrote.is_err() && lane_idx == 0 && !fabric.aborted() {
            // One bounded reconnect, then the same batch goes out again
            // on the new socket (`direct` was swapped underneath the
            // closure). At-least-once: dispatch deduplicates replays.
            if transport.recover_lane0(&fabric, peer).is_some() {
                wrote = write_batch();
            }
        }
        if wrote.is_err() {
            if lane_idx > 0 && !fabric.aborted() {
                // Data-lane death: fail over. Nothing in this batch has
                // completed its spans yet, so the pinned sources are
                // still live — replay them whole on the survivors.
                transport.data_lane_failed(&fabric, peer, lane_idx);
                let mut requeued = 0u64;
                for msg in batch.drain(..) {
                    if let WriterMsg::Stream(sw) = msg {
                        transport.requeue_stream(peer, sw);
                        requeued += 1;
                    }
                }
                while let Ok(msg) = rx.try_recv() {
                    lane.dequeued();
                    match msg {
                        WriterMsg::Stream(sw) => {
                            transport.requeue_stream(peer, sw);
                            requeued += 1;
                        }
                        WriterMsg::Shutdown => shutdown = true,
                        // Rdv rides lane 0 only; unreachable here.
                        WriterMsg::Frame(_) | WriterMsg::Rdv(_) => {}
                    }
                }
                let (p16, l16) = (peer as u16, lane_idx as u16);
                fabric
                    .trace()
                    .emit(transport.rank as u16, || EventKind::LaneFailover {
                        peer: p16,
                        lane: l16,
                        requeued,
                    });
                if shutdown {
                    return;
                }
                // Stay alive so late enqueues keep rerouting until the
                // teardown Shutdown arrives.
                loop {
                    match rx.recv() {
                        Err(_) => return,
                        Ok(msg) => {
                            lane.dequeued();
                            match msg {
                                WriterMsg::Stream(sw) => transport.requeue_stream(peer, sw),
                                WriterMsg::Shutdown => return,
                                // Rdv rides lane 0 only; unreachable here.
                                WriterMsg::Frame(_) | WriterMsg::Rdv(_) => {}
                            }
                        }
                    }
                }
            }
            connected.store(false, Ordering::Release);
            if !fabric.aborted() {
                fabric.fail(PcommError::PeerPanicked {
                    rank: peer,
                    message: format!(
                        "rank process exited unexpectedly \
                         (connection to rank {peer} broke mid-write)"
                    ),
                });
            }
            if shutdown {
                return;
            }
            // Drain until Shutdown so senders keep enqueueing into a
            // live channel during teardown.
            loop {
                match rx.recv() {
                    Err(_) => return,
                    Ok(msg) => {
                        lane.dequeued();
                        if matches!(msg, WriterMsg::Shutdown) {
                            return;
                        }
                    }
                }
            }
        }
        for msg in &batch {
            match msg {
                WriterMsg::Stream(sw) if !aborting => {
                    complete_spans(&sw.spans, sw.offset as usize, sw.len);
                }
                WriterMsg::Rdv(rw) if !aborting => rw.pinned.done.set(),
                _ => {}
            }
        }
        // ORDERING: statistics counter (diagnostics only).
        frames_sent.fetch_add(batch.len() as u64, Ordering::Relaxed);
        if shutdown {
            return;
        }
    }
}

/// Read the six-byte frame head: length prefix, version, opcode. The
/// version is validated here so both reader paths start from a trusted
/// head.
fn read_head(ep: &mut Endpoint) -> io::Result<(usize, u8)> {
    let mut head = [0u8; 6];
    ep.read_exact(&mut head)?;
    // PANIC: slicing a fixed 6-byte array — the length is static.
    let len = u32::from_le_bytes(head[..4].try_into().expect("4-byte prefix")) as usize;
    if !(2..=MAX_FRAME_BODY).contains(&len) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("net: implausible frame length {len}"),
        ));
    }
    frame::check_version(head[4])?;
    Ok((len, head[5]))
}

/// Fast path for an incoming `PartData` frame: read the 16-byte stream
/// header, then read the payload straight into the pinned destination —
/// the socket is the only copy. Ranges for retired streams (post-abort
/// stragglers) are read into `scratch` and discarded so the byte stream
/// stays framed.
fn read_part_data(
    transport: &SocketTransport,
    fabric: &Fabric,
    peer: usize,
    lane: usize,
    ep: &mut Endpoint,
    body_len: usize,
    scratch: &mut Vec<u8>,
) -> io::Result<()> {
    if body_len < frame::PART_DATA_BODY_HDR {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("net: truncated PartData body ({body_len} B)"),
        ));
    }
    let mut hdr = [0u8; 16];
    ep.read_exact(&mut hdr)?;
    // PANIC: both slices of the fixed 16-byte header are statically 8
    // bytes.
    let rdv_id = u64::from_le_bytes(hdr[..8].try_into().expect("8-byte id"));
    // PANIC: see above — statically 8 bytes.
    let offset = u64::from_le_bytes(hdr[8..].try_into().expect("8-byte offset")) as usize;
    let len = body_len - frame::PART_DATA_BODY_HDR;
    match transport.stream_range(fabric, peer, rdv_id, offset, len) {
        Some(stream) => {
            // SAFETY: the destination stays pinned until the commit's
            // completions fire (invariant (1), via `PartStreamRecv`'s
            // contract), `stream_range` checked the bounds, and every
            // destination byte belongs to exactly one `PartData` frame,
            // so concurrent lane readers never alias.
            let dest = unsafe { std::slice::from_raw_parts_mut(stream.base.add(offset), len) };
            ep.read_exact(dest)?;
            transport.commit_stream_range(fabric, peer, lane, rdv_id, &stream, offset, len);
        }
        None => {
            scratch.clear();
            scratch.resize(len, 0);
            ep.read_exact(scratch)?;
        }
    }
    Ok(())
}

/// Fast path for an incoming `RdvData` frame: read the 8-byte rdv id,
/// then read the payload straight off the socket into the matched
/// posted destination — the kernel read is the only copy, mirroring
/// the writer's vectored send of the pinned source. Unmatched ids
/// (reconnect replays, post-abort stragglers) drain into `scratch` so
/// the byte stream stays framed.
fn read_rdv_data(
    transport: &SocketTransport,
    fabric: &Fabric,
    peer: usize,
    ep: &mut Endpoint,
    body_len: usize,
    scratch: &mut Vec<u8>,
) -> io::Result<()> {
    if body_len < frame::RDV_DATA_BODY_HDR {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("net: truncated RdvData body ({body_len} B)"),
        ));
    }
    let mut hdr = [0u8; 8];
    ep.read_exact(&mut hdr)?;
    let rdv_id = u64::from_le_bytes(hdr);
    let len = body_len - frame::RDV_DATA_BODY_HDR;
    let entry = transport.remote_recvs.lock().remove(&(peer, rdv_id));
    match entry {
        Some(r) if !fabric.aborted() && len <= r.posted.dest_cap => {
            // SAFETY: invariant (2) — the posted destination is exclusive
            // and stays alive until the completion fires below; the abort
            // check above guards the teardown race exactly as
            // `complete_remote_rdv` does on the slow path.
            let dest = unsafe { std::slice::from_raw_parts_mut(r.posted.dest_ptr, len) };
            if let Err(err) = ep.read_exact(dest) {
                // Put the entry back so a lane-0 reconnect replay (the
                // writer re-sends the whole frame on a fresh socket) can
                // still complete this recv.
                transport.remote_recvs.lock().insert((peer, rdv_id), r);
                return Err(err);
            }
            fabric.complete_remote_rdv_in_place(r.posted, peer, r.tag, r.shard, len, r.rts_ns);
        }
        _ => {
            scratch.clear();
            scratch.resize(len, 0);
            ep.read_exact(scratch)?;
        }
    }
    Ok(())
}

/// Shared reader error path: EOF (or any read/decode error) without a
/// `Bye` means the peer process died — turn the would-be hang into a
/// typed error for every local waiter.
fn reader_failed(fabric: &Fabric, connected: &AtomicBool, peer: usize, err: &io::Error) {
    connected.store(false, Ordering::Release);
    if !fabric.aborted() {
        fabric.fail(PcommError::PeerPanicked {
            rank: peer,
            message: format!(
                "rank process exited unexpectedly (connection to rank {peer} lost: {err})"
            ),
        });
    }
}

/// Reader error triage. Data lanes (index > 0) fail over quietly: the
/// surviving lanes carry the stream and lane 0 carries liveness, so a
/// dead data lane is a trace event, not a universe failure. Lane 0 gets
/// the one bounded reconnect — on success the reader continues on the
/// returned endpoint (a fresh socket starts at a frame boundary, so a
/// mid-frame death resynchronizes naturally). Anything else is the
/// typed end of the peer.
#[allow(clippy::too_many_arguments)] // mirrors the reader's capture set
fn reader_recover(
    transport: &SocketTransport,
    fabric: &Fabric,
    peer: usize,
    lane: usize,
    connected: &AtomicBool,
    recovered: &mut bool,
    err: &io::Error,
) -> Option<Endpoint> {
    if fabric.aborted() {
        return None; // teardown; the abort already carries the story
    }
    if lane > 0 {
        transport.data_lane_failed(fabric, peer, lane);
        return None;
    }
    if !*recovered {
        // Kill our half first so the local writer and the remote peer
        // both observe the failure and join the reconnect handshake.
        if let Some(p) = &transport.peers[peer] {
            p.lanes[0].endpoint.shutdown();
        }
        if let Some(ep) = transport.recover_lane0(fabric, peer) {
            *recovered = true;
            return Some(ep);
        }
    }
    reader_failed(fabric, connected, peer, err);
    None
}

/// Reader thread: decode frames and dispatch them into the fabric until
/// the peer says `Bye`, the connection drops past recovery, or the
/// universe aborts. `PartData` frames take a borrow-decode fast path
/// that commits the range straight out of the reusable receive buffer —
/// one copy from socket to destination. Every successful head read
/// refreshes the peer's liveness timestamp.
#[allow(clippy::too_many_arguments)] // thread-capture plumbing
fn reader_loop(
    transport: Arc<SocketTransport>,
    fabric: Arc<Fabric>,
    peer: usize,
    lane: usize,
    mut ep: Endpoint,
    frames_received: Arc<AtomicU64>,
    connected: Arc<AtomicBool>,
    saw_bye: Arc<AtomicBool>,
) {
    let mut body: Vec<u8> = Vec::new();
    let mut recovered = false;
    // Audit counters, local to this reader: `rx_seq` counts every frame
    // head read off this lane in order, `rx_epoch` counts the lane-0
    // reconnect this reader lived through. Thread-local (not the shared
    // peer epoch) so frames still buffered in a dying socket keep their
    // pre-reconnect epoch even if the writer side already reconnected.
    let mut rx_seq = 0u32;
    let mut rx_epoch = 0u32;
    loop {
        let (len, op) = match read_head(&mut ep) {
            Ok(head) => head,
            Err(err) => {
                match reader_recover(
                    &transport,
                    &fabric,
                    peer,
                    lane,
                    &connected,
                    &mut recovered,
                    &err,
                ) {
                    Some(new_ep) => {
                        ep = new_ep;
                        rx_epoch += 1;
                        continue;
                    }
                    None => return,
                }
            }
        };
        transport.note_heard(peer);
        // ORDERING: statistics counter (diagnostics only).
        frames_received.fetch_add(1, Ordering::Relaxed);
        {
            let (p16, l16, op16, epoch, seq) =
                (peer as u16, lane as u16, op as u16, rx_epoch, rx_seq);
            fabric
                .trace()
                .emit_verify(transport.rank as u16, || EventKind::VerifyWireRecv {
                    peer: p16,
                    lane: l16,
                    op: op16,
                    epoch,
                    seq,
                });
            rx_seq = rx_seq.wrapping_add(1);
        }
        let keep_going = if frame::is_part_data(op) {
            read_part_data(&transport, &fabric, peer, lane, &mut ep, len, &mut body).map(|()| true)
        } else if op == frame::op::RDV_DATA {
            read_rdv_data(&transport, &fabric, peer, &mut ep, len, &mut body).map(|()| true)
        } else {
            body.clear();
            body.resize(len, 0);
            // `read_head` already validated the wire's version byte;
            // rebuild the two head bytes `Frame::decode` expects.
            body[0] = frame::WIRE_VERSION;
            body[1] = op;
            ep.read_exact(&mut body[2..])
                .and_then(|()| Frame::decode(&body))
                .map(|f| transport.dispatch(&fabric, peer, lane, f))
        };
        match keep_going {
            Ok(true) => {}
            Ok(false) => {
                saw_bye.store(true, Ordering::Release);
                return; // clean goodbye
            }
            Err(err) => {
                match reader_recover(
                    &transport,
                    &fabric,
                    peer,
                    lane,
                    &connected,
                    &mut recovered,
                    &err,
                ) {
                    Some(new_ep) => {
                        ep = new_ep;
                        rx_epoch += 1;
                        continue;
                    }
                    None => return,
                }
            }
        }
    }
}

/// Heartbeat thread (lane 0, `PCOMM_NET_HB_MS`): every interval, beat
/// toward each live peer; silence past ~2x the interval means the peer
/// died without a word (process killed, half-open socket) — escalate as
/// the typed peer death every survivor sees, instead of a stall that
/// needs the watchdog. Peers mid-reconnect or past their `Bye` are
/// exempt: those paths tell their own story.
fn heartbeat_loop(transport: Arc<SocketTransport>, fabric: Arc<Fabric>) {
    let Some(hb) = transport.hb_ms else { return };
    let tick = Duration::from_millis((hb / 4).max(1));
    // Declared dead at 7/4x the interval, so detection (tick jitter
    // included) lands within the documented 2x budget.
    let miss = hb.saturating_mul(7) / 4;
    let mut seq = 0u64;
    let mut last_sent: Option<u64> = None;
    loop {
        std::thread::sleep(tick);
        if transport.hb_stop.load(Ordering::Acquire) || fabric.aborted() {
            return;
        }
        let now = transport.now_ms();
        if last_sent.is_none_or(|t| now.saturating_sub(t) >= hb) {
            seq = seq.wrapping_add(1);
            for (rank, peer) in transport.peers.iter().enumerate() {
                let Some(peer) = peer else { continue };
                if peer.saw_bye.load(Ordering::Acquire) || !peer.connected.load(Ordering::Acquire) {
                    continue;
                }
                transport.send_frame(rank, Frame::Heartbeat { seq });
            }
            last_sent = Some(now);
        }
        for (rank, peer) in transport.peers.iter().enumerate() {
            let Some(peer) = peer else { continue };
            if peer.saw_bye.load(Ordering::Acquire) || !peer.connected.load(Ordering::Acquire) {
                continue;
            }
            // ORDERING: liveness timestamp; a stale read delays the
            // verdict by at most one monitor poll.
            let quiet = now.saturating_sub(peer.last_heard_ms.load(Ordering::Relaxed));
            if quiet >= miss {
                let (p16, q) = (rank as u16, quiet);
                fabric
                    .trace()
                    .emit(transport.rank as u16, || EventKind::HeartbeatMiss {
                        peer: p16,
                        quiet_ms: q,
                    });
                fabric.fail(PcommError::PeerPanicked {
                    rank,
                    message: format!(
                        "no frame from rank {rank} for {quiet} ms \
                         (heartbeat interval {hb} ms): peer presumed dead"
                    ),
                });
                return;
            }
        }
    }
}

/// Claim `[lo, hi)` against a sorted, disjoint interval ledger: merge
/// the range in and return the sub-ranges that were NOT already present
/// (the "fresh" bytes). An empty result means a pure duplicate.
pub(crate) fn claim_range(
    committed: &mut Vec<(usize, usize)>,
    lo: usize,
    hi: usize,
) -> Vec<(usize, usize)> {
    if lo >= hi {
        return Vec::new();
    }
    // First interval that could overlap or touch the claim.
    let first = committed.partition_point(|&(_, end)| end < lo);
    let mut fresh = Vec::new();
    let (mut merged_lo, mut merged_hi) = (lo, hi);
    let mut cursor = lo;
    let mut last = first;
    while last < committed.len() && committed[last].0 <= hi {
        let (s, e) = committed[last];
        if cursor < s {
            fresh.push((cursor, s.min(hi)));
        }
        cursor = cursor.max(e);
        merged_lo = merged_lo.min(s);
        merged_hi = merged_hi.max(e);
        last += 1;
    }
    if cursor < hi {
        fresh.push((cursor, hi));
    }
    committed.splice(first..last, std::iter::once((merged_lo, merged_hi)));
    fresh
}

/// Map a wire-level fault (net crate's taxonomy) onto the trace event
/// taxonomy.
fn wire_fault_kind(kind: WireFault) -> FaultKind {
    match kind {
        WireFault::TornWrite => FaultKind::TornWrite,
        WireFault::ShortRead => FaultKind::ShortRead,
        WireFault::Garbage => FaultKind::Garbage,
        WireFault::Reset => FaultKind::Reset,
        WireFault::LaneKill => FaultKind::LaneKill,
        WireFault::HalfOpen => FaultKind::HalfOpen,
    }
}

/// Encode a [`PcommError`] into the wire's `Abort` frame.
pub(crate) fn encode_abort(err: &PcommError) -> Frame {
    match err {
        PcommError::MessageLost {
            src,
            dst,
            tag,
            attempts,
        } => Frame::Abort {
            kind: ABORT_MESSAGE_LOST,
            a: *src as u64,
            b: *dst as u64,
            tag: *tag,
            attempts: *attempts as u64,
            detail: String::new(),
        },
        PcommError::PeerPanicked { rank, message } => Frame::Abort {
            kind: ABORT_PEER_PANICKED,
            a: *rank as u64,
            b: 0,
            tag: 0,
            attempts: 0,
            detail: message.clone(),
        },
        PcommError::Misuse {
            rank: Some(rank),
            detail,
        } => Frame::Abort {
            kind: ABORT_MISUSE_RANK,
            a: *rank as u64,
            b: 0,
            tag: 0,
            attempts: 0,
            detail: detail.clone(),
        },
        PcommError::Misuse { rank: None, detail } => Frame::Abort {
            kind: ABORT_MISUSE,
            a: 0,
            b: 0,
            tag: 0,
            attempts: 0,
            detail: detail.clone(),
        },
        // A stall report does not survive the wire structurally; peers
        // get the rendered text (their own runs were not the stalled
        // one, so a Misuse-grade message is the honest summary).
        PcommError::Stall(report) => Frame::Abort {
            kind: ABORT_MISUSE,
            a: 0,
            b: 0,
            tag: 0,
            attempts: 0,
            detail: format!("peer stalled: {report}"),
        },
    }
}

/// Decode a wire `Abort` frame back into a [`PcommError`].
pub(crate) fn decode_abort(
    kind: u8,
    a: u64,
    b: u64,
    tag: i64,
    attempts: u64,
    detail: String,
) -> PcommError {
    match kind {
        ABORT_MESSAGE_LOST => PcommError::MessageLost {
            src: a as usize,
            dst: b as usize,
            tag,
            attempts: attempts as u32,
        },
        ABORT_PEER_PANICKED => PcommError::PeerPanicked {
            rank: a as usize,
            message: detail,
        },
        ABORT_MISUSE_RANK => PcommError::Misuse {
            rank: Some(a as usize),
            detail,
        },
        _ => PcommError::Misuse { rank: None, detail },
    }
}

/// The in-process "transport": every rank is local, so nothing here can
/// ever be called. Exists so the fabric carries exactly one transport
/// object either way and the seam costs one cached branch.
pub(crate) struct SharedMemTransport;

impl Transport for SharedMemTransport {
    fn local_rank(&self) -> usize {
        0
    }

    fn is_multiproc(&self) -> bool {
        false
    }

    fn ship_eager(&self, _: usize, _: usize, _: u64, _: i64, _: &[u8]) {
        unreachable!("shared-memory fabric never routes through the wire")
    }

    fn ship_rts(&self, _: usize, _: usize, _: u64, _: i64, _: PinnedSend) {
        unreachable!("shared-memory fabric never routes through the wire")
    }

    fn accept_remote_rdv(&self, _: usize, _: u64, _: PostedRecv, _: usize, _: i64, _: Option<u64>) {
        unreachable!("shared-memory fabric never routes through the wire")
    }

    fn part_stream_begin(&self, _: usize, _: u64, _: usize, _: Vec<SendSpan>) -> u64 {
        unreachable!("shared-memory fabric never routes through the wire")
    }

    fn part_stream_push(&self, _: &Fabric, _: u64, _: u64, _: &[u8], _: u16) {
        unreachable!("shared-memory fabric never routes through the wire")
    }

    fn part_stream_post(&self, _: &Fabric, _: usize, _: u64, _: PartStreamRecv) {
        unreachable!("shared-memory fabric never routes through the wire")
    }

    fn barrier(&self, _: &Fabric, _: usize) {
        unreachable!("in-process barriers use the fabric's condvar path")
    }

    fn announce_win(&self, _: usize, _: u64, _: usize) {
        unreachable!("shared-memory fabric never routes through the wire")
    }

    fn wait_win_announce(&self, _: &Fabric, _: usize, _: u64) -> usize {
        unreachable!("shared-memory fabric never routes through the wire")
    }

    fn put(&self, _: usize, _: u64, _: usize, _: &[u8]) {
        unreachable!("shared-memory fabric never routes through the wire")
    }

    fn get(&self, _: &Fabric, _: usize, _: usize, _: u64, _: usize, _: usize) -> Vec<u8> {
        unreachable!("shared-memory fabric never routes through the wire")
    }

    fn peer_states(&self) -> Vec<PeerSocketState> {
        Vec::new()
    }

    fn broadcast_abort(&self, _: &PcommError) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abort_frames_roundtrip_the_error_taxonomy() {
        let cases = vec![
            PcommError::MessageLost {
                src: 1,
                dst: 0,
                tag: 9,
                attempts: 4,
            },
            PcommError::PeerPanicked {
                rank: 2,
                message: "boom".into(),
            },
            PcommError::Misuse {
                rank: Some(3),
                detail: "double pready".into(),
            },
            PcommError::Misuse {
                rank: None,
                detail: "verify findings".into(),
            },
        ];
        for err in cases {
            let Frame::Abort {
                kind,
                a,
                b,
                tag,
                attempts,
                detail,
            } = encode_abort(&err)
            else {
                panic!("encode_abort must produce Abort frames");
            };
            assert_eq!(decode_abort(kind, a, b, tag, attempts, detail), err);
        }
    }

    #[test]
    fn stall_decays_to_misuse_with_rendered_report() {
        let err = PcommError::Stall(Box::new(crate::error::StallReport {
            watchdog_ms: 100,
            quiet_ms: 150,
            finished_ranks: vec![],
            blocked: vec![],
            unmatched_posted: vec![],
            unmatched_unexpected: vec![],
            matched: 3,
            peers: vec![],
        }));
        let Frame::Abort { kind, detail, .. } = encode_abort(&err) else {
            panic!("expected Abort");
        };
        assert_eq!(kind, ABORT_MISUSE);
        assert!(detail.contains("peer stalled"), "{detail}");
    }

    /// A writer that accepts at most 3 bytes per call, across however
    /// many slices — exercises every partial-write resume path.
    struct DribbleWriter {
        out: Vec<u8>,
    }

    impl Write for DribbleWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            let n = buf.len().min(3);
            self.out.extend_from_slice(&buf[..n]);
            Ok(n)
        }

        fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
            let mut left = 3usize;
            let mut written = 0usize;
            for b in bufs {
                if left == 0 {
                    break;
                }
                let n = b.len().min(left);
                self.out.extend_from_slice(&b[..n]);
                written += n;
                left -= n;
            }
            Ok(written)
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_all_vectored_survives_partial_writes() {
        let bufs: [Vec<u8>; 5] = [
            vec![1u8, 2, 3, 4, 5],
            vec![],
            vec![6u8],
            vec![7u8; 10],
            vec![8u8, 9],
        ];
        let slices: Vec<&[u8]> = bufs.iter().map(|b| b.as_slice()).collect();
        let mut w = DribbleWriter { out: Vec::new() };
        write_all_vectored(&mut w, &slices).unwrap();
        let want: Vec<u8> = bufs.concat();
        assert_eq!(w.out, want);
    }

    fn fresh_stream(total_len: usize) -> StreamSend {
        StreamSend {
            dst: 1,
            cts: false,
            flushed: false,
            total_len,
            pushed: 0,
            pend: None,
            queued: Vec::new(),
            spans: Arc::new(Vec::new()),
        }
    }

    #[test]
    fn adjacent_ranges_coalesce_until_the_threshold() {
        let buf = vec![0u8; 4096];
        let mut s = fresh_stream(1 << 20);
        assert!(s.push(0, buf.as_ptr(), 100, 1, 256).is_empty());
        assert!(s.push(100, buf[100..].as_ptr(), 100, 1, 256).is_empty());
        let out = s.push(200, buf[200..].as_ptr(), 100, 2, 256);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].offset, 0);
        assert_eq!(out[0].len, 300);
        assert_eq!(out[0].parts, 4);
        assert!(s.pend.is_none(), "dispatched chunk leaves no window");
    }

    #[test]
    fn a_gap_flushes_the_open_window() {
        let buf = vec![0u8; 1024];
        let mut s = fresh_stream(1 << 20);
        assert!(s.push(0, buf.as_ptr(), 100, 1, 256).is_empty());
        let out = s.push(500, buf[500..].as_ptr(), 100, 1, 256);
        assert_eq!(out.len(), 1);
        assert_eq!((out[0].offset, out[0].len), (0, 100));
        let tail = s.pend.take().expect("gap range opens a new window");
        assert_eq!((tail.offset, tail.len), (500, 100));
    }

    #[test]
    fn threshold_sized_ranges_skip_the_window() {
        let buf = vec![0u8; 8192];
        let mut s = fresh_stream(1 << 20);
        let out = s.push(0, buf.as_ptr(), 512, 4, 256);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].len, 512);
        assert!(s.pend.is_none());
        // And with a non-adjacent window open, both come out in order.
        assert!(s.push(4096, buf[4096..].as_ptr(), 10, 1, 256).is_empty());
        let out = s.push(0, buf.as_ptr(), 512, 4, 256);
        assert_eq!(out.len(), 2);
        assert_eq!((out[0].offset, out[0].len), (4096, 10));
        assert_eq!((out[1].offset, out[1].len), (0, 512));
    }

    #[test]
    fn the_final_push_flushes_the_tail_window() {
        let buf = vec![0u8; 300];
        let mut s = fresh_stream(300);
        assert!(s.push(0, buf.as_ptr(), 100, 1, 1 << 20).is_empty());
        let out = s.push(100, buf[100..].as_ptr(), 200, 3, 1 << 20);
        assert_eq!(
            out.len(),
            1,
            "reaching total_len flushes without an explicit call"
        );
        assert_eq!((out[0].offset, out[0].len, out[0].parts), (0, 300, 4));
        assert!(s.flushed, "stream retires itself once fully pushed");
        assert!(s.pend.is_none());
    }

    #[test]
    fn span_completion_fires_exactly_when_a_span_is_fully_written() {
        let spans = vec![
            SendSpan {
                offset: 0,
                len: 100,
                remaining: AtomicUsize::new(100),
                done: Completion::new(),
            },
            SendSpan {
                offset: 100,
                len: 100,
                remaining: AtomicUsize::new(100),
                done: Completion::new(),
            },
        ];
        complete_spans(&spans, 0, 150);
        assert!(spans[0].done.is_set(), "fully covered span completes");
        assert!(!spans[1].done.is_set(), "half-written span stays pending");
        complete_spans(&spans, 150, 50);
        assert!(spans[1].done.is_set(), "second write covers the remainder");
    }

    #[test]
    fn span_completion_saturates_on_failover_replay() {
        let spans = vec![SendSpan {
            offset: 0,
            len: 100,
            remaining: AtomicUsize::new(100),
            done: Completion::new(),
        }];
        complete_spans(&spans, 0, 60);
        assert_eq!(spans[0].remaining.load(Ordering::Relaxed), 40);
        complete_spans(&spans, 40, 60);
        assert!(spans[0].done.is_set());
        // Replays against a finished span saturate at zero: the counter
        // never underflows (a plain `fetch_sub` would wrap to usize::MAX
        // and the span could "complete" again on the way back down).
        complete_spans(&spans, 0, 100);
        complete_spans(&spans, 20, 50);
        assert_eq!(
            spans[0].remaining.load(Ordering::Relaxed),
            0,
            "post-completion replays are no-ops"
        );
    }

    #[test]
    fn claim_range_reports_only_fresh_bytes() {
        let mut ledger = Vec::new();
        assert_eq!(claim_range(&mut ledger, 10, 20), vec![(10, 20)]);
        assert_eq!(ledger, vec![(10, 20)]);
        // Pure duplicate.
        assert!(claim_range(&mut ledger, 10, 20).is_empty());
        // Overlap on both sides.
        assert_eq!(claim_range(&mut ledger, 5, 25), vec![(5, 10), (20, 25)]);
        assert_eq!(ledger, vec![(5, 25)]);
        // Disjoint ranges stay separate and sorted.
        assert_eq!(claim_range(&mut ledger, 40, 50), vec![(40, 50)]);
        assert_eq!(claim_range(&mut ledger, 0, 2), vec![(0, 2)]);
        assert_eq!(ledger, vec![(0, 2), (5, 25), (40, 50)]);
        // A claim spanning several entries returns every gap and merges.
        assert_eq!(
            claim_range(&mut ledger, 1, 45),
            vec![(2, 5), (25, 40)],
            "gaps between existing intervals are the fresh bytes"
        );
        assert_eq!(ledger, vec![(0, 50)]);
        // Empty and inverted claims are no-ops.
        assert!(claim_range(&mut ledger, 7, 7).is_empty());
        assert_eq!(ledger, vec![(0, 50)]);
    }

    #[test]
    fn claim_range_merges_adjacent_intervals() {
        let mut ledger = vec![(0usize, 10usize), (10, 20)];
        // Touching (end == lo) intervals merge rather than duplicate.
        assert_eq!(claim_range(&mut ledger, 20, 30), vec![(20, 30)]);
        assert_eq!(ledger, vec![(0, 10), (10, 30)]);
        assert!(claim_range(&mut ledger, 0, 30).is_empty());
        assert_eq!(ledger, vec![(0, 30)]);
    }
}
