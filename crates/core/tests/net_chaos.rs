//! Wire-level chaos end to end: seeded faults injected under a real
//! 2-process UDS mesh must end in one of exactly two states — the
//! transfer completes bit-exact, or a *typed* error surfaces on every
//! affected rank within bounded time. Hangs are the one forbidden
//! outcome.

mod common;

use std::time::Duration;

use common::{ENV_PARTS, ENV_PART_BYTES};

const TIMEOUT: Duration = Duration::from_secs(60);

/// Torn writes and short reads are absorbed by the framing layer's
/// write_all/read_exact loops: a run soaked in both still completes
/// bit-exact with the fault-free expectation.
#[test]
fn torn_writes_and_short_reads_complete_bit_exact() {
    if common::maybe_run_child() {
        return;
    }
    let (n_parts, part_bytes) = (16, 16 * 1024);
    let outs = common::run_wire_pair(
        "torn_writes_and_short_reads_complete_bit_exact",
        "transfer",
        &[
            (ENV_PARTS, n_parts.to_string()),
            (ENV_PART_BYTES, part_bytes.to_string()),
            (
                "PCOMM_FAULTS",
                "seed=3,torn=0.25,shortread=0.25".to_string(),
            ),
        ],
        [vec![], vec![]],
        TIMEOUT,
    );
    for (rank, o) in outs.iter().enumerate() {
        assert!(
            o.status.success(),
            "rank {rank}: {:?} ({})",
            o.status,
            o.out
        );
        assert!(o.out.starts_with("ok "), "rank {rank}: `{}`", o.out);
    }
    assert_eq!(
        outs[0].digest(),
        Some(common::expected_digest(n_parts, part_bytes)),
        "digest diverged under torn/short-read chaos: `{}`",
        outs[0].out
    );
    // The sweep is only meaningful if faults actually fired.
    assert!(
        outs.iter().any(|o| o.trace.contains("fault_injected")),
        "no wire fault was injected — the scenario tested nothing"
    );
}

/// A data lane killed mid-stream re-routes its in-flight partitions to
/// the surviving lanes: the transfer completes bit-exact and the
/// sender's trace records the lane going down.
#[test]
fn data_lane_kill_fails_over_mid_stream() {
    if common::maybe_run_child() {
        return;
    }
    // 2 MiB across 3 lanes; lane 2 dies after 64 KiB — early enough
    // that most of the stream must travel the surviving lane.
    let (n_parts, part_bytes) = (32, 64 * 1024);
    let outs = common::run_wire_pair(
        "data_lane_kill_fails_over_mid_stream",
        "transfer",
        &[
            (ENV_PARTS, n_parts.to_string()),
            (ENV_PART_BYTES, part_bytes.to_string()),
            ("PCOMM_NET_LANES", "3".to_string()),
        ],
        [
            vec![],
            vec![("PCOMM_FAULTS", "seed=7,lanekill=2:65536".to_string())],
        ],
        TIMEOUT,
    );
    for (rank, o) in outs.iter().enumerate() {
        assert!(
            o.status.success(),
            "rank {rank}: {:?} ({})",
            o.status,
            o.out
        );
        assert!(
            o.out.starts_with("ok "),
            "rank {rank} did not survive the lane kill: `{}`",
            o.out
        );
    }
    assert_eq!(
        outs[0].digest(),
        Some(common::expected_digest(n_parts, part_bytes)),
        "digest diverged after lane failover: `{}`",
        outs[0].out
    );
    assert!(
        outs[1].trace.contains("lane_down"),
        "sender never recorded the killed lane — did the fault fire?"
    );
}

/// A half-open peer — live socket, writes silently swallowed — is the
/// failure only heartbeats can see. The survivor must escalate to a
/// typed `PeerPanicked` naming the silence, within ~2x the heartbeat
/// interval, and the silent rank itself must come back with a typed
/// error once the survivor tears the mesh down. Nobody hangs.
#[test]
fn half_open_peer_escalates_to_typed_error() {
    if common::maybe_run_child() {
        return;
    }
    let hb_ms: u64 = 150;
    let outs = common::run_wire_pair(
        "half_open_peer_escalates_to_typed_error",
        "barrier-storm",
        &[("PCOMM_NET_HB_MS", hb_ms.to_string())],
        [
            vec![],
            // Rank 1's lane 0 goes silent after 256 bytes of control
            // traffic — a few barriers in, handshake long done.
            vec![("PCOMM_FAULTS", "seed=9,halfopen=0:256".to_string())],
        ],
        TIMEOUT,
    );
    for (rank, o) in outs.iter().enumerate() {
        assert!(
            o.status.success(),
            "rank {rank}: {:?} ({})",
            o.status,
            o.out
        );
        assert!(
            o.out.starts_with("err "),
            "rank {rank} should have surfaced a typed error, got `{}`",
            o.out
        );
    }
    let survivor = &outs[0];
    assert!(
        survivor.out.contains("presumed dead"),
        "survivor's error does not name the silent peer: `{}`",
        survivor.out
    );
    assert!(
        survivor.trace.contains("heartbeat_miss"),
        "survivor escalated without recording a heartbeat_miss event"
    );
    // Detection bound: the quiet period in the message is the monitor's
    // own measurement; 2x interval plus scheduling slack.
    let quiet_ms: u64 = survivor
        .out
        .split(" for ")
        .nth(1)
        .and_then(|s| s.split(" ms").next())
        .and_then(|n| n.trim().parse().ok())
        .unwrap_or_else(|| panic!("no quiet period in `{}`", survivor.out));
    assert!(
        quiet_ms <= 2 * hb_ms + 350,
        "silent death detected only after {quiet_ms} ms (heartbeat {hb_ms} ms)"
    );
}

/// The lane-kill failover cell again, with verification on: both rank
/// processes must persist analysis-grade `.events` rings, and the
/// merged cross-process audit — wire FSM, stream ledger, happens-before
/// — must come back clean even though a lane died and its in-flight
/// bytes were replayed.
#[test]
fn lanekill_failover_run_audits_clean() {
    if common::maybe_run_child() {
        return;
    }
    let (n_parts, part_bytes) = (32, 64 * 1024);
    let outs = common::run_wire_pair(
        "lanekill_failover_run_audits_clean",
        "transfer",
        &[
            (ENV_PARTS, n_parts.to_string()),
            (ENV_PART_BYTES, part_bytes.to_string()),
            ("PCOMM_NET_LANES", "3".to_string()),
            ("PCOMM_VERIFY", "1".to_string()),
        ],
        [
            vec![],
            vec![("PCOMM_FAULTS", "seed=7,lanekill=2:65536".to_string())],
        ],
        TIMEOUT,
    );
    for (rank, o) in outs.iter().enumerate() {
        assert!(
            o.status.success(),
            "rank {rank}: {:?} ({})",
            o.status,
            o.out
        );
        assert!(o.out.starts_with("ok "), "rank {rank}: `{}`", o.out);
    }
    assert_eq!(
        outs[0].digest(),
        Some(common::expected_digest(n_parts, part_bytes)),
        "digest diverged after lane failover: `{}`",
        outs[0].out
    );
    let rings: Vec<_> = outs
        .iter()
        .enumerate()
        .map(|(rank, o)| {
            o.events
                .clone()
                .unwrap_or_else(|| panic!("rank {rank} left no .events ring"))
        })
        .collect();
    let report = pcomm_verify::audit(&rings);
    assert!(
        report.is_clean(),
        "failover run failed its audit:\n{report}"
    );
    assert!(
        report.stats.matched_frames > 0,
        "no frames matched:\n{report}"
    );
    assert!(
        report.stats.streams >= 1,
        "transfer did not stream:\n{report}"
    );
}

/// A run that dies with a typed error must still flush its rings: the
/// half-open cell ends in `PeerPanicked` on both ranks, yet both
/// `.events` sidecars exist, parse, and audit clean — failed runs are
/// exactly the ones worth auditing.
#[test]
fn typed_error_exit_still_persists_audit_rings() {
    if common::maybe_run_child() {
        return;
    }
    let outs = common::run_wire_pair(
        "typed_error_exit_still_persists_audit_rings",
        "barrier-storm",
        &[
            ("PCOMM_NET_HB_MS", "150".to_string()),
            ("PCOMM_VERIFY", "1".to_string()),
        ],
        [
            vec![],
            vec![("PCOMM_FAULTS", "seed=9,halfopen=0:256".to_string())],
        ],
        TIMEOUT,
    );
    let mut rings = Vec::new();
    for (rank, o) in outs.iter().enumerate() {
        assert!(
            o.status.success(),
            "rank {rank}: {:?} ({})",
            o.status,
            o.out
        );
        assert!(
            o.out.starts_with("err "),
            "rank {rank} should have died typed, got `{}`",
            o.out
        );
        let ring = o
            .events
            .clone()
            .unwrap_or_else(|| panic!("rank {rank} lost its ring on the typed-error exit"));
        assert_eq!(ring.rank as usize, rank);
        rings.push(ring);
    }
    let report = pcomm_verify::audit(&rings);
    assert!(
        report.is_clean(),
        "typed-error run failed its audit:\n{report}"
    );
    assert!(
        report.stats.matched_frames > 0,
        "no control traffic was matched:\n{report}"
    );
}
