//! Shared harness for the multiprocess wire tests.
//!
//! Each `#[test]` doubles as its own SPMD body: the parent run spawns
//! this very test binary twice (filtered to the one test by name) with
//! the `PCOMM_NET_*` environment plus `PCOMM_TEST_CHILD=<scenario>`,
//! and the child branch — taken before any parent logic — joins the
//! socket mesh via `Universe::run`, executes the scenario closure, and
//! writes `ok <digest>` / `err <error>` to `test-out-<rank>` in the
//! rendezvous directory. The parent asserts on those files (and on the
//! per-rank Chrome traces the children write), so a child that fails in
//! an *expected* way still exits 0 and the parent keeps the authority
//! over what counts as a pass.

#![allow(dead_code)]

use std::path::PathBuf;
use std::process::{Command, ExitStatus, Stdio};
use std::time::{Duration, Instant};

use pcomm_core::part::PartOptions;
use pcomm_core::{Comm, Universe};
use pcomm_net::{launch, Backend, MultiprocEnv};

/// Marker + scenario selector for the child branch.
pub const ENV_CHILD: &str = "PCOMM_TEST_CHILD";
/// Partition count for the transfer scenario (child side).
pub const ENV_PARTS: &str = "PCOMM_TEST_PARTS";
/// Partition size in bytes for the transfer scenario (child side).
pub const ENV_PART_BYTES: &str = "PCOMM_TEST_PART_BYTES";
/// Sleep between `pready` calls, ms — the "slow but alive" knob.
pub const ENV_PREADY_GAP_MS: &str = "PCOMM_TEST_PREADY_GAP_MS";

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Fold `bytes` into a running FNV-1a accumulator.
pub fn fnv1a(mut acc: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        acc = (acc ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    acc
}

/// Deterministic payload for partition `p` — every byte depends on both
/// the partition index and the offset, so a misrouted or replayed chunk
/// shows up in the digest.
pub fn fill_pattern(p: usize, buf: &mut [u8]) {
    for (i, b) in buf.iter_mut().enumerate() {
        *b = (p.wrapping_mul(131) ^ i.wrapping_mul(7) ^ 0x5a) as u8;
    }
}

/// The digest a correct receiver must compute for the transfer scenario.
pub fn expected_digest(n_parts: usize, part_bytes: usize) -> u64 {
    let mut buf = vec![0u8; part_bytes];
    let mut acc = FNV_OFFSET;
    for p in 0..n_parts {
        fill_pattern(p, &mut buf);
        acc = fnv1a(acc, &buf);
    }
    acc
}

/// The transfer scenario: rank 1 streams `n_parts` partitions to rank 0,
/// which digests them in order. Returns the digest at rank 0, 0 at the
/// sender. `pready_gap` paces the sender (slow-but-alive runs).
pub fn transfer(comm: &Comm, n_parts: usize, part_bytes: usize, pready_gap: Duration) -> u64 {
    if comm.rank() == 0 {
        let pr = comm.precv_init(1, 7, n_parts, part_bytes, PartOptions::default());
        pr.start();
        pr.wait();
        let mut acc = FNV_OFFSET;
        for p in 0..n_parts {
            acc = fnv1a(acc, pr.partition(p));
        }
        acc
    } else {
        let ps = comm.psend_init(0, 7, n_parts, part_bytes, PartOptions::default());
        ps.start();
        for p in 0..n_parts {
            ps.write_partition(p, |buf| fill_pattern(p, buf));
            ps.pready(p);
            if !pready_gap.is_zero() {
                std::thread::sleep(pready_gap);
            }
        }
        ps.wait();
        0
    }
}

/// The barrier-storm scenario: pure lane-0 control traffic, so a
/// half-open lane 0 leaves the peer with nothing but silence for the
/// heartbeat monitor to judge.
pub fn barrier_storm(comm: &Comm, rounds: usize) -> u64 {
    for _ in 0..rounds {
        comm.barrier();
    }
    0
}

/// Child branch: when `PCOMM_TEST_CHILD` is set, run the selected
/// scenario as this process's rank and report through the out file.
/// Returns `true` when this process was a child (the test should then
/// return without running its parent logic).
pub fn maybe_run_child() -> bool {
    let Ok(scenario) = std::env::var(ENV_CHILD) else {
        return false;
    };
    let env = MultiprocEnv::from_env().expect("child requires the PCOMM_NET_* environment");
    let env_usize = |key: &str, default: usize| {
        std::env::var(key)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let n_parts = env_usize(ENV_PARTS, 16);
    let part_bytes = env_usize(ENV_PART_BYTES, 16 * 1024);
    let gap = Duration::from_millis(env_usize(ENV_PREADY_GAP_MS, 0) as u64);
    let result = Universe::new(2).run(|comm| match scenario.as_str() {
        "barrier-storm" => barrier_storm(&comm, 10_000),
        // Rank 1 vanishes without ceremony after one barrier — the
        // harness's stand-in for a peer process dying mid-run. Rank 0
        // keeps hammering barriers until liveness monitoring notices.
        "abort-mid" => {
            comm.barrier();
            if comm.rank() == 1 {
                std::process::abort();
            }
            barrier_storm(&comm, 10_000)
        }
        _ => transfer(&comm, n_parts, part_bytes, gap),
    });
    let line = match result {
        Ok(vals) => format!("ok {:016x}", vals[0]),
        Err(e) => format!("err {}", format!("{e}").replace('\n', " | ")),
    };
    std::fs::write(env.dir.join(format!("test-out-{}", env.rank)), line)
        .expect("write child out file");
    true
}

/// What one rank process reported back to the parent.
pub struct RankOutcome {
    pub status: ExitStatus,
    /// Contents of `test-out-<rank>`: `ok <digest>` or `err <message>`.
    pub out: String,
    /// The rank's Chrome trace JSON (children run under `PCOMM_TRACE`).
    pub trace: String,
    /// The rank's analysis-grade `.events` ring — written only when the
    /// cell ran with `PCOMM_VERIFY=1`, and on typed-error exits too.
    pub events: Option<pcomm_trace::RankEvents>,
}

impl RankOutcome {
    pub fn digest(&self) -> Option<u64> {
        self.out
            .strip_prefix("ok ")
            .and_then(|d| u64::from_str_radix(d.trim(), 16).ok())
    }
}

/// Spawn `test_name` from this test binary as a 2-rank UDS mesh and
/// collect each rank's outcome. `common_env` applies to both ranks,
/// `per_rank_env[r]` only to rank `r`; children always write Chrome
/// traces into the rendezvous dir. Panics if a child outlives `timeout`
/// (after killing it) — no scenario may hang the suite.
pub fn run_wire_pair(
    test_name: &str,
    scenario: &str,
    common_env: &[(&str, String)],
    per_rank_env: [Vec<(&str, String)>; 2],
    timeout: Duration,
) -> Vec<RankOutcome> {
    let dir = launch::unique_rendezvous_dir().expect("rendezvous dir");
    let spmd = MultiprocEnv {
        rank: 0,
        n_ranks: 2,
        dir: dir.clone(),
        backend: Backend::Uds,
    };
    let exe = std::env::current_exe().expect("test binary path");
    let trace_base = dir.join("trace.json");
    let children: Vec<_> = (0..2)
        .map(|rank| {
            let mut cmd = Command::new(&exe);
            cmd.arg(test_name).arg("--exact").arg("--test-threads=1");
            cmd.stdout(Stdio::null());
            spmd.apply_to(&mut cmd, rank);
            cmd.env(ENV_CHILD, scenario);
            cmd.env("PCOMM_TRACE", &trace_base);
            for (k, v) in common_env {
                cmd.env(k, v);
            }
            for (k, v) in &per_rank_env[rank] {
                cmd.env(k, v);
            }
            cmd.spawn().expect("spawn rank child")
        })
        .collect();
    let deadline = Instant::now() + timeout;
    let statuses: Vec<ExitStatus> = children
        .into_iter()
        .enumerate()
        .map(|(rank, mut child)| loop {
            match child.try_wait().expect("poll rank child") {
                Some(status) => break status,
                None if Instant::now() >= deadline => {
                    let _ = child.kill();
                    let _ = child.wait();
                    panic!("{test_name}: rank {rank} child hung past {timeout:?}");
                }
                None => std::thread::sleep(Duration::from_millis(20)),
            }
        })
        .collect();
    let outcomes = statuses
        .into_iter()
        .enumerate()
        .map(|(rank, status)| {
            let trace = trace_path(&trace_base, rank);
            let mut events = trace.as_os_str().to_owned();
            events.push(".events");
            RankOutcome {
                status,
                out: std::fs::read_to_string(dir.join(format!("test-out-{rank}")))
                    .unwrap_or_default(),
                trace: std::fs::read_to_string(&trace).unwrap_or_default(),
                events: pcomm_trace::read_events(std::path::Path::new(&events)).ok(),
            }
        })
        .collect();
    let _ = std::fs::remove_dir_all(&dir);
    outcomes
}

fn trace_path(base: &std::path::Path, rank: usize) -> PathBuf {
    let mut s = base.as_os_str().to_owned();
    s.push(format!(".rank{rank}"));
    PathBuf::from(s)
}

/// In-process (shared-memory) digest of the same transfer — the
/// baseline every wire run must agree with bit-for-bit.
pub fn shm_baseline_digest(n_parts: usize, part_bytes: usize) -> u64 {
    let out = Universe::new(2)
        .run(|comm| transfer(&comm, n_parts, part_bytes, Duration::ZERO))
        .expect("in-process baseline failed");
    out[0]
}
