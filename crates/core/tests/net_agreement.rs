//! Wire-vs-shared-memory agreement: the same partitioned transfer must
//! produce bit-identical data on both fabrics, and liveness monitoring
//! must never mistake a slow peer for a dead one.

mod common;

use std::time::Duration;

use common::{ENV_PARTS, ENV_PART_BYTES, ENV_PREADY_GAP_MS};

const TIMEOUT: Duration = Duration::from_secs(60);

/// Baseline: a fault-free UDS run agrees bit-for-bit with the
/// in-process run of the same transfer (and both match the pattern the
/// sender wrote).
#[test]
fn wire_digest_matches_shm_baseline() {
    if common::maybe_run_child() {
        return;
    }
    let (n_parts, part_bytes) = (16, 16 * 1024);
    let shm = common::shm_baseline_digest(n_parts, part_bytes);
    assert_eq!(
        shm,
        common::expected_digest(n_parts, part_bytes),
        "in-process baseline does not match the sender's pattern"
    );
    let outs = common::run_wire_pair(
        "wire_digest_matches_shm_baseline",
        "transfer",
        &[
            (ENV_PARTS, n_parts.to_string()),
            (ENV_PART_BYTES, part_bytes.to_string()),
        ],
        [vec![], vec![]],
        TIMEOUT,
    );
    for (rank, o) in outs.iter().enumerate() {
        assert!(
            o.status.success(),
            "rank {rank}: {:?} ({})",
            o.status,
            o.out
        );
    }
    assert_eq!(
        outs[0].digest(),
        Some(shm),
        "wire digest diverged from shm baseline: `{}`",
        outs[0].out
    );
    // The sender reports 0 only when it really ran as rank 1 of a wire
    // mesh; an accidental in-process fallback would hand it rank 0's
    // digest instead.
    assert_eq!(outs[1].digest(), Some(0), "rank 1 fell back in-process");
}

/// A slow-but-alive peer must never be declared dead: with heartbeats
/// armed and the sender crawling (seeded pready jitter plus an explicit
/// inter-partition gap several times the heartbeat interval), the run
/// completes clean, the digest still matches the shm baseline, and no
/// rank records a single `heartbeat_miss`.
#[test]
fn slow_jittered_peer_is_not_declared_dead() {
    if common::maybe_run_child() {
        return;
    }
    let (n_parts, part_bytes) = (10, 8 * 1024);
    let shm = common::shm_baseline_digest(n_parts, part_bytes);
    let outs = common::run_wire_pair(
        "slow_jittered_peer_is_not_declared_dead",
        "transfer",
        &[
            (ENV_PARTS, n_parts.to_string()),
            (ENV_PART_BYTES, part_bytes.to_string()),
            // Miss threshold is 1.75x the interval (350 ms here): small
            // enough that the 500+ ms crawl below would trip a monitor
            // that judged transfer progress instead of heartbeats, big
            // enough to absorb scheduler noise on a loaded CI box.
            ("PCOMM_NET_HB_MS", "200".to_string()),
        ],
        [
            vec![],
            vec![
                ("PCOMM_FAULTS", "seed=11,delay=0.25:2000,jitter".to_string()),
                (ENV_PREADY_GAP_MS, "50".to_string()),
            ],
        ],
        TIMEOUT,
    );
    for (rank, o) in outs.iter().enumerate() {
        assert!(
            o.status.success(),
            "rank {rank}: {:?} ({})",
            o.status,
            o.out
        );
        assert!(
            o.out.starts_with("ok "),
            "rank {rank} did not complete clean: `{}`",
            o.out
        );
        assert!(
            !o.trace.contains("heartbeat_miss"),
            "rank {rank}: heartbeat monitor false-positived on a slow peer"
        );
    }
    assert_eq!(
        outs[0].digest(),
        Some(shm),
        "slow-peer wire digest diverged from shm baseline: `{}`",
        outs[0].out
    );
}
