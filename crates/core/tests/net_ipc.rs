//! The shared-memory (`ipc`) fabric end to end: two real processes map
//! a common segment and stream partitions through lock-free rings with
//! futex doorbells. The same transfer must agree bit-for-bit with the
//! in-process baseline, backpressure must block rather than drop,
//! peer death must surface as a typed error within the heartbeat
//! bound, and a verified run must audit clean — the exact contract the
//! socket fabric already honors, on a transport with no syscalls on
//! the data path.

mod common;

use std::time::Duration;

use common::{ENV_PARTS, ENV_PART_BYTES};

const TIMEOUT: Duration = Duration::from_secs(60);

/// Every test in this file needs the raw-syscall layer; off-platform
/// builds skip rather than fail.
fn ipc_supported() -> bool {
    if pcomm_net::sys::supported() {
        return true;
    }
    eprintln!("skipping: pcomm ipc fabric unsupported on this platform");
    false
}

fn fabric_env() -> (&'static str, String) {
    ("PCOMM_NET_FABRIC", "ipc".to_string())
}

/// Baseline: a fault-free ipc run agrees bit-for-bit with the
/// in-process run of the same transfer, and the processes really took
/// the shared-segment path (the doorbell leaves a trace).
#[test]
fn ipc_digest_matches_shm_baseline() {
    if common::maybe_run_child() {
        return;
    }
    if !ipc_supported() {
        return;
    }
    let (n_parts, part_bytes) = (16, 16 * 1024);
    let shm = common::shm_baseline_digest(n_parts, part_bytes);
    assert_eq!(
        shm,
        common::expected_digest(n_parts, part_bytes),
        "in-process baseline does not match the sender's pattern"
    );
    let outs = common::run_wire_pair(
        "ipc_digest_matches_shm_baseline",
        "transfer",
        &[
            fabric_env(),
            (ENV_PARTS, n_parts.to_string()),
            (ENV_PART_BYTES, part_bytes.to_string()),
        ],
        [vec![], vec![]],
        TIMEOUT,
    );
    for (rank, o) in outs.iter().enumerate() {
        assert!(
            o.status.success(),
            "rank {rank}: {:?} ({})",
            o.status,
            o.out
        );
        assert!(o.out.starts_with("ok "), "rank {rank}: `{}`", o.out);
    }
    assert_eq!(
        outs[0].digest(),
        Some(shm),
        "ipc digest diverged from shm baseline: `{}`",
        outs[0].out
    );
    // The sender reports 0 only when it really ran as rank 1 of a wire
    // mesh; an accidental in-process fallback would hand it rank 0's
    // digest instead.
    assert_eq!(outs[1].digest(), Some(0), "rank 1 fell back in-process");
    assert!(
        outs.iter().any(|o| o.trace.contains("ipc_doorbell")),
        "no rank recorded an ipc doorbell — did the run fall back to sockets?"
    );
}

/// Backpressure: a ring squeezed to 2 slots with a 4 KiB fifo and no
/// usable arena (so every chunk rides the fifo) forces the sender to
/// block on ring-full dozens of times. The contract: block, never
/// drop — the transfer still completes bit-exact under full
/// verification, and the waits are visible in the trace.
#[test]
fn ipc_ring_full_blocks_without_dropping() {
    if common::maybe_run_child() {
        return;
    }
    if !ipc_supported() {
        return;
    }
    let (n_parts, part_bytes) = (16, 16 * 1024);
    let outs = common::run_wire_pair(
        "ipc_ring_full_blocks_without_dropping",
        "transfer",
        &[
            fabric_env(),
            (ENV_PARTS, n_parts.to_string()),
            (ENV_PART_BYTES, part_bytes.to_string()),
            ("PCOMM_NET_IPC_SLOTS", "2".to_string()),
            ("PCOMM_NET_IPC_SLAB", "4096".to_string()),
            // 1 byte: below any allocation, so the zero-copy grant is
            // refused and all 256 KiB funnel through the tiny fifo.
            ("PCOMM_NET_IPC_ARENA", "1".to_string()),
            ("PCOMM_VERIFY", "1".to_string()),
        ],
        [vec![], vec![]],
        TIMEOUT,
    );
    for (rank, o) in outs.iter().enumerate() {
        assert!(
            o.status.success(),
            "rank {rank}: {:?} ({})",
            o.status,
            o.out
        );
        assert!(o.out.starts_with("ok "), "rank {rank}: `{}`", o.out);
    }
    assert_eq!(
        outs[0].digest(),
        Some(common::expected_digest(n_parts, part_bytes)),
        "digest diverged under ring backpressure: `{}`",
        outs[0].out
    );
    assert!(
        outs[1].trace.contains("ipc_ring_full"),
        "sender never hit ring-full — the squeeze tested nothing"
    );
}

/// A peer process that dies mid-run must become a typed
/// `PeerPanicked` on the survivor, within the advertised heartbeat
/// bound — the segment heartbeat is the only liveness signal the ipc
/// fabric has (no socket to break), so this is the failure mode the
/// monitor exists for.
#[test]
fn ipc_killed_peer_escalates_within_heartbeat_bound() {
    if common::maybe_run_child() {
        return;
    }
    if !ipc_supported() {
        return;
    }
    let hb_ms: u64 = 150;
    let outs = common::run_wire_pair(
        "ipc_killed_peer_escalates_within_heartbeat_bound",
        "abort-mid",
        &[fabric_env(), ("PCOMM_NET_HB_MS", hb_ms.to_string())],
        [vec![], vec![]],
        TIMEOUT,
    );
    let survivor = &outs[0];
    assert!(
        survivor.status.success(),
        "rank 0: {:?} ({})",
        survivor.status,
        survivor.out
    );
    assert!(
        !outs[1].status.success(),
        "rank 1 was supposed to abort, yet exited clean: `{}`",
        outs[1].out
    );
    assert!(
        survivor.out.starts_with("err ") && survivor.out.contains("rank 1"),
        "survivor should have surfaced a typed error naming rank 1, got `{}`",
        survivor.out
    );
    // Detection bound: the staleness in the message is the monitor's
    // own measurement. 1.75x interval is the trip point; allow generous
    // scheduler slack on a loaded single-core CI box.
    let stale_ms: u64 = survivor
        .out
        .split("stale for ")
        .nth(1)
        .and_then(|s| s.split(" ms").next())
        .and_then(|n| n.trim().parse().ok())
        .unwrap_or_else(|| panic!("no staleness measurement in `{}`", survivor.out));
    assert!(
        stale_ms <= 2 * hb_ms + 1000,
        "dead peer detected only after {stale_ms} ms (heartbeat {hb_ms} ms)"
    );
}

/// The full verification stack over ipc: both ranks persist
/// analysis-grade `.events` rings and the merged cross-process audit —
/// wire FSM, stream ledger, happens-before — comes back clean, with
/// frames matched and the transfer recognized as a stream. Zero-copy
/// commits must not confuse a checker built for sockets.
#[test]
fn ipc_verified_run_audits_clean() {
    if common::maybe_run_child() {
        return;
    }
    if !ipc_supported() {
        return;
    }
    let (n_parts, part_bytes) = (16, 16 * 1024);
    let outs = common::run_wire_pair(
        "ipc_verified_run_audits_clean",
        "transfer",
        &[
            fabric_env(),
            (ENV_PARTS, n_parts.to_string()),
            (ENV_PART_BYTES, part_bytes.to_string()),
            ("PCOMM_VERIFY", "1".to_string()),
        ],
        [vec![], vec![]],
        TIMEOUT,
    );
    for (rank, o) in outs.iter().enumerate() {
        assert!(
            o.status.success(),
            "rank {rank}: {:?} ({})",
            o.status,
            o.out
        );
        assert!(o.out.starts_with("ok "), "rank {rank}: `{}`", o.out);
    }
    assert_eq!(
        outs[0].digest(),
        Some(common::expected_digest(n_parts, part_bytes)),
        "verified ipc digest diverged: `{}`",
        outs[0].out
    );
    let rings: Vec<_> = outs
        .iter()
        .enumerate()
        .map(|(rank, o)| {
            o.events
                .clone()
                .unwrap_or_else(|| panic!("rank {rank} left no .events ring"))
        })
        .collect();
    let report = pcomm_verify::audit(&rings);
    assert!(report.is_clean(), "ipc run failed its audit:\n{report}");
    assert!(
        report.stats.matched_frames > 0,
        "no frames matched:\n{report}"
    );
    assert!(
        report.stats.streams >= 1,
        "the partitioned transfer should stream:\n{report}"
    );
}
