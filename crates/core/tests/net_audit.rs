//! End-to-end audit of a real two-process wire run.
//!
//! IMPORTANT: this file must contain exactly ONE `#[test]`.
//! `Universe::run_multiprocess_verified` re-executes the whole test
//! binary as rank 1, so a second test in this file would run twice
//! with desynchronized mesh sequence numbers.

mod common;

use std::time::Duration;

use pcomm_core::Universe;

const N_PARTS: usize = 16;
const PART_BYTES: usize = 16 * 1024;

#[test]
fn multiprocess_transfer_audits_clean() {
    let (out, report) = Universe::new(2).run_multiprocess_verified(|comm| {
        common::transfer(&comm, N_PARTS, PART_BYTES, Duration::ZERO)
    });
    let results = out.expect("multiprocess transfer failed");
    let Some(report) = report else {
        // Rank 1 (the re-executed child): its contribution is the
        // persisted `.events` ring the launcher audits.
        return;
    };
    assert_eq!(
        results[0],
        common::expected_digest(N_PARTS, PART_BYTES),
        "receiver digest disagrees with the expected pattern"
    );
    assert!(report.is_clean(), "audit found problems:\n{report}");
    assert_eq!(report.stats.ranks, 2);
    assert!(
        report.stats.matched_frames > 0,
        "no wire frames matched:\n{report}"
    );
    assert!(
        report.stats.streams >= 1,
        "the partitioned transfer should stream:\n{report}"
    );
    assert!(
        report.stats.hb_events > 0,
        "no events reached the merged happens-before pass:\n{report}"
    );
}
