//! Golden fixtures for the cross-process auditor: hand-built two-rank
//! `.events` streams with one planted violation each must produce
//! exactly that finding, with provenance pointing at the planted event;
//! the clean fixtures (streaming, failover replay, reconnect epochs)
//! must audit with zero findings.

use pcomm_net::frame::op;
use pcomm_trace::{Event, EventKind, RankEvents};
use pcomm_verify::{audit, AuditKind};

fn ev(ts_ns: u64, rank: u16, kind: EventKind) -> Event {
    Event { ts_ns, rank, kind }
}

fn ring(rank: u16, events: Vec<Event>) -> RankEvents {
    RankEvents {
        rank,
        dropped: 0,
        events,
    }
}

/// Wire frame pair helper: the k-th frame src sent on a lane epoch and
/// its arrival at dst, 5 ns later.
fn frame(ts: u64, src: u16, dst: u16, lane: u16, epoch: u32, seq: u32, fop: u8) -> (Event, Event) {
    let send = ev(
        ts,
        src,
        EventKind::VerifyWireSend {
            peer: dst,
            lane,
            op: fop as u16,
            epoch,
            seq,
        },
    );
    let recv = ev(
        ts + 5,
        dst,
        EventKind::VerifyWireRecv {
            peer: src,
            lane,
            op: fop as u16,
            epoch,
            seq,
        },
    );
    (send, recv)
}

/// A complete clean streaming run, rank 0 -> rank 1: RTS/CTS on lane 0,
/// payload (with one failover replay the ledger absorbs) on lane 1,
/// barrier, goodbye — plus the partitioned-request verify events whose
/// happens-before chain is intact. Returns the two rings.
fn clean_run() -> Vec<RankEvents> {
    let mut r0: Vec<Event> = Vec::new();
    let mut r1: Vec<Event> = Vec::new();

    // Partitioned request: rank 0 interned it as req 0, rank 1 as req 3.
    r0.push(ev(
        10,
        0,
        EventKind::VerifyPartInit {
            req: 0,
            sender: true,
            parts: 1,
            msgs: 1,
        },
    ));
    r0.push(ev(
        11,
        0,
        EventKind::VerifyLayoutMsg {
            req: 0,
            msg: 0,
            first_spart: 0,
            n_sparts: 1,
            first_rpart: 0,
            n_rparts: 1,
            bytes: 8192,
        },
    ));
    r1.push(ev(
        10,
        1,
        EventKind::VerifyPartInit {
            req: 3,
            sender: false,
            parts: 1,
            msgs: 1,
        },
    ));
    r1.push(ev(
        11,
        1,
        EventKind::VerifyLayoutMsg {
            req: 3,
            msg: 0,
            first_spart: 0,
            n_sparts: 1,
            first_rpart: 0,
            n_rparts: 1,
            bytes: 8192,
        },
    ));

    // Sender app thread (tid 100): start, write, pready, inject.
    r0.push(ev(
        20,
        0,
        EventKind::VerifyStart {
            req: 0,
            sender: true,
            iter: 0,
            tid: 100,
        },
    ));
    r0.push(ev(
        30,
        0,
        EventKind::VerifyWrite {
            req: 0,
            part: 0,
            iter: 0,
            tid: 100,
            dur_ns: 5,
        },
    ));
    r0.push(ev(
        40,
        0,
        EventKind::VerifyPready {
            req: 0,
            part: 0,
            iter: 0,
            tid: 100,
        },
    ));

    // Stream negotiation: sender pins 8192 bytes as stream 7.
    r0.push(ev(
        50,
        0,
        EventKind::VerifyStreamRts {
            peer: 1,
            tx: true,
            stream: 7,
            total_len: 8192,
        },
    ));
    r0.push(ev(
        51,
        0,
        EventKind::VerifyStreamMsg {
            stream: 7,
            req: 0,
            msg: 0,
            tx: true,
            offset: 0,
            len: 8192,
        },
    ));
    r0.push(ev(
        52,
        0,
        EventKind::VerifyMsgSend {
            req: 0,
            msg: 0,
            iter: 0,
            tid: 100,
        },
    ));
    let (s, r) = frame(60, 0, 1, 0, 0, 0, op::PART_RTS);
    r0.push(s);
    r1.push(r);
    r1.push(ev(
        70,
        1,
        EventKind::VerifyStreamRts {
            peer: 0,
            tx: false,
            stream: 7,
            total_len: 8192,
        },
    ));
    r1.push(ev(
        71,
        1,
        EventKind::VerifyStreamMsg {
            stream: 7,
            req: 3,
            msg: 0,
            tx: false,
            offset: 0,
            len: 8192,
        },
    ));
    r1.push(ev(
        72,
        1,
        EventKind::VerifyStreamCts {
            peer: 0,
            tx: true,
            stream: 7,
            epoch: 0,
        },
    ));
    let (s, r) = frame(80, 1, 0, 0, 0, 0, op::PART_CTS);
    r1.push(s);
    r0.push(r);

    // Payload on lane 1: two halves, the second replayed once by a
    // failover retry — the ledger commits it exactly once.
    r0.push(ev(
        100,
        0,
        EventKind::VerifyStreamData {
            peer: 1,
            lane: 1,
            tx: true,
            stream: 7,
            offset: 0,
            len: 4096,
        },
    ));
    let (s, r) = frame(101, 0, 1, 1, 0, 0, op::PART_DATA);
    r0.push(s);
    r1.push(r);
    r1.push(ev(
        110,
        1,
        EventKind::VerifyStreamData {
            peer: 0,
            lane: 1,
            tx: false,
            stream: 7,
            offset: 0,
            len: 4096,
        },
    ));
    r1.push(ev(
        111,
        1,
        EventKind::VerifyStreamCommit {
            peer: 0,
            lane: 1,
            stream: 7,
            lo: 0,
            len: 4096,
        },
    ));
    for (i, ts) in [(1u32, 120u64), (2, 140)].into_iter() {
        // Same second half twice: wire retry after failover.
        r0.push(ev(
            ts,
            0,
            EventKind::VerifyStreamData {
                peer: 1,
                lane: 1,
                tx: true,
                stream: 7,
                offset: 4096,
                len: 4096,
            },
        ));
        let (s, r) = frame(ts + 1, 0, 1, 1, 0, i, op::PART_DATA);
        r0.push(s);
        r1.push(r);
        r1.push(ev(
            ts + 10,
            1,
            EventKind::VerifyStreamData {
                peer: 0,
                lane: 1,
                tx: false,
                stream: 7,
                offset: 4096,
                len: 4096,
            },
        ));
    }
    // Only the first arrival was fresh.
    r1.push(ev(
        131,
        1,
        EventKind::VerifyStreamCommit {
            peer: 0,
            lane: 1,
            stream: 7,
            lo: 4096,
            len: 4096,
        },
    ));

    // Receiver completion: transport thread (tid 200) lands the
    // message, app thread (tid 201) probes and reads.
    r1.push(ev(
        150,
        1,
        EventKind::VerifyMsgRecv {
            req: 3,
            msg: 0,
            tid: 200,
            eager: false,
        },
    ));
    r1.push(ev(
        160,
        1,
        EventKind::VerifyParrived {
            req: 3,
            part: 0,
            iter: 0,
            tid: 201,
            arrived: true,
        },
    ));
    r1.push(ev(
        170,
        1,
        EventKind::VerifyRead {
            req: 3,
            part: 0,
            iter: 0,
            tid: 201,
            dur_ns: 5,
        },
    ));

    // Finalize: barrier (arrive to rank 0, release back), then Bye on
    // every lane.
    let (s, r) = frame(200, 1, 0, 0, 0, 1, op::BARRIER_ARRIVE);
    r1.push(s);
    r0.push(r);
    let (s, r) = frame(210, 0, 1, 0, 0, 1, op::BARRIER_RELEASE);
    r0.push(s);
    r1.push(r);
    let (s, r) = frame(220, 0, 1, 0, 0, 2, op::BYE);
    r0.push(s);
    r1.push(r);
    let (s, r) = frame(220, 0, 1, 1, 0, 3, op::BYE);
    r0.push(s);
    r1.push(r);
    let (s, r) = frame(221, 1, 0, 0, 0, 2, op::BYE);
    r1.push(s);
    r0.push(r);

    vec![ring(0, r0), ring(1, r1)]
}

#[test]
fn clean_streaming_run_audits_clean() {
    let report = audit(&clean_run());
    assert!(report.is_clean(), "expected clean audit, got:\n{report}");
    assert_eq!(report.stats.ranks, 2);
    assert!(report.stats.matched_frames >= 8);
    assert_eq!(report.stats.streams, 1);
    // The failover replay was absorbed, not double-committed.
    assert_eq!(report.stats.replayed_bytes, 4096);
}

#[test]
fn reconnect_epoch_keeps_lanes_apart() {
    // Frames before and after a lane-0 reconnect live in different
    // epochs; ordinal matching must not mix them even though the
    // post-reconnect ordinals restart relative order.
    let mut r0 = Vec::new();
    let mut r1 = Vec::new();
    let (s, r) = frame(10, 0, 1, 0, 0, 0, op::HEARTBEAT);
    r0.push(s);
    r1.push(r);
    // Epoch 0 loses a frame in flight (sent, never received).
    r0.push(ev(
        20,
        0,
        EventKind::VerifyWireSend {
            peer: 1,
            lane: 0,
            op: op::HEARTBEAT as u16,
            epoch: 0,
            seq: 1,
        },
    ));
    // Epoch 1 resumes with fresh ordinals on both sides.
    let (s, r) = frame(30, 0, 1, 0, 1, 2, op::HEARTBEAT);
    r0.push(s);
    r1.push(r);
    let report = audit(&[ring(0, r0), ring(1, r1)]);
    assert!(report.is_clean(), "unexpected findings:\n{report}");
    assert_eq!(report.stats.unmatched_sends, 1);
    assert_eq!(report.stats.matched_frames, 2);
}

#[test]
fn planted_data_before_rts_is_flagged() {
    let r0 = vec![ev(
        10,
        0,
        EventKind::VerifyStreamData {
            peer: 1,
            lane: 1,
            tx: true,
            stream: 9,
            offset: 0,
            len: 1024,
        },
    )];
    // Receiver sees payload for stream 9 with no RTS anywhere.
    let r1 = vec![ev(
        20,
        1,
        EventKind::VerifyStreamData {
            peer: 0,
            lane: 1,
            tx: false,
            stream: 9,
            offset: 0,
            len: 1024,
        },
    )];
    let report = audit(&[ring(0, r0), ring(1, r1)]);
    assert_eq!(report.finding_count(), 1, "report:\n{report}");
    let f = &report.findings[0];
    assert_eq!(f.kind, AuditKind::DataBeforeRts);
    assert_eq!(f.rank, 1);
    assert_eq!(f.seq, 0);
    assert_eq!(f.peer, 0);
    assert_eq!(f.stream, Some(9));
}

#[test]
fn planted_overlapping_commit_is_flagged() {
    let r0 = vec![
        ev(
            10,
            0,
            EventKind::VerifyStreamRts {
                peer: 1,
                tx: true,
                stream: 5,
                total_len: 8192,
            },
        ),
        ev(
            20,
            0,
            EventKind::VerifyStreamData {
                peer: 1,
                lane: 1,
                tx: true,
                stream: 5,
                offset: 0,
                len: 4096,
            },
        ),
    ];
    let r1 = vec![
        ev(
            15,
            1,
            EventKind::VerifyStreamRts {
                peer: 0,
                tx: false,
                stream: 5,
                total_len: 8192,
            },
        ),
        ev(
            30,
            1,
            EventKind::VerifyStreamData {
                peer: 0,
                lane: 1,
                tx: false,
                stream: 5,
                offset: 0,
                len: 4096,
            },
        ),
        ev(
            31,
            1,
            EventKind::VerifyStreamCommit {
                peer: 0,
                lane: 1,
                stream: 5,
                lo: 0,
                len: 4096,
            },
        ),
        // claim_range must never re-commit bytes: [2048, 4096) is
        // already inside the first commit.
        ev(
            40,
            1,
            EventKind::VerifyStreamCommit {
                peer: 0,
                lane: 2,
                stream: 5,
                lo: 2048,
                len: 2048,
            },
        ),
    ];
    let report = audit(&[ring(0, r0), ring(1, r1)]);
    assert_eq!(report.finding_count(), 1, "report:\n{report}");
    let f = &report.findings[0];
    assert_eq!(f.kind, AuditKind::CommitOverlap);
    assert_eq!(f.rank, 1);
    assert_eq!(f.seq, 3);
    assert_eq!(f.stream, Some(5));
    assert!(f.detail.contains("[2048, 4096)"), "detail: {}", f.detail);
}

#[test]
fn planted_premature_lost_is_flagged() {
    let r0 = vec![
        ev(
            10,
            0,
            EventKind::VerifyStreamRts {
                peer: 1,
                tx: true,
                stream: 2,
                total_len: 4096,
            },
        ),
        ev(
            20,
            0,
            EventKind::VerifyStreamData {
                peer: 1,
                lane: 1,
                tx: true,
                stream: 2,
                offset: 0,
                len: 4096,
            },
        ),
        // Sender escalates MessageLost even though every byte landed.
        ev(
            50,
            0,
            EventKind::VerifyStreamLost {
                peer: 1,
                stream: 2,
                missing: 1024,
            },
        ),
    ];
    let r1 = vec![
        ev(
            15,
            1,
            EventKind::VerifyStreamRts {
                peer: 0,
                tx: false,
                stream: 2,
                total_len: 4096,
            },
        ),
        ev(
            30,
            1,
            EventKind::VerifyStreamData {
                peer: 0,
                lane: 1,
                tx: false,
                stream: 2,
                offset: 0,
                len: 4096,
            },
        ),
        ev(
            31,
            1,
            EventKind::VerifyStreamCommit {
                peer: 0,
                lane: 1,
                stream: 2,
                lo: 0,
                len: 4096,
            },
        ),
    ];
    let report = audit(&[ring(0, r0), ring(1, r1)]);
    assert_eq!(report.finding_count(), 1, "report:\n{report}");
    let f = &report.findings[0];
    assert_eq!(f.kind, AuditKind::PrematureLost);
    assert_eq!(f.rank, 0);
    assert_eq!(f.seq, 2);
    assert_eq!(f.stream, Some(2));
}

#[test]
fn planted_read_before_commit_race_is_flagged() {
    // Rank 1 reads partition 0 without ever probing parrived: the
    // transport's commit (TransferWrite at MsgRecv) and the user read
    // are unordered across the two processes.
    let r0 = vec![
        ev(
            10,
            0,
            EventKind::VerifyPartInit {
                req: 0,
                sender: true,
                parts: 1,
                msgs: 1,
            },
        ),
        ev(
            11,
            0,
            EventKind::VerifyLayoutMsg {
                req: 0,
                msg: 0,
                first_spart: 0,
                n_sparts: 1,
                first_rpart: 0,
                n_rparts: 1,
                bytes: 4096,
            },
        ),
        ev(
            20,
            0,
            EventKind::VerifyStreamRts {
                peer: 1,
                tx: true,
                stream: 4,
                total_len: 4096,
            },
        ),
        ev(
            21,
            0,
            EventKind::VerifyStreamMsg {
                stream: 4,
                req: 0,
                msg: 0,
                tx: true,
                offset: 0,
                len: 4096,
            },
        ),
        ev(
            30,
            0,
            EventKind::VerifyMsgSend {
                req: 0,
                msg: 0,
                iter: 0,
                tid: 100,
            },
        ),
    ];
    let r1 = vec![
        // Receiver interned the same context as req 6.
        ev(
            10,
            1,
            EventKind::VerifyPartInit {
                req: 6,
                sender: false,
                parts: 1,
                msgs: 1,
            },
        ),
        ev(
            11,
            1,
            EventKind::VerifyLayoutMsg {
                req: 6,
                msg: 0,
                first_spart: 0,
                n_sparts: 1,
                first_rpart: 0,
                n_rparts: 1,
                bytes: 4096,
            },
        ),
        ev(
            40,
            1,
            EventKind::VerifyStreamRts {
                peer: 0,
                tx: false,
                stream: 4,
                total_len: 4096,
            },
        ),
        ev(
            41,
            1,
            EventKind::VerifyStreamMsg {
                stream: 4,
                req: 6,
                msg: 0,
                tx: false,
                offset: 0,
                len: 4096,
            },
        ),
        ev(
            50,
            1,
            EventKind::VerifyMsgRecv {
                req: 6,
                msg: 0,
                tid: 200,
                eager: true,
            },
        ),
        // No parrived probe before the read: unsynchronized.
        ev(
            60,
            1,
            EventKind::VerifyRead {
                req: 6,
                part: 0,
                iter: 0,
                tid: 201,
                dur_ns: 5,
            },
        ),
    ];
    let report = audit(&[ring(0, r0), ring(1, r1)]);
    assert!(report.findings.is_empty(), "report:\n{report}");
    assert_eq!(report.races.len(), 1, "report:\n{report}");
    let race = &report.races[0];
    assert_eq!(race.part, 0);
    // The race pairs the transport's write with the user's read, with
    // provenance on both sides.
    assert_eq!(race.first.rank, 1);
    assert_eq!(race.second.rank, 1);
    // Request ids were unified across the two processes: the sender's
    // req 0 and receiver's req 6 resolved to one global id (2 inits,
    // 2 layouts, send, recv, read — stream bookkeeping stays out).
    assert_eq!(report.stats.hb_events, 7);
}

#[test]
fn overflowed_ring_demotes_absence_findings() {
    // Same payload-without-RTS shape as the planted test, but the
    // receiver's ring overflowed: the auditor must stay silent rather
    // than accuse based on an incomplete record.
    let r1 = RankEvents {
        rank: 1,
        dropped: 12,
        events: vec![ev(
            20,
            1,
            EventKind::VerifyStreamData {
                peer: 0,
                lane: 1,
                tx: false,
                stream: 9,
                offset: 0,
                len: 1024,
            },
        )],
    };
    let report = audit(&[ring(0, vec![]), r1]);
    assert!(report.is_clean(), "report:\n{report}");
    assert_eq!(report.stats.dropped_events, 12);
}

#[test]
fn wire_op_mismatch_and_phantom_frames_are_flagged() {
    let mut r0 = Vec::new();
    let mut r1 = Vec::new();
    // Ordinal 0 disagrees on the op.
    r0.push(ev(
        10,
        0,
        EventKind::VerifyWireSend {
            peer: 1,
            lane: 0,
            op: op::EAGER as u16,
            epoch: 0,
            seq: 0,
        },
    ));
    r1.push(ev(
        15,
        1,
        EventKind::VerifyWireRecv {
            peer: 0,
            lane: 0,
            op: op::PUT as u16,
            epoch: 0,
            seq: 0,
        },
    ));
    // A second frame arrives that nobody sent.
    r1.push(ev(
        25,
        1,
        EventKind::VerifyWireRecv {
            peer: 0,
            lane: 0,
            op: op::EAGER as u16,
            epoch: 0,
            seq: 1,
        },
    ));
    let report = audit(&[ring(0, r0), ring(1, r1)]);
    let kinds: Vec<AuditKind> = report.findings.iter().map(|f| f.kind).collect();
    assert_eq!(
        kinds,
        vec![AuditKind::OpMismatch, AuditKind::RecvWithoutSend],
        "report:\n{report}"
    );
}
