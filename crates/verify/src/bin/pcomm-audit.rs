//! Audit the persisted per-rank `.events` rings of a multi-process run.
//!
//! ```text
//! pcomm-audit [--bench-json PATH] <rank0.events> <rank1.events> ...
//! ```
//!
//! Reads every `.events` sidecar (written next to the Chrome trace when
//! `PCOMM_TRACE` and `PCOMM_VERIFY=1` are set), merges them into one
//! global order, and runs the wire-FSM, stream-ledger, and
//! cross-process happens-before passes. The full report goes to
//! stdout.
//!
//! Exit status: 0 when the run audits clean, 1 when any finding
//! survived, 2 on usage or input errors. `--bench-json` additionally
//! writes `{"audit_wall_ms": ..., ...}` to the given path so CI can
//! fold audit cost into its benchmark records.

use std::process::ExitCode;
use std::time::Instant;

fn usage() -> ExitCode {
    eprintln!("usage: pcomm-audit [--bench-json PATH] <file.events>...");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut files: Vec<String> = Vec::new();
    let mut bench_json: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--bench-json" => match args.next() {
                Some(p) => bench_json = Some(p),
                None => return usage(),
            },
            "-h" | "--help" => {
                println!("usage: pcomm-audit [--bench-json PATH] <file.events>...");
                return ExitCode::SUCCESS;
            }
            _ => files.push(a),
        }
    }
    if files.is_empty() {
        return usage();
    }

    let start = Instant::now();
    let mut ranks = Vec::new();
    for f in &files {
        match pcomm_trace::read_events(std::path::Path::new(f)) {
            Ok(r) => ranks.push(r),
            Err(e) => {
                eprintln!("pcomm-audit: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let report = pcomm_verify::audit(&ranks);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    print!("{report}");

    if let Some(path) = bench_json {
        let json = format!(
            "{{\"audit_wall_ms\": {wall_ms:.3}, \"files\": {}, \"events\": {}, \"findings\": {}}}\n",
            files.len(),
            report.stats.events,
            report.finding_count(),
        );
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("pcomm-audit: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
