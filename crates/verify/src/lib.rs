//! `pcomm-verify`: offline correctness analyses over a captured pcomm
//! trace.
//!
//! The runtime (and the simulator) can record analysis-grade `Verify*`
//! events — buffer read/write spans, `pready`/transfer/`parrived` sync
//! edges, wire-message send/recv pairs, blocked-wait edges — when
//! verification is enabled (`Trace::ring_verify`, `PCOMM_VERIFY=1`, or
//! the simulator's `enable_verify`). This crate consumes that stream
//! with three passes:
//!
//! 1. [vector-clock happens-before race detection](mod@hb) — two
//!    accesses to the same partition, at least one a write, with no
//!    synchronization edge ordering them;
//! 2. [wait-for-graph deadlock analysis](mod@waitgraph) — cycles among
//!    blocked ranks are true deadlocks, acyclic blocked ranks are
//!    orphan waits (lost message / missing `pready`);
//! 3. [protocol lints](mod@lints) — MPI-4 partitioned rules checked per
//!    request lifetime (`pready` exactly once per partition per
//!    `start`, layout compatibility between the sides, no unsynchronized
//!    mid-iteration buffer access, balanced `start`/`wait`).
//!
//! The entry point is [`analyze`]; everything it finds comes back in a
//! [`VerifyReport`] whose `Display` renders a human-readable digest and
//! whose typed findings carry full provenance (rank, thread, partition,
//! iteration, and the index of the source event in the input slice).
//!
//! The crate is std-only and depends only on `pcomm-trace`, so both the
//! real runtime and the simulator can feed it without cycles.

use std::fmt;

use pcomm_trace::Event;

mod audit;
mod hb;
mod lints;
mod model;
mod waitgraph;

pub use audit::{audit, AuditFinding, AuditKind, AuditReport, AuditStats};

pub use model::Side;

/// What kind of memory access a race endpoint was.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// User code writing a send partition (`write_partition`).
    UserWrite,
    /// User code reading a recv partition (`partition` /
    /// `read_partition`).
    UserRead,
    /// The transfer reading send partitions (eager copy at injection,
    /// or the zero-copy rendezvous read at match time).
    TransferRead,
    /// The transfer writing recv partitions when a wire message lands.
    TransferWrite,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccessKind::UserWrite => "user write",
            AccessKind::UserRead => "user read",
            AccessKind::TransferRead => "transfer read",
            AccessKind::TransferWrite => "transfer write",
        };
        write!(f, "{s}")
    }
}

/// One endpoint of a reported race, with full provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessInfo {
    /// What the access was.
    pub kind: AccessKind,
    /// Rank the access is attributed to.
    pub rank: u16,
    /// Executing thread (verify tid; the rank in the simulator).
    pub tid: u16,
    /// Partition accessed.
    pub part: u32,
    /// Iteration the access belongs to (0 for transfer writes, which
    /// carry no counter).
    pub iter: u32,
    /// Index of the source event in the slice passed to [`analyze`].
    pub seq: usize,
    /// Timestamp of the source event, ns since trace epoch.
    pub ts_ns: u64,
}

/// An unsynchronized conflicting pair of accesses to one partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceFinding {
    /// Request id (low 16 bits of the partitioned context, identical on
    /// both ranks).
    pub req: u16,
    /// Which buffer: the send side's or the recv side's.
    pub side: Side,
    /// Partition both endpoints touch.
    pub part: u32,
    /// The earlier recorded access.
    pub first: AccessInfo,
    /// The access that exposed the race.
    pub second: AccessInfo,
}

impl fmt::Display for RaceFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "race on req {} {} buffer partition {}: {} (rank {} tid {} iter {} seq {}) \
             unordered with {} (rank {} tid {} iter {} seq {})",
            self.req,
            self.side,
            self.part,
            self.first.kind,
            self.first.rank,
            self.first.tid,
            self.first.iter,
            self.first.seq,
            self.second.kind,
            self.second.rank,
            self.second.tid,
            self.second.iter,
            self.second.seq,
        )
    }
}

/// One edge of the wait-for graph: a blocked rank and the peer it
/// depends on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaitEdge {
    /// The blocked rank.
    pub from_rank: u16,
    /// The peer the wait depends on, when known.
    pub to_rank: Option<u16>,
    /// The tag involved, when known.
    pub tag: Option<i64>,
    /// Index of the source `VerifyBlocked` event.
    pub seq: usize,
}

/// The deadlock pass's verdict on a stalled run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeadlockFinding {
    /// A cycle in the wait-for graph: a true deadlock no timeout would
    /// have resolved. The edges list the tag chain forming the cycle.
    Cycle {
        /// The wait edges forming the cycle, in order.
        edges: Vec<WaitEdge>,
    },
    /// A blocked rank on no cycle: its peer is not stuck on it, so the
    /// awaited message simply never came (lost message, missing
    /// `pready`, or a peer that exited early).
    Orphan {
        /// The blocked rank.
        rank: u16,
        /// The peer it was waiting on, when known.
        peer: Option<u16>,
        /// The tag it was waiting on, when known.
        tag: Option<i64>,
        /// Index of the source `VerifyBlocked` event.
        seq: usize,
    },
}

impl fmt::Display for DeadlockFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeadlockFinding::Cycle { edges } => {
                write!(f, "deadlock cycle:")?;
                for e in edges {
                    let tag = e.tag.map_or("?".to_string(), |t| t.to_string());
                    let to = e.to_rank.map_or("?".to_string(), |r| r.to_string());
                    write!(f, " rank {} -(tag {})-> rank {};", e.from_rank, tag, to)?;
                }
                Ok(())
            }
            DeadlockFinding::Orphan {
                rank, peer, tag, ..
            } => {
                let tag = tag.map_or("?".to_string(), |t| t.to_string());
                let peer = peer.map_or("?".to_string(), |r| r.to_string());
                write!(
                    f,
                    "orphan wait: rank {rank} blocked on rank {peer} tag {tag} \
                     which is not blocked on it (lost message or missing pready)"
                )
            }
        }
    }
}

/// The protocol rule a lint finding violates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintKind {
    /// A partition was `pready`'d more than once in one iteration.
    DoublePready,
    /// An iteration reached `wait` with a partition never `pready`'d.
    MissingPready,
    /// A `pready` with no active iteration.
    PreadyOutsideIteration,
    /// A send partition written after its `pready` this iteration.
    WriteAfterPready,
    /// A recv partition read mid-iteration with no `parrived == true`
    /// probe first.
    ReadBeforeArrival,
    /// `start`/`wait` calls do not pair up.
    UnbalancedStartWait,
    /// The two sides negotiated incompatible wire-message layouts.
    LayoutMismatch,
}

impl fmt::Display for LintKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LintKind::DoublePready => "double-pready",
            LintKind::MissingPready => "missing-pready",
            LintKind::PreadyOutsideIteration => "pready-outside-iteration",
            LintKind::WriteAfterPready => "write-after-pready",
            LintKind::ReadBeforeArrival => "read-before-arrival",
            LintKind::UnbalancedStartWait => "unbalanced-start-wait",
            LintKind::LayoutMismatch => "layout-mismatch",
        };
        write!(f, "{s}")
    }
}

/// One protocol-rule violation with provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintFinding {
    /// Request id.
    pub req: u16,
    /// The violated rule.
    pub kind: LintKind,
    /// Rank of the offending event.
    pub rank: u16,
    /// Thread of the offending event.
    pub tid: u16,
    /// Iteration the violation belongs to.
    pub iter: u32,
    /// Partition involved, when the rule is per-partition.
    pub part: Option<u32>,
    /// Index of the source event in the input slice.
    pub seq: usize,
    /// Human-readable specifics.
    pub detail: String,
}

impl fmt::Display for LintFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] req {} rank {} tid {} seq {}: {}",
            self.kind, self.req, self.rank, self.tid, self.seq, self.detail
        )
    }
}

/// Input statistics, mostly for sanity-checking that verification was
/// actually enabled for the run being analyzed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VerifyStats {
    /// Events in the analyzed slice (any kind).
    pub total_events: usize,
    /// Verify-grade events among them.
    pub verify_events: usize,
    /// Distinct partitioned requests observed.
    pub requests: usize,
}

/// Everything the three passes found, plus input statistics.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct VerifyReport {
    /// Happens-before races.
    pub races: Vec<RaceFinding>,
    /// Deadlock cycles and orphan waits.
    pub deadlocks: Vec<DeadlockFinding>,
    /// Protocol-rule violations.
    pub lints: Vec<LintFinding>,
    /// Input statistics.
    pub stats: VerifyStats,
}

impl VerifyReport {
    /// No findings of any kind.
    pub fn is_clean(&self) -> bool {
        self.races.is_empty() && self.deadlocks.is_empty() && self.lints.is_empty()
    }

    /// Total findings across the three passes.
    pub fn finding_count(&self) -> usize {
        self.races.len() + self.deadlocks.len() + self.lints.len()
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "pcomm-verify: {} findings over {} verify events ({} total, {} requests)",
            self.finding_count(),
            self.stats.verify_events,
            self.stats.total_events,
            self.stats.requests,
        )?;
        for r in &self.races {
            writeln!(f, "  {r}")?;
        }
        for d in &self.deadlocks {
            writeln!(f, "  {d}")?;
        }
        for l in &self.lints {
            writeln!(f, "  {l}")?;
        }
        if self.is_clean() {
            writeln!(f, "  clean: no races, deadlocks, or protocol violations")?;
        }
        Ok(())
    }
}

/// Run all three passes over a captured event stream.
///
/// The slice is typically `TraceData::events` from a run with
/// verification enabled; non-verify events are ignored, so mixed traces
/// are fine. Findings reference input positions via their `seq` fields.
pub fn analyze(events: &[Event]) -> VerifyReport {
    let model = model::Model::build(events);
    let stats = VerifyStats {
        total_events: model.total_events,
        verify_events: model.events.len(),
        requests: model.requests.len(),
    };
    VerifyReport {
        races: hb::detect_races(&model),
        deadlocks: waitgraph::analyze_waits(&model),
        lints: lints::run_lints(&model),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcomm_trace::EventKind;

    #[test]
    fn empty_trace_is_clean() {
        let report = analyze(&[]);
        assert!(report.is_clean());
        assert_eq!(report.finding_count(), 0);
        assert!(format!("{report}").contains("clean"));
    }

    #[test]
    fn non_verify_events_are_ignored() {
        let events = vec![Event {
            ts_ns: 0,
            rank: 0,
            kind: EventKind::Pready { part: 3 },
        }];
        let report = analyze(&events);
        assert!(report.is_clean());
        assert_eq!(report.stats.total_events, 1);
        assert_eq!(report.stats.verify_events, 0);
    }

    #[test]
    fn report_display_lists_findings() {
        let events = vec![
            Event {
                ts_ns: 0,
                rank: 0,
                kind: EventKind::VerifyBlocked {
                    peer: Some(1),
                    tag: Some(7),
                },
            },
            Event {
                ts_ns: 0,
                rank: 1,
                kind: EventKind::VerifyBlocked {
                    peer: Some(0),
                    tag: Some(8),
                },
            },
        ];
        let report = analyze(&events);
        assert_eq!(report.deadlocks.len(), 1);
        let text = format!("{report}");
        assert!(text.contains("deadlock cycle"), "{text}");
        assert!(text.contains("tag 7"), "{text}");
    }
}
