//! Wait-for-graph deadlock analysis.
//!
//! The chaos watchdog (PR 3) can only say "nothing moved for N ms" and
//! dump who is blocked. This pass turns that heuristic `StallReport`
//! into an exact verdict: at stall time the supervisor emits one
//! `VerifyBlocked` edge per blocked wait (rank → peer it depends on,
//! with the tag when known). Cycles in that graph are true deadlocks —
//! every rank on the cycle waits for the next, so no timeout, however
//! generous, would have helped. Blocked ranks that reach no cycle are
//! *orphan* waits: the peer they depend on is not itself stuck on them,
//! so the message simply never came (lost message, missing `pready`, or
//! a peer that exited early).

use std::collections::BTreeMap;

use pcomm_trace::EventKind;

use crate::model::Model;
use crate::{DeadlockFinding, WaitEdge};

pub(crate) fn analyze_waits(model: &Model) -> Vec<DeadlockFinding> {
    // rank -> outgoing edges (peer, tag, seq). A rank can block on
    // several peers at once (multi-message wait): any cycle through any
    // edge is a deadlock.
    let mut edges: BTreeMap<u16, Vec<WaitEdge>> = BTreeMap::new();
    for e in &model.events {
        if let EventKind::VerifyBlocked { peer, tag } = e.ev.kind {
            edges.entry(e.ev.rank).or_default().push(WaitEdge {
                from_rank: e.ev.rank,
                to_rank: peer,
                tag,
                seq: e.seq,
            });
        }
    }
    if edges.is_empty() {
        return Vec::new();
    }

    let mut findings = Vec::new();
    let mut on_cycle: Vec<u16> = Vec::new();

    // The graph is tiny (one node per blocked rank), so a simple DFS per
    // start node is plenty. Each cycle is reported once, keyed by its
    // smallest rank.
    let ranks: Vec<u16> = edges.keys().copied().collect();
    let mut seen_cycles: Vec<Vec<u16>> = Vec::new();
    for &start in &ranks {
        let mut path: Vec<WaitEdge> = Vec::new();
        if let Some(cycle) = dfs(start, start, &edges, &mut path, 0) {
            let mut key: Vec<u16> = cycle.iter().map(|e| e.from_rank).collect();
            key.sort_unstable();
            if !seen_cycles.contains(&key) {
                seen_cycles.push(key.clone());
                on_cycle.extend(key);
                findings.push(DeadlockFinding::Cycle { edges: cycle });
            }
        }
    }

    // Everything blocked but on no cycle is an orphan wait.
    for (rank, out) in &edges {
        if on_cycle.contains(rank) {
            continue;
        }
        for e in out {
            findings.push(DeadlockFinding::Orphan {
                rank: *rank,
                peer: e.to_rank,
                tag: e.tag,
                seq: e.seq,
            });
        }
    }
    findings
}

/// DFS from `at` looking for a path back to `target`. Returns the edge
/// chain of the first cycle found.
fn dfs(
    at: u16,
    target: u16,
    edges: &BTreeMap<u16, Vec<WaitEdge>>,
    path: &mut Vec<WaitEdge>,
    depth: usize,
) -> Option<Vec<WaitEdge>> {
    if depth > edges.len() {
        return None; // longest simple cycle visits each rank once
    }
    for e in edges.get(&at).into_iter().flatten() {
        let Some(next) = e.to_rank else { continue };
        path.push(e.clone());
        if next == target {
            let cycle = path.clone();
            path.pop();
            return Some(cycle);
        }
        if !path
            .iter()
            .take(path.len() - 1)
            .any(|p| p.from_rank == next)
        {
            if let Some(c) = dfs(next, target, edges, path, depth + 1) {
                path.pop();
                return Some(c);
            }
        }
        path.pop();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcomm_trace::Event;

    fn blocked(rank: u16, peer: Option<u16>, tag: Option<i64>) -> Event {
        Event {
            ts_ns: 100,
            rank,
            kind: EventKind::VerifyBlocked { peer, tag },
        }
    }

    #[test]
    fn two_rank_cycle_is_a_deadlock() {
        let events = vec![blocked(0, Some(1), Some(7)), blocked(1, Some(0), Some(9))];
        let model = Model::build(&events);
        let findings = analyze_waits(&model);
        assert_eq!(findings.len(), 1, "{findings:?}");
        match &findings[0] {
            DeadlockFinding::Cycle { edges } => {
                assert_eq!(edges.len(), 2);
                let tags: Vec<_> = edges.iter().map(|e| e.tag).collect();
                assert!(tags.contains(&Some(7)) && tags.contains(&Some(9)));
            }
            other => panic!("expected cycle, got {other:?}"),
        }
    }

    #[test]
    fn orphan_wait_is_not_a_cycle() {
        // Rank 0 waits on rank 1, which is not blocked at all: the
        // message was lost, not deadlocked.
        let events = vec![blocked(0, Some(1), Some(3))];
        let model = Model::build(&events);
        let findings = analyze_waits(&model);
        assert_eq!(findings.len(), 1);
        assert!(
            matches!(
                findings[0],
                DeadlockFinding::Orphan {
                    rank: 0,
                    peer: Some(1),
                    tag: Some(3),
                    ..
                }
            ),
            "{findings:?}"
        );
    }

    #[test]
    fn three_rank_ring_reports_one_cycle() {
        let events = vec![
            blocked(0, Some(1), None),
            blocked(1, Some(2), None),
            blocked(2, Some(0), None),
        ];
        let findings = analyze_waits(&Model::build(&events));
        assert_eq!(findings.len(), 1);
        match &findings[0] {
            DeadlockFinding::Cycle { edges } => assert_eq!(edges.len(), 3),
            other => panic!("expected cycle, got {other:?}"),
        }
    }

    #[test]
    fn unknown_peer_cannot_form_a_cycle() {
        let events = vec![blocked(0, None, Some(1)), blocked(1, None, Some(2))];
        let findings = analyze_waits(&Model::build(&events));
        assert_eq!(findings.len(), 2);
        assert!(findings
            .iter()
            .all(|f| matches!(f, DeadlockFinding::Orphan { peer: None, .. })));
    }
}
