//! Vector-clock happens-before race detection.
//!
//! Each verify event that carries a `tid` belongs to one thread of
//! execution (the global `pcomm_trace::current_tid()` id in the real
//! runtime, the rank in the simulator). Threads advance their own clock
//! component per event; the synchronization edges the runtime actually
//! provides are mirrored as clock joins:
//!
//! * `start` → every later event of the same request side (the
//!   `started` flag's release/acquire pair);
//! * `write(p)` → `pready(p)` (partition-state release/acquire);
//! * `pready(p)` → the send of the wire message covering `p` (the
//!   ready-counter `fetch_add`);
//! * k-th `MsgSend(req, m)` → k-th `MsgRecv(req, m)` (per-channel FIFO
//!   delivery through the fabric);
//! * `MsgRecv(req, m)` → any `parrived == true` probe of a partition `m`
//!   covers (the arrival `Completion`'s release/acquire);
//! * `MsgRecv(req, *)` → receiver `wait` (futex completion wake);
//! * `MsgSend(req, *)` → sender `wait`, and additionally
//!   `MsgRecv(req, m)` → sender `wait` for non-eager messages (a
//!   rendezvous sender blocks until the receiver's copy drains its
//!   buffer; an eager send detached at injection time).
//!
//! Buffer accesses are then checked pairwise per `(request, side,
//! partition)` cell: user writes and transfer reads on the send buffer,
//! transfer writes and user reads on the recv buffer. Two accesses with
//! at least one write that are not ordered by the edges above are a
//! race, reported with full provenance on both sides.

use std::collections::{BTreeMap, HashMap, VecDeque};

use pcomm_trace::EventKind;

use crate::model::{Model, Side};
use crate::{AccessInfo, AccessKind, RaceFinding};

/// A vector clock: one logical-time component per thread.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct Clock(Vec<u32>);

impl Clock {
    fn join(&mut self, other: &Clock) {
        if other.0.len() > self.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (s, o) in self.0.iter_mut().zip(other.0.iter()) {
            *s = (*s).max(*o);
        }
    }

    fn inc(&mut self, t: usize) {
        if t >= self.0.len() {
            self.0.resize(t + 1, 0);
        }
        self.0[t] += 1;
    }

    fn get(&self, t: usize) -> u32 {
        self.0.get(t).copied().unwrap_or(0)
    }
}

/// One recorded buffer access with its clock snapshot.
#[derive(Debug, Clone)]
struct Access {
    thread: usize,
    clock: Clock,
    info: AccessInfo,
}

impl Access {
    fn is_write(&self) -> bool {
        matches!(
            self.info.kind,
            AccessKind::UserWrite | AccessKind::TransferWrite
        )
    }

    /// Did this access happen-before the current state of `clock`?
    fn ordered_before(&self, clock: &Clock) -> bool {
        self.clock.get(self.thread) <= clock.get(self.thread)
    }
}

/// Per-location state: the classic last-write + reads-since frontier.
#[derive(Default)]
struct Cell {
    last_write: Option<Access>,
    reads: Vec<Access>,
}

pub(crate) fn detect_races(model: &Model) -> Vec<RaceFinding> {
    let mut threads: HashMap<u16, usize> = HashMap::new();
    let mut clocks: Vec<Clock> = Vec::new();
    // Release stores keyed by the synchronizing object.
    let mut start_clock: HashMap<(u16, Side), Clock> = HashMap::new();
    let mut part_release: HashMap<(u16, u32), Clock> = HashMap::new();
    let mut msg_release: HashMap<(u16, u16), Clock> = HashMap::new();
    let mut sent_release: HashMap<u16, Clock> = HashMap::new();
    let mut chan: HashMap<(u16, u16), VecDeque<Clock>> = HashMap::new();
    let mut recv_done: HashMap<(u16, u16), (Clock, bool)> = HashMap::new();
    // Access cells keyed by (req, buffer side, partition).
    let mut cells: BTreeMap<(u16, Side, u32), Cell> = BTreeMap::new();
    let mut races: Vec<RaceFinding> = Vec::new();

    let mut thread_of = |tid: u16, clocks: &mut Vec<Clock>| -> usize {
        let n = threads.len();
        let t = *threads.entry(tid).or_insert(n);
        if t >= clocks.len() {
            clocks.resize(t + 1, Clock::default());
        }
        t
    };

    for e in &model.events {
        let tid = match verify_tid(&e.ev.kind) {
            Some(t) => t,
            None => continue, // VerifyBlocked etc.: no thread, no clock
        };
        let t = thread_of(tid, &mut clocks);
        clocks[t].inc(t);

        let record = |clocks: &[Clock],
                      races: &mut Vec<RaceFinding>,
                      cells: &mut BTreeMap<(u16, Side, u32), Cell>,
                      req: u16,
                      side: Side,
                      part: u32,
                      kind: AccessKind,
                      iter: u32| {
            let access = Access {
                thread: t,
                clock: clocks[t].clone(),
                info: AccessInfo {
                    kind,
                    rank: e.ev.rank,
                    tid,
                    part,
                    iter,
                    seq: e.seq,
                    ts_ns: e.ev.ts_ns,
                },
            };
            let cell = cells.entry((req, side, part)).or_default();
            let mut conflict: Option<&Access> = None;
            if let Some(w) = &cell.last_write {
                if !w.ordered_before(&clocks[t]) {
                    conflict = Some(w);
                }
            }
            if conflict.is_none() && access.is_write() {
                conflict = cell.reads.iter().find(|r| !r.ordered_before(&clocks[t]));
            }
            if let Some(prior) = conflict {
                races.push(RaceFinding {
                    req,
                    side,
                    part,
                    first: prior.info.clone(),
                    second: access.info.clone(),
                });
            }
            if access.is_write() {
                cell.last_write = Some(access);
                cell.reads.clear();
            } else {
                cell.reads.push(access);
            }
        };

        match e.ev.kind {
            EventKind::VerifyStart { req, sender, .. } => {
                start_clock.insert((req, Side::from_sender(sender)), clocks[t].clone());
            }
            EventKind::VerifyWrite {
                req, part, iter, ..
            } => {
                if let Some(c) = start_clock.get(&(req, Side::Send)) {
                    let c = c.clone();
                    clocks[t].join(&c);
                }
                record(
                    &clocks,
                    &mut races,
                    &mut cells,
                    req,
                    Side::Send,
                    part,
                    AccessKind::UserWrite,
                    iter,
                );
                part_release.insert((req, part), clocks[t].clone());
            }
            EventKind::VerifyPready { req, part, .. } => {
                for c in [
                    start_clock.get(&(req, Side::Send)).cloned(),
                    part_release.get(&(req, part)).cloned(),
                ]
                .into_iter()
                .flatten()
                {
                    clocks[t].join(&c);
                }
                if let Some(info) = model.requests.get(&req) {
                    if let Some(m) = info.msg_of_spart(part) {
                        msg_release.entry((req, m)).or_default().join(&clocks[t]);
                    }
                }
            }
            EventKind::VerifyMsgSend { req, msg, iter, .. } => {
                for c in [
                    start_clock.get(&(req, Side::Send)).cloned(),
                    msg_release.get(&(req, msg)).cloned(),
                ]
                .into_iter()
                .flatten()
                {
                    clocks[t].join(&c);
                }
                // The injection reads every send partition the message
                // covers (eager copies now; a rendezvous hands the range
                // to the fabric, which reads it at match time — modeled
                // again at the recv).
                if let Some(info) = model.requests.get(&req) {
                    for p in info.sparts_of_msg(msg) {
                        record(
                            &clocks,
                            &mut races,
                            &mut cells,
                            req,
                            Side::Send,
                            p,
                            AccessKind::TransferRead,
                            iter,
                        );
                    }
                }
                chan.entry((req, msg))
                    .or_default()
                    .push_back(clocks[t].clone());
                sent_release.entry(req).or_default().join(&clocks[t]);
            }
            EventKind::VerifyMsgRecv {
                req, msg, eager, ..
            } => {
                for c in [
                    start_clock.get(&(req, Side::Recv)).cloned(),
                    chan.get_mut(&(req, msg)).and_then(|q| q.pop_front()),
                ]
                .into_iter()
                .flatten()
                {
                    clocks[t].join(&c);
                }
                if let Some(info) = model.requests.get(&req) {
                    let iter = 0; // recv copy has no iteration counter
                    for p in info.rparts_of_msg(msg) {
                        record(
                            &clocks,
                            &mut races,
                            &mut cells,
                            req,
                            Side::Recv,
                            p,
                            AccessKind::TransferWrite,
                            iter,
                        );
                    }
                    if !eager {
                        // Zero-copy path: the match-time copy reads the
                        // sender's partitions directly.
                        for p in info.sparts_of_msg(msg) {
                            record(
                                &clocks,
                                &mut races,
                                &mut cells,
                                req,
                                Side::Send,
                                p,
                                AccessKind::TransferRead,
                                iter,
                            );
                        }
                    }
                }
                recv_done.insert((req, msg), (clocks[t].clone(), eager));
            }
            EventKind::VerifyParrived {
                req,
                part,
                arrived: true,
                ..
            } => {
                let m = model
                    .requests
                    .get(&req)
                    .and_then(|info| info.msg_of_rpart(part));
                if let Some((c, _)) = m.and_then(|m| recv_done.get(&(req, m))) {
                    let c = c.clone();
                    clocks[t].join(&c);
                }
            }
            EventKind::VerifyRead {
                req, part, iter, ..
            } => {
                record(
                    &clocks,
                    &mut races,
                    &mut cells,
                    req,
                    Side::Recv,
                    part,
                    AccessKind::UserRead,
                    iter,
                );
            }
            EventKind::VerifyWaitDone { req, sender, .. } => {
                let joins: Vec<Clock> = recv_done
                    .iter()
                    .filter(|((r, _), (_, eager))| *r == req && (!sender || !eager))
                    .map(|(_, (c, _))| c.clone())
                    .collect();
                for c in joins {
                    clocks[t].join(&c);
                }
                if sender {
                    if let Some(c) = sent_release.get(&req).cloned() {
                        clocks[t].join(&c);
                    }
                }
            }
            _ => {}
        }
    }
    races
}

/// The thread id a verify event executes on, when it has one.
fn verify_tid(kind: &EventKind) -> Option<u16> {
    match *kind {
        EventKind::VerifyStart { tid, .. }
        | EventKind::VerifyPready { tid, .. }
        | EventKind::VerifyWrite { tid, .. }
        | EventKind::VerifyRead { tid, .. }
        | EventKind::VerifyMsgSend { tid, .. }
        | EventKind::VerifyMsgRecv { tid, .. }
        | EventKind::VerifyParrived { tid, .. }
        | EventKind::VerifyWaitDone { tid, .. } => Some(tid),
        // Init events run before any concurrency exists; give them the
        // emitting rank's identity so they advance some clock.
        EventKind::VerifyPartInit { .. } | EventKind::VerifyLayoutMsg { .. } => None,
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcomm_trace::Event;

    fn ev(ts_ns: u64, rank: u16, kind: EventKind) -> Event {
        Event { ts_ns, rank, kind }
    }

    /// A minimal 1-partition, 1-message request preamble.
    fn preamble(req: u16) -> Vec<Event> {
        vec![
            ev(
                0,
                0,
                EventKind::VerifyPartInit {
                    req,
                    sender: true,
                    parts: 1,
                    msgs: 1,
                },
            ),
            ev(
                1,
                0,
                EventKind::VerifyLayoutMsg {
                    req,
                    msg: 0,
                    first_spart: 0,
                    n_sparts: 1,
                    first_rpart: 0,
                    n_rparts: 1,
                    bytes: 8,
                },
            ),
        ]
    }

    #[test]
    fn ordered_write_then_send_is_clean() {
        let req = 3;
        let mut events = preamble(req);
        events.extend([
            ev(
                10,
                0,
                EventKind::VerifyStart {
                    req,
                    sender: true,
                    iter: 0,
                    tid: 1,
                },
            ),
            ev(
                11,
                0,
                EventKind::VerifyWrite {
                    req,
                    part: 0,
                    iter: 0,
                    tid: 1,
                    dur_ns: 5,
                },
            ),
            ev(
                12,
                0,
                EventKind::VerifyPready {
                    req,
                    part: 0,
                    iter: 0,
                    tid: 1,
                },
            ),
            ev(
                13,
                0,
                EventKind::VerifyMsgSend {
                    req,
                    msg: 0,
                    iter: 0,
                    tid: 1,
                },
            ),
        ]);
        let model = Model::build(&events);
        assert!(detect_races(&model).is_empty());
    }

    #[test]
    fn cross_thread_pready_edge_orders_the_transfer_read() {
        // Thread 2 writes+preadys partition 0; thread 1 issues the send.
        // The pready release edge must order write(t2) before read(t1).
        let req = 4;
        let mut events = preamble(req);
        events.extend([
            ev(
                10,
                0,
                EventKind::VerifyStart {
                    req,
                    sender: true,
                    iter: 0,
                    tid: 1,
                },
            ),
            ev(
                11,
                0,
                EventKind::VerifyWrite {
                    req,
                    part: 0,
                    iter: 0,
                    tid: 2,
                    dur_ns: 5,
                },
            ),
            ev(
                12,
                0,
                EventKind::VerifyPready {
                    req,
                    part: 0,
                    iter: 0,
                    tid: 2,
                },
            ),
            ev(
                13,
                0,
                EventKind::VerifyMsgSend {
                    req,
                    msg: 0,
                    iter: 0,
                    tid: 1,
                },
            ),
        ]);
        let model = Model::build(&events);
        assert!(detect_races(&model).is_empty());
    }

    #[test]
    fn write_after_pready_races_with_the_transfer_read() {
        // The planted bug of the fixture suite: partition 0 is written
        // again from another thread after its pready released it.
        let req = 5;
        let mut events = preamble(req);
        events.extend([
            ev(
                10,
                0,
                EventKind::VerifyStart {
                    req,
                    sender: true,
                    iter: 0,
                    tid: 1,
                },
            ),
            ev(
                11,
                0,
                EventKind::VerifyWrite {
                    req,
                    part: 0,
                    iter: 0,
                    tid: 1,
                    dur_ns: 5,
                },
            ),
            ev(
                12,
                0,
                EventKind::VerifyPready {
                    req,
                    part: 0,
                    iter: 0,
                    tid: 1,
                },
            ),
            // Racy late write from a worker thread, unordered with the
            // transfer below.
            ev(
                13,
                0,
                EventKind::VerifyWrite {
                    req,
                    part: 0,
                    iter: 0,
                    tid: 7,
                    dur_ns: 5,
                },
            ),
            ev(
                14,
                0,
                EventKind::VerifyMsgSend {
                    req,
                    msg: 0,
                    iter: 0,
                    tid: 1,
                },
            ),
        ]);
        let model = Model::build(&events);
        let races = detect_races(&model);
        // Two findings: the late write is unordered with the earlier
        // write AND with the transfer's read of the partition.
        assert_eq!(races.len(), 2, "{races:?}");
        assert!(races.iter().all(|r| r.part == 0 && r.side == Side::Send));
        let vs_transfer = races
            .iter()
            .find(|r| r.second.kind == AccessKind::TransferRead)
            .expect("write vs transfer-read race");
        assert_eq!(vs_transfer.first.tid, 7);
        assert_eq!(vs_transfer.first.kind, AccessKind::UserWrite);
    }

    #[test]
    fn recv_read_after_parrived_true_is_clean_but_unprobed_read_races() {
        let req = 6;
        let mk = |with_probe: bool| {
            let mut events = preamble(req);
            events.extend([
                ev(
                    10,
                    1,
                    EventKind::VerifyStart {
                        req,
                        sender: false,
                        iter: 0,
                        tid: 11,
                    },
                ),
                // Transfer write performed by the sender's thread.
                ev(
                    20,
                    1,
                    EventKind::VerifyMsgRecv {
                        req,
                        msg: 0,
                        tid: 3,
                        eager: true,
                    },
                ),
            ]);
            if with_probe {
                events.push(ev(
                    21,
                    1,
                    EventKind::VerifyParrived {
                        req,
                        part: 0,
                        iter: 0,
                        tid: 11,
                        arrived: true,
                    },
                ));
            }
            events.push(ev(
                22,
                1,
                EventKind::VerifyRead {
                    req,
                    part: 0,
                    iter: 0,
                    tid: 11,
                    dur_ns: 2,
                },
            ));
            events
        };
        let clean = detect_races(&Model::build(&mk(true)));
        assert!(clean.is_empty(), "{clean:?}");
        let racy = detect_races(&Model::build(&mk(false)));
        assert_eq!(racy.len(), 1);
        assert_eq!(racy[0].side, Side::Recv);
        assert_eq!(racy[0].second.kind, AccessKind::UserRead);
    }
}
