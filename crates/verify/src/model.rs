//! Decode a raw event stream into the analysis model.
//!
//! The three passes share one view of the trace: events sorted by
//! timestamp (stably, so per-thread ring order breaks ties), a dense
//! thread table keyed by the verify `tid`, and per-request metadata
//! recovered from the `VerifyPartInit` / `VerifyLayoutMsg` events both
//! sides emit at init time. Everything downstream indexes into the
//! *original* event slice via [`Ev::seq`], so findings can point back at
//! the exact source event.

use std::collections::BTreeMap;

use pcomm_trace::{Event, EventKind};

/// One event plus its index in the caller's slice (the provenance `seq`).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Ev {
    /// Index into the slice passed to [`analyze`](crate::analyze).
    pub seq: usize,
    /// The event itself.
    pub ev: Event,
}

/// Which side of a partitioned request a buffer or event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Side {
    /// The `psend` side (user writes, transfer reads).
    Send,
    /// The `precv` side (transfer writes, user reads).
    Recv,
}

impl Side {
    pub(crate) fn from_sender(sender: bool) -> Side {
        if sender {
            Side::Send
        } else {
            Side::Recv
        }
    }
}

impl std::fmt::Display for Side {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Side::Send => write!(f, "send"),
            Side::Recv => write!(f, "recv"),
        }
    }
}

/// One wire message of a request's negotiated layout, as reported by the
/// side that emitted the `VerifyLayoutMsg` event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct MsgSpec {
    pub first_spart: u16,
    pub n_sparts: u16,
    pub first_rpart: u16,
    pub n_rparts: u16,
    pub bytes: u64,
}

/// What one side declared about a request at init time.
#[derive(Debug, Clone, Default)]
pub(crate) struct SideInit {
    /// Rank that emitted the init.
    pub rank: u16,
    /// Partition count on this side.
    pub parts: u32,
    /// Wire message count this side negotiated.
    pub msgs: u32,
    /// Per-message layout, indexed by message id.
    pub layout: Vec<Option<MsgSpec>>,
    /// Seq of the `VerifyPartInit` event (provenance).
    pub seq: usize,
}

/// Everything recovered about one partitioned request id.
#[derive(Debug, Clone, Default)]
pub(crate) struct RequestInfo {
    pub send: Option<SideInit>,
    pub recv: Option<SideInit>,
}

impl RequestInfo {
    fn side_mut(&mut self, side: Side) -> &mut Option<SideInit> {
        match side {
            Side::Send => &mut self.send,
            Side::Recv => &mut self.recv,
        }
    }

    fn best_layout(&self) -> Option<&SideInit> {
        self.send.as_ref().or(self.recv.as_ref())
    }

    /// Wire message covering send partition `p`, per the recovered
    /// layout. `None` when no layout was captured for the request.
    pub fn msg_of_spart(&self, p: u32) -> Option<u16> {
        let init = self.best_layout()?;
        msg_of(init, p, |m| (m.first_spart, m.n_sparts))
    }

    /// Wire message covering recv partition `p`.
    pub fn msg_of_rpart(&self, p: u32) -> Option<u16> {
        let init = self.recv.as_ref().or(self.send.as_ref())?;
        msg_of(init, p, |m| (m.first_rpart, m.n_rparts))
    }

    /// Send partitions covered by wire message `m` (empty without layout).
    pub fn sparts_of_msg(&self, m: u16) -> std::ops::Range<u32> {
        parts_of(self.best_layout(), m, |s| (s.first_spart, s.n_sparts))
    }

    /// Recv partitions covered by wire message `m`.
    pub fn rparts_of_msg(&self, m: u16) -> std::ops::Range<u32> {
        parts_of(self.recv.as_ref().or(self.send.as_ref()), m, |s| {
            (s.first_rpart, s.n_rparts)
        })
    }
}

fn msg_of(init: &SideInit, p: u32, pick: impl Fn(&MsgSpec) -> (u16, u16)) -> Option<u16> {
    for (m, spec) in init.layout.iter().enumerate() {
        if let Some(spec) = spec {
            let (first, n) = pick(spec);
            if p >= first as u32 && p < first as u32 + n as u32 {
                return Some(m as u16);
            }
        }
    }
    None
}

fn parts_of(
    init: Option<&SideInit>,
    m: u16,
    pick: impl Fn(&MsgSpec) -> (u16, u16),
) -> std::ops::Range<u32> {
    match init.and_then(|i| i.layout.get(m as usize)).and_then(|s| *s) {
        Some(spec) => {
            let (first, n) = pick(&spec);
            first as u32..first as u32 + n as u32
        }
        None => 0..0,
    }
}

/// The shared, decoded view of a trace.
pub(crate) struct Model {
    /// Verify events (only), stably sorted by timestamp, with original
    /// slice indices attached.
    pub events: Vec<Ev>,
    /// Per-request metadata keyed by the 16-bit request id.
    pub requests: BTreeMap<u16, RequestInfo>,
    /// Total events in the input slice (verify or not).
    pub total_events: usize,
}

impl Model {
    pub fn build(events: &[Event]) -> Model {
        let mut verify: Vec<Ev> = events
            .iter()
            .enumerate()
            .filter(|(_, e)| e.kind.is_verify())
            .map(|(seq, ev)| Ev { seq, ev: *ev })
            .collect();
        // Stable: equal timestamps keep slice order, which preserves each
        // thread ring's program order.
        verify.sort_by_key(|e| e.ev.ts_ns);

        let mut requests: BTreeMap<u16, RequestInfo> = BTreeMap::new();
        for e in &verify {
            match e.ev.kind {
                EventKind::VerifyPartInit {
                    req,
                    sender,
                    parts,
                    msgs,
                } => {
                    let info = requests.entry(req).or_default();
                    let slot = info.side_mut(Side::from_sender(sender));
                    if slot.is_none() {
                        *slot = Some(SideInit {
                            rank: e.ev.rank,
                            parts,
                            msgs,
                            layout: vec![None; msgs as usize],
                            seq: e.seq,
                        });
                    }
                }
                EventKind::VerifyLayoutMsg {
                    req,
                    msg,
                    first_spart,
                    n_sparts,
                    first_rpart,
                    n_rparts,
                    bytes,
                } => {
                    let info = requests.entry(req).or_default();
                    // Layout events follow their side's PartInit in ring
                    // order; attribute to whichever side init came from
                    // this rank and still has the slot empty.
                    let spec = MsgSpec {
                        first_spart,
                        n_sparts,
                        first_rpart,
                        n_rparts,
                        bytes,
                    };
                    for side in [Side::Send, Side::Recv] {
                        if let Some(init) = info.side_mut(side).as_mut() {
                            if init.rank == e.ev.rank {
                                if let Some(slot) = init.layout.get_mut(msg as usize) {
                                    if slot.is_none() {
                                        *slot = Some(spec);
                                    }
                                }
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        Model {
            events: verify,
            requests,
            total_events: events.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts_ns: u64, rank: u16, kind: EventKind) -> Event {
        Event { ts_ns, rank, kind }
    }

    #[test]
    fn model_recovers_layout_from_init_events() {
        let events = vec![
            ev(
                0,
                0,
                EventKind::VerifyPartInit {
                    req: 7,
                    sender: true,
                    parts: 4,
                    msgs: 2,
                },
            ),
            ev(
                1,
                0,
                EventKind::VerifyLayoutMsg {
                    req: 7,
                    msg: 0,
                    first_spart: 0,
                    n_sparts: 2,
                    first_rpart: 0,
                    n_rparts: 4,
                    bytes: 128,
                },
            ),
            ev(
                2,
                0,
                EventKind::VerifyLayoutMsg {
                    req: 7,
                    msg: 1,
                    first_spart: 2,
                    n_sparts: 2,
                    first_rpart: 4,
                    n_rparts: 4,
                    bytes: 128,
                },
            ),
            // A non-verify event must be ignored.
            ev(3, 0, EventKind::Pready { part: 0 }),
        ];
        let m = Model::build(&events);
        assert_eq!(m.events.len(), 3);
        let info = &m.requests[&7];
        assert_eq!(info.send.as_ref().unwrap().parts, 4);
        assert_eq!(info.msg_of_spart(1), Some(0));
        assert_eq!(info.msg_of_spart(3), Some(1));
        assert_eq!(info.msg_of_rpart(5), Some(1));
        assert_eq!(info.sparts_of_msg(1), 2..4);
        assert_eq!(info.rparts_of_msg(0), 0..4);
        assert_eq!(info.msg_of_spart(99), None);
    }

    #[test]
    fn both_sides_layouts_are_kept_separate() {
        let mk = |rank, sender| {
            ev(
                0,
                rank,
                EventKind::VerifyPartInit {
                    req: 1,
                    sender,
                    parts: 8,
                    msgs: 1,
                },
            )
        };
        let events = vec![
            mk(0, true),
            mk(1, false),
            ev(
                1,
                1,
                EventKind::VerifyLayoutMsg {
                    req: 1,
                    msg: 0,
                    first_spart: 0,
                    n_sparts: 8,
                    first_rpart: 0,
                    n_rparts: 8,
                    bytes: 64,
                },
            ),
        ];
        let m = Model::build(&events);
        let info = &m.requests[&1];
        assert!(info.send.as_ref().unwrap().layout[0].is_none());
        assert!(info.recv.as_ref().unwrap().layout[0].is_some());
    }
}
