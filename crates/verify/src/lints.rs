//! Protocol lints: MPI-4 partitioned-communication rules checked
//! per request lifetime, deterministically (no clocks involved).
//!
//! * every send partition must be `pready`'d **exactly once** per
//!   `start` — a double `pready` and a partition never readied are both
//!   reported;
//! * `psend_init` / `precv_init` layouts must agree: same wire-message
//!   count and byte-identical per-message specs (gcd negotiation makes
//!   the *partition counts* compatible by construction, but differing
//!   aggregation bounds or a legacy/improved mismatch diverge here);
//! * no buffer access while the request is active without the
//!   corresponding readiness edge: a send-partition write after its
//!   `pready`, or a recv-partition read with no prior
//!   `parrived == true` probe this iteration;
//! * `start` / `wait` must balance — a request started but never waited
//!   is reported, as is a `pready` outside any active iteration.

use std::collections::BTreeMap;

use pcomm_trace::EventKind;

use crate::model::{Model, Side};
use crate::{LintFinding, LintKind};

/// Per-(request, side) lifecycle state while scanning the stream.
#[derive(Default)]
struct LifeState {
    active: bool,
    iter: u32,
    starts: u64,
    waits: u64,
    /// pready count per partition, this iteration (send side).
    preadys: BTreeMap<u32, u32>,
    /// partitions with an observed `parrived == true`, this iteration.
    arrived: Vec<u32>,
    /// seq of the last `start` (provenance for unbalanced reports).
    start_seq: usize,
    start_rank: u16,
    start_tid: u16,
}

pub(crate) fn run_lints(model: &Model) -> Vec<LintFinding> {
    let mut lints: Vec<LintFinding> = Vec::new();
    let mut life: BTreeMap<(u16, Side), LifeState> = BTreeMap::new();

    for e in &model.events {
        match e.ev.kind {
            EventKind::VerifyStart {
                req,
                sender,
                iter,
                tid,
            } => {
                let st = life.entry((req, Side::from_sender(sender))).or_default();
                if st.active {
                    lints.push(LintFinding {
                        req,
                        kind: LintKind::UnbalancedStartWait,
                        rank: e.ev.rank,
                        tid,
                        iter,
                        part: None,
                        seq: e.seq,
                        detail: format!(
                            "{} start #{iter} while iteration {} still active (no wait between)",
                            Side::from_sender(sender),
                            st.iter
                        ),
                    });
                }
                st.active = true;
                st.iter = iter;
                st.starts += 1;
                st.preadys.clear();
                st.arrived.clear();
                st.start_seq = e.seq;
                st.start_rank = e.ev.rank;
                st.start_tid = tid;
            }
            EventKind::VerifyPready {
                req,
                part,
                iter,
                tid,
            } => {
                let st = life.entry((req, Side::Send)).or_default();
                if !st.active {
                    lints.push(LintFinding {
                        req,
                        kind: LintKind::PreadyOutsideIteration,
                        rank: e.ev.rank,
                        tid,
                        iter,
                        part: Some(part),
                        seq: e.seq,
                        detail: format!("pready({part}) with no active iteration"),
                    });
                    continue;
                }
                let n = st.preadys.entry(part).or_insert(0);
                *n += 1;
                if *n == 2 {
                    lints.push(LintFinding {
                        req,
                        kind: LintKind::DoublePready,
                        rank: e.ev.rank,
                        tid,
                        iter,
                        part: Some(part),
                        seq: e.seq,
                        detail: format!("partition {part} pready'd twice in iteration {iter}"),
                    });
                }
            }
            EventKind::VerifyWrite {
                req,
                part,
                iter,
                tid,
                ..
            } => {
                let st = life.entry((req, Side::Send)).or_default();
                if st.active && st.preadys.get(&part).copied().unwrap_or(0) > 0 {
                    lints.push(LintFinding {
                        req,
                        kind: LintKind::WriteAfterPready,
                        rank: e.ev.rank,
                        tid,
                        iter,
                        part: Some(part),
                        seq: e.seq,
                        detail: format!(
                            "partition {part} written after its pready in iteration {iter} \
                             — the transfer may already be reading it"
                        ),
                    });
                }
            }
            EventKind::VerifyParrived {
                req,
                part,
                arrived: true,
                ..
            } => {
                let st = life.entry((req, Side::Recv)).or_default();
                if st.active {
                    // Arrival covers the whole wire message, not just the
                    // probed partition.
                    let covered: Vec<u32> = model
                        .requests
                        .get(&req)
                        .and_then(|i| i.msg_of_rpart(part).map(|m| i.rparts_of_msg(m)))
                        .map(|r| r.collect())
                        .unwrap_or_else(|| vec![part]);
                    for p in covered {
                        if !st.arrived.contains(&p) {
                            st.arrived.push(p);
                        }
                    }
                }
            }
            EventKind::VerifyRead {
                req,
                part,
                iter,
                tid,
                ..
            } => {
                let st = life.entry((req, Side::Recv)).or_default();
                if st.active && !st.arrived.contains(&part) {
                    lints.push(LintFinding {
                        req,
                        kind: LintKind::ReadBeforeArrival,
                        rank: e.ev.rank,
                        tid,
                        iter,
                        part: Some(part),
                        seq: e.seq,
                        detail: format!(
                            "partition {part} read mid-iteration {iter} without a \
                             prior parrived=true probe"
                        ),
                    });
                }
            }
            EventKind::VerifyWaitDone {
                req,
                sender,
                iter,
                tid,
            } => {
                let side = Side::from_sender(sender);
                let st = life.entry((req, side)).or_default();
                st.waits += 1;
                if sender && st.active {
                    // End of a send iteration: every partition must have
                    // been readied exactly once. Doubles were reported on
                    // the spot; misses are only knowable here.
                    let parts = model
                        .requests
                        .get(&req)
                        .and_then(|i| i.send.as_ref())
                        .map(|s| s.parts)
                        .unwrap_or(0);
                    for p in 0..parts {
                        if st.preadys.get(&p).copied().unwrap_or(0) == 0 {
                            lints.push(LintFinding {
                                req,
                                kind: LintKind::MissingPready,
                                rank: e.ev.rank,
                                tid,
                                iter,
                                part: Some(p),
                                seq: e.seq,
                                detail: format!(
                                    "iteration {iter} waited with partition {p} never pready'd"
                                ),
                            });
                        }
                    }
                }
                if !st.active {
                    lints.push(LintFinding {
                        req,
                        kind: LintKind::UnbalancedStartWait,
                        rank: e.ev.rank,
                        tid,
                        iter,
                        part: None,
                        seq: e.seq,
                        detail: format!("{side} wait with no active iteration"),
                    });
                }
                st.active = false;
            }
            _ => {}
        }
    }

    // Trailing unbalance: a request left mid-iteration at end of trace.
    for ((req, side), st) in &life {
        if st.active {
            lints.push(LintFinding {
                req: *req,
                kind: LintKind::UnbalancedStartWait,
                rank: st.start_rank,
                tid: st.start_tid,
                iter: st.iter,
                part: None,
                seq: st.start_seq,
                detail: format!(
                    "{side} iteration {} started but never waited ({} starts, {} waits)",
                    st.iter, st.starts, st.waits
                ),
            });
        }
    }

    // Layout compatibility: both sides present, specs must agree.
    for (req, info) in &model.requests {
        let (Some(s), Some(r)) = (&info.send, &info.recv) else {
            continue;
        };
        if s.msgs != r.msgs {
            lints.push(LintFinding {
                req: *req,
                kind: LintKind::LayoutMismatch,
                rank: s.rank,
                tid: 0,
                iter: 0,
                part: None,
                seq: s.seq,
                detail: format!(
                    "sender negotiated {} wire messages, receiver {} — \
                     aggregation bounds or legacy flags differ between the sides",
                    s.msgs, r.msgs
                ),
            });
            continue;
        }
        for (m, (sm, rm)) in s.layout.iter().zip(r.layout.iter()).enumerate() {
            if let (Some(sm), Some(rm)) = (sm, rm) {
                if sm != rm {
                    lints.push(LintFinding {
                        req: *req,
                        kind: LintKind::LayoutMismatch,
                        rank: s.rank,
                        tid: 0,
                        iter: 0,
                        part: None,
                        seq: s.seq,
                        detail: format!(
                            "wire message {m} disagrees between the sides: \
                             sender {sm:?}, receiver {rm:?}"
                        ),
                    });
                }
            }
        }
    }
    lints
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcomm_trace::Event;

    fn ev(ts_ns: u64, rank: u16, kind: EventKind) -> Event {
        Event { ts_ns, rank, kind }
    }

    fn send_iter(req: u16, events: &mut Vec<Event>, ts: &mut u64, preadys: &[u32]) {
        let mut push = |k| {
            *ts += 1;
            events.push(ev(*ts, 0, k));
        };
        push(EventKind::VerifyStart {
            req,
            sender: true,
            iter: 0,
            tid: 1,
        });
        for &p in preadys {
            push(EventKind::VerifyPready {
                req,
                part: p,
                iter: 0,
                tid: 1,
            });
        }
        push(EventKind::VerifyWaitDone {
            req,
            sender: true,
            iter: 0,
            tid: 1,
        });
    }

    fn init(req: u16, parts: u32) -> Vec<Event> {
        vec![ev(
            0,
            0,
            EventKind::VerifyPartInit {
                req,
                sender: true,
                parts,
                msgs: 1,
            },
        )]
    }

    #[test]
    fn exactly_once_pready_is_clean() {
        let mut events = init(1, 2);
        let mut ts = 10;
        send_iter(1, &mut events, &mut ts, &[0, 1]);
        assert!(run_lints(&Model::build(&events)).is_empty());
    }

    #[test]
    fn double_and_missing_pready_are_flagged() {
        let mut events = init(1, 2);
        let mut ts = 10;
        send_iter(1, &mut events, &mut ts, &[0, 0]); // 0 twice, 1 never
        let lints = run_lints(&Model::build(&events));
        assert_eq!(lints.len(), 2, "{lints:?}");
        assert!(lints
            .iter()
            .any(|l| l.kind == LintKind::DoublePready && l.part == Some(0)));
        assert!(lints
            .iter()
            .any(|l| l.kind == LintKind::MissingPready && l.part == Some(1)));
    }

    #[test]
    fn start_without_wait_is_unbalanced() {
        let mut events = init(2, 1);
        events.push(ev(
            10,
            0,
            EventKind::VerifyStart {
                req: 2,
                sender: true,
                iter: 0,
                tid: 1,
            },
        ));
        let lints = run_lints(&Model::build(&events));
        assert_eq!(lints.len(), 1);
        assert_eq!(lints[0].kind, LintKind::UnbalancedStartWait);
    }

    #[test]
    fn layout_mismatch_between_sides_is_flagged() {
        let events = vec![
            ev(
                0,
                0,
                EventKind::VerifyPartInit {
                    req: 3,
                    sender: true,
                    parts: 8,
                    msgs: 4,
                },
            ),
            ev(
                1,
                1,
                EventKind::VerifyPartInit {
                    req: 3,
                    sender: false,
                    parts: 8,
                    msgs: 2,
                },
            ),
        ];
        let lints = run_lints(&Model::build(&events));
        assert_eq!(lints.len(), 1);
        assert_eq!(lints[0].kind, LintKind::LayoutMismatch);
        assert!(
            lints[0].detail.contains("4 wire messages"),
            "{}",
            lints[0].detail
        );
    }

    #[test]
    fn mid_iteration_read_requires_a_probe() {
        let req = 4;
        let base = |probed: bool| {
            let mut events = vec![ev(
                0,
                1,
                EventKind::VerifyPartInit {
                    req,
                    sender: false,
                    parts: 1,
                    msgs: 1,
                },
            )];
            events.push(ev(
                10,
                1,
                EventKind::VerifyStart {
                    req,
                    sender: false,
                    iter: 0,
                    tid: 2,
                },
            ));
            if probed {
                events.push(ev(
                    11,
                    1,
                    EventKind::VerifyParrived {
                        req,
                        part: 0,
                        iter: 0,
                        tid: 2,
                        arrived: true,
                    },
                ));
            }
            events.push(ev(
                12,
                1,
                EventKind::VerifyRead {
                    req,
                    part: 0,
                    iter: 0,
                    tid: 2,
                    dur_ns: 1,
                },
            ));
            events.push(ev(
                13,
                1,
                EventKind::VerifyWaitDone {
                    req,
                    sender: false,
                    iter: 0,
                    tid: 2,
                },
            ));
            events
        };
        assert!(run_lints(&Model::build(&base(true))).is_empty());
        let lints = run_lints(&Model::build(&base(false)));
        assert_eq!(lints.len(), 1);
        assert_eq!(lints[0].kind, LintKind::ReadBeforeArrival);
    }
}
