//! Cross-process trace auditing: merge per-rank `.events` rings into
//! one global view and prove the wire protocol behaved.
//!
//! A multi-process run leaves one analysis-grade ring per OS process
//! (see `pcomm_trace::persist`). Each ring is internally ordered but the
//! rings share no clock — every process timestamps against its own
//! `Instant` epoch — and verify request ids are interned first-seen per
//! process, so the same partitioned context can be "req 0" on the
//! sender and "req 3" on the receiver. [`audit`] reconstructs the global
//! picture in three passes:
//!
//! 1. **Wire FSM** — per directed `(sender, receiver, lane, epoch)`
//!    channel, the k-th `VerifyWireSend` is matched to the k-th
//!    `VerifyWireRecv` (sound because each lane epoch is one FIFO byte
//!    stream). Matched pairs must agree on the frame op; a recv with no
//!    send, a handshake `Hello` after establishment, any frame after
//!    `Bye`, and a `Bye` with no preceding barrier are findings.
//! 2. **Stream ledger** — per `(sender, stream)` partitioned stream:
//!    `PartData` only after the receiver saw `PartRts`, offsets inside
//!    the pinned stream, `PartCts` released at most once per reconnect
//!    epoch, commits pairwise disjoint and covered by bytes the sender
//!    actually put on the wire, and `MessageLost` only when the
//!    receiver's ledger really has a hole.
//! 3. **Cross-process happens-before** — wire send→recv pairs bound
//!    each rank's clock offset (send precedes recv in wall time, both
//!    directions), request ids are unified through the stream layout
//!    events both sides emit, thread ids are made globally unique, and
//!    the single merged stream goes through the same vector-clock race
//!    pass in-process verification uses — so a receiver-side read
//!    racing the commit that fills the buffer is caught across two OS
//!    processes.
//!
//! Rings overflow: a rank with `dropped > 0` holds only a suffix of
//! what happened, so every *absence*-based check (recv-without-send,
//! data-before-rts, commit coverage) is demoted to a statistic for
//! channels touching that rank. Presence-based checks (op mismatch on
//! matched frames, overlapping commits, premature loss) stay on.
//!
//! The fabric is invisible to all three passes by design. The `ipc`
//! transport (same-host shared segment) brackets its ring traffic with
//! the same `VerifyWire*`/`VerifyStream*` events the socket engine
//! emits, presenting itself as a single always-`lane 0`, always-
//! `epoch 0` channel per peer pair: an SPSC descriptor ring is one
//! FIFO stream (so ordinal matching holds exactly as for a socket) and
//! there is no reconnect (so the epoch never advances and the
//! one-CTS-per-epoch rule degenerates to one CTS per stream). Zero-copy
//! arena commits emit `VerifyStreamData`/`Commit` like any other range,
//! so the ledger invariants apply unchanged.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

use pcomm_net::frame::op;
use pcomm_trace::{Event, EventKind, RankEvents};

use crate::model::Model;
use crate::{hb, RaceFinding};

/// What a wire/ledger finding is about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditKind {
    /// A lane delivered more frames than its sender put on the wire.
    RecvWithoutSend,
    /// The k-th received frame's op differs from the k-th sent frame's.
    OpMismatch,
    /// A handshake `Hello` arrived on an established connection.
    StrayHello,
    /// A frame arrived after the lane's `Bye`.
    FrameAfterBye,
    /// Lane 0 said `Bye` before any barrier/abort traffic justified it.
    ByeBeforeBarrier,
    /// Stream payload arrived before the stream's `PartRts`.
    DataBeforeRts,
    /// Stream payload lies (partly) outside the pinned stream extent.
    DataBeyondStream,
    /// More than one `PartCts` released for a stream in one epoch.
    CtsReplayed,
    /// Two ledger commits overlap — `claim_range` double-committed.
    CommitOverlap,
    /// A ledger commit lies (partly) outside the pinned stream extent.
    CommitBeyondStream,
    /// A commit covers bytes the sender never put on the wire.
    CommitUncovered,
    /// `MessageLost` was raised for a stream whose ledger is complete.
    PrematureLost,
}

impl fmt::Display for AuditKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AuditKind::RecvWithoutSend => "recv-without-send",
            AuditKind::OpMismatch => "op-mismatch",
            AuditKind::StrayHello => "stray-hello",
            AuditKind::FrameAfterBye => "frame-after-bye",
            AuditKind::ByeBeforeBarrier => "bye-before-barrier",
            AuditKind::DataBeforeRts => "data-before-rts",
            AuditKind::DataBeyondStream => "data-beyond-stream",
            AuditKind::CtsReplayed => "cts-replayed",
            AuditKind::CommitOverlap => "commit-overlap",
            AuditKind::CommitBeyondStream => "commit-beyond-stream",
            AuditKind::CommitUncovered => "commit-uncovered",
            AuditKind::PrematureLost => "premature-lost",
        };
        f.write_str(s)
    }
}

/// One wire-FSM or ledger violation, anchored to the event that
/// exposed it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditFinding {
    /// What rule broke.
    pub kind: AuditKind,
    /// Rank whose ring holds the anchoring event.
    pub rank: u16,
    /// Index of that event in the rank's `.events` stream (provenance).
    pub seq: usize,
    /// The peer rank on the other end of the channel or stream.
    pub peer: u16,
    /// Stream id for ledger findings; `None` for pure wire findings.
    pub stream: Option<u32>,
    /// Human-readable specifics (lane, epoch, offsets, ops).
    pub detail: String,
}

impl fmt::Display for AuditFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] rank {} seq {}", self.kind, self.rank, self.seq)?;
        if let Some(s) = self.stream {
            write!(f, " stream {s}")?;
        }
        write!(f, " peer {}: {}", self.peer, self.detail)
    }
}

/// Merge statistics and demoted observations.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AuditStats {
    /// Rank rings merged.
    pub ranks: usize,
    /// Events across all rings.
    pub events: usize,
    /// Ring-overflow evictions across all rings (absence checks are
    /// suppressed on channels touching an overflowed rank).
    pub dropped_events: u64,
    /// Wire frames matched send↔recv by ordinal.
    pub matched_frames: usize,
    /// Frames sent (or enqueued to a dying socket) that never arrived —
    /// expected under chaos, so a statistic, never a finding.
    pub unmatched_sends: usize,
    /// Channels skipped for absence checks because a ring overflowed.
    pub skipped_channels: usize,
    /// Partitioned streams audited by the ledger pass.
    pub streams: usize,
    /// Stream bytes received more than once (failover replay the
    /// ledger absorbed idempotently).
    pub replayed_bytes: u64,
    /// Per-rank clock offsets (ns, relative to the lowest rank) derived
    /// from matched wire pairs.
    pub clock_offsets_ns: Vec<(u16, i64)>,
    /// Events fed to the merged happens-before pass.
    pub hb_events: usize,
}

/// Everything [`audit`] found.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// Wire-FSM and ledger violations.
    pub findings: Vec<AuditFinding>,
    /// Cross-process data races from the merged happens-before pass.
    pub races: Vec<RaceFinding>,
    /// Merge statistics.
    pub stats: AuditStats,
}

impl AuditReport {
    /// No findings of any kind.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.races.is_empty()
    }

    /// Total findings across both passes.
    pub fn finding_count(&self) -> usize {
        self.findings.len() + self.races.len()
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = &self.stats;
        writeln!(
            f,
            "pcomm-audit: {} findings over {} events from {} ranks \
             ({} frames matched, {} sends unmatched, {} streams, {} replayed bytes, {} dropped)",
            self.finding_count(),
            s.events,
            s.ranks,
            s.matched_frames,
            s.unmatched_sends,
            s.streams,
            s.replayed_bytes,
            s.dropped_events,
        )?;
        for (rank, off) in &s.clock_offsets_ns {
            writeln!(f, "  clock: rank {rank} offset {off} ns")?;
        }
        for v in &self.findings {
            writeln!(f, "  {v}")?;
        }
        for r in &self.races {
            writeln!(f, "  {r}")?;
        }
        if self.is_clean() {
            writeln!(
                f,
                "  clean: wire protocol, stream ledgers, and cross-process ordering hold"
            )?;
        }
        Ok(())
    }
}

/// One wire frame event, stripped to what the FSM needs.
#[derive(Debug, Clone, Copy)]
struct WireEv {
    /// Index in the owning rank's event stream.
    seq: usize,
    ts_ns: u64,
    op: u16,
    /// The on-wire ordinal counter (`tx_seq` / reader-local `rx_seq`).
    wseq: u32,
}

/// Directed lane-epoch channel: frames from `src` to `dst`.
type ChanKey = (u16, u16, u16, u32); // (src, dst, lane, epoch)

/// Half-open byte ranges with union/coverage arithmetic.
#[derive(Debug, Default, Clone)]
struct RangeSet {
    /// Disjoint, sorted `[lo, hi)` ranges.
    spans: Vec<(u64, u64)>,
}

impl RangeSet {
    fn insert(&mut self, lo: u64, hi: u64) {
        if lo >= hi {
            return;
        }
        self.spans.push((lo, hi));
        self.spans.sort_unstable();
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(self.spans.len());
        for &(lo, hi) in &self.spans {
            match merged.last_mut() {
                Some((_, mhi)) if lo <= *mhi => *mhi = (*mhi).max(hi),
                _ => merged.push((lo, hi)),
            }
        }
        self.spans = merged;
    }

    fn covers(&self, lo: u64, hi: u64) -> bool {
        if lo >= hi {
            return true;
        }
        self.spans.iter().any(|&(slo, shi)| slo <= lo && hi <= shi)
    }

    fn len(&self) -> u64 {
        self.spans.iter().map(|&(lo, hi)| hi - lo).sum()
    }
}

/// Everything the ledger pass gathers about one `(sender, stream)`.
#[derive(Debug, Default)]
struct StreamInfo {
    sender: u16,
    receiver: Option<u16>,
    /// `total_len` and provenance of the sender-side RTS.
    tx_rts: Option<(u64, usize)>,
    /// `total_len` and provenance of the receiver-side RTS.
    rx_rts: Option<(u64, usize)>,
    /// Bytes the sender put on the wire (possibly more than once).
    tx_ranges: RangeSet,
    /// Receiver-observed payload: `(offset, len, lane, seq)`.
    rx_data: Vec<(u64, u32, u16, usize)>,
    /// Ledger commits: `(lo, len, lane, seq)`.
    commits: Vec<(u64, u32, u16, usize)>,
    /// CTS releases on the receiver: `(epoch, seq)`.
    cts: Vec<(u32, usize)>,
    /// Sender-side `MessageLost` escalations: `(missing, seq)`.
    lost: Vec<(u64, usize)>,
}

impl StreamInfo {
    fn total_len(&self) -> Option<u64> {
        self.rx_rts.or(self.tx_rts).map(|(t, _)| t)
    }
}

/// Tiny union-find over dense node ids.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra.max(rb)] = ra.min(rb);
        }
    }
}

/// Audit a set of per-rank `.events` rings as one multi-process run.
///
/// Ranks may arrive in any order; each event's own `rank` field is the
/// authority for who did what. A clean report means the wire protocol's
/// state machines, every stream's byte ledger, and the cross-process
/// happens-before order all hold.
pub fn audit(ranks: &[RankEvents]) -> AuditReport {
    let mut findings: Vec<AuditFinding> = Vec::new();
    let mut stats = AuditStats {
        ranks: ranks.len(),
        events: ranks.iter().map(|r| r.events.len()).sum(),
        dropped_events: ranks.iter().map(|r| r.dropped).sum(),
        ..AuditStats::default()
    };
    // A rank absent from the input is treated as fully overflowed: no
    // absence-based claims can be made about what it did or didn't log.
    let dropped: HashMap<u16, u64> = ranks.iter().map(|r| (r.rank, r.dropped)).collect();
    let overflowed = |rank: u16| dropped.get(&rank).is_none_or(|d| *d > 0);

    // ---- Gather: wire channels, stream ledgers, abort evidence ----
    let mut sends: BTreeMap<ChanKey, Vec<WireEv>> = BTreeMap::new();
    let mut recvs: BTreeMap<ChanKey, Vec<WireEv>> = BTreeMap::new();
    let mut streams: BTreeMap<(u16, u32), StreamInfo> = BTreeMap::new();
    // Receiver-local map stream id -> sender rank, from rx-side RTS.
    // Ambiguous ids (two senders reusing one id toward one receiver)
    // are dropped from request unification rather than guessed.
    let mut rx_stream_src: HashMap<(u16, u32), Option<u16>> = HashMap::new();
    // Any abort/loss anywhere waives the bye-needs-barrier rule: an
    // aborting universe legitimately skips the finalize barrier.
    let mut abort_seen = false;

    for r in ranks {
        for (i, ev) in r.events.iter().enumerate() {
            match ev.kind {
                EventKind::VerifyWireSend {
                    peer,
                    lane,
                    op: fop,
                    epoch,
                    seq,
                } => {
                    abort_seen |= fop == op::ABORT as u16;
                    sends
                        .entry((ev.rank, peer, lane, epoch))
                        .or_default()
                        .push(WireEv {
                            seq: i,
                            ts_ns: ev.ts_ns,
                            op: fop,
                            wseq: seq,
                        });
                }
                EventKind::VerifyWireRecv {
                    peer,
                    lane,
                    op: fop,
                    epoch,
                    seq,
                } => {
                    abort_seen |= fop == op::ABORT as u16;
                    recvs
                        .entry((peer, ev.rank, lane, epoch))
                        .or_default()
                        .push(WireEv {
                            seq: i,
                            ts_ns: ev.ts_ns,
                            op: fop,
                            wseq: seq,
                        });
                }
                EventKind::VerifyStreamRts {
                    peer,
                    tx,
                    stream,
                    total_len,
                } => {
                    if tx {
                        let info = streams.entry((ev.rank, stream)).or_default();
                        info.sender = ev.rank;
                        info.receiver.get_or_insert(peer);
                        if info.tx_rts.is_none() {
                            info.tx_rts = Some((total_len, i));
                        }
                    } else {
                        let info = streams.entry((peer, stream)).or_default();
                        info.sender = peer;
                        info.receiver = Some(ev.rank);
                        if info.rx_rts.is_none() {
                            info.rx_rts = Some((total_len, i));
                        }
                        rx_stream_src
                            .entry((ev.rank, stream))
                            .and_modify(|s| {
                                if *s != Some(peer) {
                                    *s = None;
                                }
                            })
                            .or_insert(Some(peer));
                    }
                }
                EventKind::VerifyStreamData {
                    peer,
                    lane,
                    tx,
                    stream,
                    offset,
                    len,
                } => {
                    if tx {
                        let info = streams.entry((ev.rank, stream)).or_default();
                        info.sender = ev.rank;
                        info.tx_ranges.insert(offset, offset + len as u64);
                    } else {
                        let info = streams.entry((peer, stream)).or_default();
                        info.sender = peer;
                        info.receiver = Some(ev.rank);
                        info.rx_data.push((offset, len, lane, i));
                    }
                }
                EventKind::VerifyStreamCommit {
                    peer,
                    lane,
                    stream,
                    lo,
                    len,
                } => {
                    let info = streams.entry((peer, stream)).or_default();
                    info.sender = peer;
                    info.receiver = Some(ev.rank);
                    info.commits.push((lo, len, lane, i));
                }
                // The receiver releases CTS (tx=true on its side).
                EventKind::VerifyStreamCts {
                    peer,
                    tx: true,
                    stream,
                    epoch,
                } => {
                    let info = streams.entry((peer, stream)).or_default();
                    info.sender = peer;
                    info.receiver = Some(ev.rank);
                    info.cts.push((epoch, i));
                }
                EventKind::VerifyStreamCts { .. } => {}
                EventKind::VerifyStreamLost {
                    peer: _,
                    stream,
                    missing,
                } => {
                    abort_seen = true;
                    let info = streams.entry((ev.rank, stream)).or_default();
                    info.sender = ev.rank;
                    info.lost.push((missing, i));
                }
                _ => {}
            }
        }
    }

    // ---- Pass 1: wire-protocol FSM per channel ----
    let keys: BTreeSet<ChanKey> = sends.keys().chain(recvs.keys()).copied().collect();
    // Matched (ts_send, ts_recv) pairs per (src, dst) for clock bounds.
    let mut pairs: HashMap<(u16, u16), Vec<(u64, u64)>> = HashMap::new();
    for key in keys {
        let (src, dst, lane, epoch) = key;
        let empty: Vec<WireEv> = Vec::new();
        let mut tx = sends.get(&key).unwrap_or(&empty).clone();
        let mut rx = recvs.get(&key).unwrap_or(&empty).clone();
        tx.sort_by_key(|w| w.wseq);
        rx.sort_by_key(|w| w.wseq);
        let complete = !overflowed(src) && !overflowed(dst);
        if !complete {
            stats.skipped_channels += 1;
        }

        // Presence-based checks on the receiver's frame sequence.
        let mut bye_at: Option<usize> = None;
        for (i, w) in rx.iter().enumerate() {
            if w.op == op::HELLO as u16 {
                findings.push(AuditFinding {
                    kind: AuditKind::StrayHello,
                    rank: dst,
                    seq: w.seq,
                    peer: src,
                    stream: None,
                    detail: format!(
                        "handshake Hello on established lane {lane} epoch {epoch} (frame ordinal {})",
                        w.wseq
                    ),
                });
            }
            if let Some(b) = bye_at {
                findings.push(AuditFinding {
                    kind: AuditKind::FrameAfterBye,
                    rank: dst,
                    seq: w.seq,
                    peer: src,
                    stream: None,
                    detail: format!(
                        "{} frame after Bye (ordinal {}) on lane {lane} epoch {epoch}",
                        op::name(w.op as u8),
                        rx[b].wseq
                    ),
                });
            }
            if w.op == op::BYE as u16 && bye_at.is_none() {
                bye_at = Some(i);
            }
        }
        // Bye is only legitimate after finalize's barrier (or an
        // abort). Barrier frames flow rank<->0, so only those channel
        // directions can be held to it.
        if complete && !abort_seen && lane == 0 && (src == 0 || dst == 0) {
            if let Some(b) = bye_at {
                let justified = rx[..b].iter().any(|w| {
                    w.op == op::BARRIER_ARRIVE as u16
                        || w.op == op::BARRIER_RELEASE as u16
                        || w.op == op::ABORT as u16
                });
                if !justified {
                    findings.push(AuditFinding {
                        kind: AuditKind::ByeBeforeBarrier,
                        rank: dst,
                        seq: rx[b].seq,
                        peer: src,
                        stream: None,
                        detail: format!(
                            "Bye on lane 0 epoch {epoch} with no barrier or abort before it"
                        ),
                    });
                }
            }
        }

        // Ordinal matching: the k-th frame received over a lane epoch
        // IS the k-th frame sent into it (single FIFO byte stream).
        let n = tx.len().min(rx.len());
        stats.matched_frames += n;
        if complete {
            let p = pairs.entry((src, dst)).or_default();
            for i in 0..n {
                p.push((tx[i].ts_ns, rx[i].ts_ns));
            }
            for i in 0..n {
                if tx[i].op != rx[i].op {
                    findings.push(AuditFinding {
                        kind: AuditKind::OpMismatch,
                        rank: dst,
                        seq: rx[i].seq,
                        peer: src,
                        stream: None,
                        detail: format!(
                            "ordinal {i} on lane {lane} epoch {epoch}: sent {} but received {}",
                            op::name(tx[i].op as u8),
                            op::name(rx[i].op as u8)
                        ),
                    });
                }
            }
            if rx.len() > tx.len() {
                let extra = &rx[tx.len()];
                findings.push(AuditFinding {
                    kind: AuditKind::RecvWithoutSend,
                    rank: dst,
                    seq: extra.seq,
                    peer: src,
                    stream: None,
                    detail: format!(
                        "lane {lane} epoch {epoch} delivered {} frames but only {} were sent",
                        rx.len(),
                        tx.len()
                    ),
                });
            }
        }
        stats.unmatched_sends += tx.len().saturating_sub(rx.len());
    }

    // ---- Pass 2: stream ledger soundness ----
    stats.streams = streams.len();
    for ((sender, stream), info) in &streams {
        let receiver = info.receiver.unwrap_or(u16::MAX);
        let total = info.total_len();
        let mk = |kind, rank, seq, detail| AuditFinding {
            kind,
            rank,
            seq,
            peer: *sender,
            stream: Some(*stream),
            detail,
        };

        // PartData before PartRts, in the receiver's own ring order.
        if !info.rx_data.is_empty() && !overflowed(receiver) {
            let first = info
                .rx_data
                .iter()
                .min_by_key(|(_, _, _, seq)| *seq)
                .expect("non-empty");
            let rts_ok = info.rx_rts.is_some_and(|(_, rts_seq)| rts_seq < first.3);
            if !rts_ok {
                findings.push(mk(
                    AuditKind::DataBeforeRts,
                    receiver,
                    first.3,
                    format!(
                        "PartData [{}, {}) on lane {} arrived before any PartRts for the stream",
                        first.0,
                        first.0 + first.1 as u64,
                        first.2
                    ),
                ));
            }
        }

        // Payload and commits stay inside the pinned extent.
        if let Some(total) = total {
            for &(off, len, lane, seq) in &info.rx_data {
                if off + len as u64 > total {
                    findings.push(mk(
                        AuditKind::DataBeyondStream,
                        receiver,
                        seq,
                        format!(
                            "PartData [{off}, {}) on lane {lane} exceeds pinned stream of {total} bytes",
                            off + len as u64
                        ),
                    ));
                }
            }
            for &(lo, len, lane, seq) in &info.commits {
                if lo + len as u64 > total {
                    findings.push(mk(
                        AuditKind::CommitBeyondStream,
                        receiver,
                        seq,
                        format!(
                            "commit [{lo}, {}) on lane {lane} exceeds pinned stream of {total} bytes",
                            lo + len as u64
                        ),
                    ));
                }
            }
        }

        // CTS at most once per stream per reconnect epoch.
        let mut by_epoch: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
        for &(epoch, seq) in &info.cts {
            by_epoch.entry(epoch).or_default().push(seq);
        }
        for (epoch, seqs) in by_epoch {
            if seqs.len() > 1 {
                findings.push(mk(
                    AuditKind::CtsReplayed,
                    receiver,
                    seqs[1],
                    format!(
                        "PartCts released {} times in epoch {epoch} (exactly one allowed)",
                        seqs.len()
                    ),
                ));
            }
        }

        // Commits pairwise disjoint: claim_range must never hand the
        // same byte out twice, even across lanes and resync replays.
        let mut sorted: Vec<(u64, u32, u16, usize)> = info.commits.clone();
        sorted.sort_by_key(|&(lo, _, _, seq)| (lo, seq));
        for pair in sorted.windows(2) {
            let (alo, alen, alane, _aseq) = pair[0];
            let (blo, blen, blane, bseq) = pair[1];
            if blo < alo + alen as u64 {
                findings.push(mk(
                    AuditKind::CommitOverlap,
                    receiver,
                    bseq,
                    format!(
                        "commit [{blo}, {}) on lane {blane} overlaps committed [{alo}, {}) from lane {alane}",
                        blo + blen as u64,
                        alo + alen as u64
                    ),
                ));
            }
        }

        // Commits covered by what the sender put on the wire: bytes
        // can replay (failover) but cannot appear from nowhere.
        let mut committed = RangeSet::default();
        for &(lo, len, lane, seq) in &info.commits {
            committed.insert(lo, lo + len as u64);
            if !overflowed(*sender) && !info.tx_ranges.covers(lo, lo + len as u64) {
                findings.push(mk(
                    AuditKind::CommitUncovered,
                    receiver,
                    seq,
                    format!(
                        "commit [{lo}, {}) on lane {lane} includes bytes the sender never streamed",
                        lo + len as u64
                    ),
                ));
            }
        }

        // MessageLost is only sound when the ledger truly has a hole.
        for &(missing, seq) in &info.lost {
            if let Some(total) = total {
                if committed.covers(0, total) {
                    findings.push(mk(
                        AuditKind::PrematureLost,
                        *sender,
                        seq,
                        format!(
                            "MessageLost ({missing} bytes claimed missing) but the receiver committed all {total} bytes"
                        ),
                    ));
                }
            }
        }

        let rx_bytes: u64 = info.rx_data.iter().map(|&(_, len, _, _)| len as u64).sum();
        stats.replayed_bytes += rx_bytes.saturating_sub(committed.len());
    }

    // ---- Pass 3: merged happens-before over aligned clocks ----
    let offsets = clock_offsets(ranks, &pairs);
    stats.clock_offsets_ns = offsets.iter().map(|(rank, off)| (*rank, *off)).collect();
    let merged = merge_for_hb(ranks, &offsets, &rx_stream_src);
    stats.hb_events = merged.len();
    let races = hb::detect_races(&Model::build(&merged));

    AuditReport {
        findings,
        races,
        stats,
    }
}

/// Derive one clock offset per rank (ns added to its timestamps) such
/// that every matched wire frame's send precedes its recv, in both
/// directions, as physical causality guarantees. The lowest rank
/// anchors at 0; others follow by BFS over ranks that exchanged
/// frames, taking the midpoint of the feasible interval.
fn clock_offsets(
    ranks: &[RankEvents],
    pairs: &HashMap<(u16, u16), Vec<(u64, u64)>>,
) -> BTreeMap<u16, i64> {
    let mut offsets: BTreeMap<u16, i64> = BTreeMap::new();
    let all: BTreeSet<u16> = ranks.iter().map(|r| r.rank).collect();
    let Some(&root) = all.first() else {
        return offsets;
    };
    offsets.insert(root, 0);
    let mut frontier = vec![root];
    while let Some(a) = frontier.pop() {
        let off_a = offsets[&a];
        for &b in &all {
            if offsets.contains_key(&b) {
                continue;
            }
            // a -> b sends demand off_b >= ts_send + off_a - ts_recv;
            // b -> a sends demand off_b <= ts_recv + off_a - ts_send.
            let mut lo: Option<i64> = None;
            let mut hi: Option<i64> = None;
            if let Some(ps) = pairs.get(&(a, b)) {
                for &(ts_send, ts_recv) in ps {
                    let bound = ts_send as i64 + off_a - ts_recv as i64;
                    lo = Some(lo.map_or(bound, |l: i64| l.max(bound)));
                }
            }
            if let Some(ps) = pairs.get(&(b, a)) {
                for &(ts_send, ts_recv) in ps {
                    let bound = ts_recv as i64 + off_a - ts_send as i64;
                    hi = Some(hi.map_or(bound, |h: i64| h.min(bound)));
                }
            }
            let off_b = match (lo, hi) {
                (Some(lo), Some(hi)) => Some(lo + (hi - lo) / 2),
                (Some(lo), None) => Some(lo),
                (None, Some(hi)) => Some(hi),
                (None, None) => None, // no frames exchanged yet
            };
            if let Some(off_b) = off_b {
                offsets.insert(b, off_b);
                frontier.push(b);
            }
        }
    }
    // Ranks unreachable through any wire traffic fall back to 0.
    for &r in &all {
        offsets.entry(r).or_insert(0);
    }
    offsets
}

/// Build the merged, clock-aligned, globally-renamed event stream the
/// happens-before pass runs on.
///
/// Verify request ids are interned first-seen per process, so the same
/// partitioned context has different ids on each side. The
/// `VerifyStreamMsg` events both sides emit per stream message carry
/// their local id for the same `(stream, msg)` — union-find over those
/// correspondences yields global ids. Thread ids get the same
/// treatment (two processes both have a tid 0).
fn merge_for_hb(
    ranks: &[RankEvents],
    offsets: &BTreeMap<u16, i64>,
    rx_stream_src: &HashMap<(u16, u32), Option<u16>>,
) -> Vec<Event> {
    // Dense node ids for (rank, local req).
    let mut nodes: BTreeMap<(u16, u16), usize> = BTreeMap::new();
    let node_of = |rank: u16, req: u16, nodes: &mut BTreeMap<(u16, u16), usize>| {
        let n = nodes.len();
        *nodes.entry((rank, req)).or_insert(n)
    };
    // (sender, stream, msg) -> req node on each side.
    let mut side_req: HashMap<(u16, u32, u16), [Option<usize>; 2]> = HashMap::new();
    for r in ranks {
        for ev in &r.events {
            if let EventKind::VerifyStreamMsg {
                stream,
                req,
                msg,
                tx,
                ..
            } = ev.kind
            {
                // Stream identity is (sender, stream): the tx side IS
                // the sender; the rx side learned its sender from the
                // stream's RTS. An id two peers reused toward the same
                // receiver is ambiguous — skip unification, never guess.
                let (sender, side) = if tx {
                    (ev.rank, 0usize)
                } else {
                    match rx_stream_src.get(&(ev.rank, stream)) {
                        Some(Some(src)) => (*src, 1usize),
                        _ => continue,
                    }
                };
                let node = node_of(ev.rank, req, &mut nodes);
                side_req.entry((sender, stream, msg)).or_default()[side] = Some(node);
            }
        }
    }
    let mut uf = UnionFind::new(nodes.len());
    for sides in side_req.values() {
        if let [Some(a), Some(b)] = sides {
            uf.union(*a, *b);
        }
    }
    // Canonical roots -> dense global req ids.
    let mut global_req: HashMap<(u16, u16), u16> = HashMap::new();
    let mut root_ids: HashMap<usize, u16> = HashMap::new();
    let node_list: Vec<((u16, u16), usize)> = nodes.iter().map(|(k, v)| (*k, *v)).collect();
    for ((rank, req), node) in node_list {
        let root = uf.find(node);
        let n = root_ids.len() as u16;
        let id = *root_ids.entry(root).or_insert(n);
        global_req.insert((rank, req), id);
    }
    let mut next_req = root_ids.len() as u16;
    // Globally unique tids.
    let mut global_tid: HashMap<(u16, u16), u16> = HashMap::new();

    let mut merged: Vec<Event> = Vec::new();
    for r in ranks {
        let off = offsets.get(&r.rank).copied().unwrap_or(0);
        for ev in &r.events {
            let Some(kind) = remap_kind(
                &ev.kind,
                |req| {
                    *global_req.entry((ev.rank, req)).or_insert_with(|| {
                        let id = next_req;
                        next_req = next_req.wrapping_add(1);
                        id
                    })
                },
                |tid| {
                    let n = global_tid.len() as u16;
                    *global_tid.entry((ev.rank, tid)).or_insert(n)
                },
            ) else {
                continue;
            };
            let mut out = *ev;
            out.kind = kind;
            out.ts_ns = (ev.ts_ns as i64 + off).max(0) as u64;
            merged.push(out);
        }
    }
    // Stable by aligned timestamp: rank-major concatenation means ties
    // keep each ring's program order.
    merged.sort_by_key(|e| e.ts_ns);
    merged
}

/// Rewrite a verify event's request and thread ids into the global
/// namespaces. Returns `None` for kinds the happens-before pass does
/// not consume — wire/stream bookkeeping stays out of the merge.
fn remap_kind(
    kind: &EventKind,
    mut req_of: impl FnMut(u16) -> u16,
    mut tid_of: impl FnMut(u16) -> u16,
) -> Option<EventKind> {
    Some(match *kind {
        EventKind::VerifyPartInit {
            req,
            sender,
            parts,
            msgs,
        } => EventKind::VerifyPartInit {
            req: req_of(req),
            sender,
            parts,
            msgs,
        },
        EventKind::VerifyLayoutMsg {
            req,
            msg,
            first_spart,
            n_sparts,
            first_rpart,
            n_rparts,
            bytes,
        } => EventKind::VerifyLayoutMsg {
            req: req_of(req),
            msg,
            first_spart,
            n_sparts,
            first_rpart,
            n_rparts,
            bytes,
        },
        EventKind::VerifyStart {
            req,
            sender,
            iter,
            tid,
        } => EventKind::VerifyStart {
            req: req_of(req),
            sender,
            iter,
            tid: tid_of(tid),
        },
        EventKind::VerifyPready {
            req,
            part,
            iter,
            tid,
        } => EventKind::VerifyPready {
            req: req_of(req),
            part,
            iter,
            tid: tid_of(tid),
        },
        EventKind::VerifyWrite {
            req,
            part,
            iter,
            tid,
            dur_ns,
        } => EventKind::VerifyWrite {
            req: req_of(req),
            part,
            iter,
            tid: tid_of(tid),
            dur_ns,
        },
        EventKind::VerifyRead {
            req,
            part,
            iter,
            tid,
            dur_ns,
        } => EventKind::VerifyRead {
            req: req_of(req),
            part,
            iter,
            tid: tid_of(tid),
            dur_ns,
        },
        EventKind::VerifyMsgSend {
            req,
            msg,
            iter,
            tid,
        } => EventKind::VerifyMsgSend {
            req: req_of(req),
            msg,
            iter,
            tid: tid_of(tid),
        },
        EventKind::VerifyMsgRecv {
            req,
            msg,
            tid,
            eager,
        } => EventKind::VerifyMsgRecv {
            req: req_of(req),
            msg,
            tid: tid_of(tid),
            eager,
        },
        EventKind::VerifyParrived {
            req,
            part,
            iter,
            tid,
            arrived,
        } => EventKind::VerifyParrived {
            req: req_of(req),
            part,
            iter,
            tid: tid_of(tid),
            arrived,
        },
        EventKind::VerifyWaitDone {
            req,
            sender,
            iter,
            tid,
        } => EventKind::VerifyWaitDone {
            req: req_of(req),
            sender,
            iter,
            tid: tid_of(tid),
        },
        _ => return None,
    })
}
