//! Benchmark metrics beyond time-to-solution.
//!
//! The paper (§2.1) measures *time-to-solution* but situates it against
//! the metrics of prior partitioned-communication studies: the *perceived
//! bandwidth* of Dosanjh et al. \[2\] and the overhead / application
//! availability / early-bird metrics of Temucin et al. \[5\]. This module
//! provides those metrics so results can be compared across conventions.

/// Perceived bandwidth \[2\]: total payload divided by the time from the
/// start operation to completion on the receiver, in bytes/second.
pub fn perceived_bandwidth(total_bytes: usize, time_to_solution_s: f64) -> f64 {
    assert!(
        time_to_solution_s > 0.0,
        "time to solution must be positive"
    );
    total_bytes as f64 / time_to_solution_s
}

/// Bandwidth efficiency: perceived bandwidth as a fraction of the link
/// bandwidth β.
pub fn bandwidth_efficiency(total_bytes: usize, time_to_solution_s: f64, beta: f64) -> f64 {
    perceived_bandwidth(total_bytes, time_to_solution_s) / beta
}

/// Communication overhead \[5\]: the time the *CPU* is occupied by
/// communication calls (not the wire time), per iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadMetric {
    /// CPU time spent inside MPI calls, seconds.
    pub cpu_in_mpi_s: f64,
    /// Total iteration time, seconds.
    pub iteration_s: f64,
}

impl OverheadMetric {
    /// Application availability \[5\]: fraction of the iteration during
    /// which the CPU is free for application work.
    pub fn availability(&self) -> f64 {
        assert!(self.iteration_s > 0.0, "iteration time must be positive");
        assert!(
            self.cpu_in_mpi_s <= self.iteration_s + 1e-12,
            "CPU time cannot exceed the iteration"
        );
        (1.0 - self.cpu_in_mpi_s / self.iteration_s).max(0.0)
    }
}

/// Early-bird utilization \[5\]: the fraction of the inter-thread delay `D`
/// that was hidden behind communication — 1.0 means the pipelined schedule
/// absorbed the whole delay.
pub fn early_bird_utilization(t_bulk_s: f64, t_pipelined_s: f64, delay_s: f64) -> f64 {
    assert!(delay_s >= 0.0, "delay must be non-negative");
    if delay_s == 0.0 {
        return 0.0;
    }
    ((t_bulk_s - t_pipelined_s) / delay_s).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perceived_bandwidth_basics() {
        // 1 MB in 40 µs = 25 GB/s.
        let bw = perceived_bandwidth(1_000_000, 40e-6);
        assert!((bw - 25e9).abs() < 1.0);
        assert!((bandwidth_efficiency(1_000_000, 40e-6, 25e9) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perceived_bandwidth_degrades_with_overhead() {
        let ideal = perceived_bandwidth(1 << 20, 42e-6);
        let with_latency = perceived_bandwidth(1 << 20, 44e-6);
        assert!(with_latency < ideal);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_time_rejected() {
        let _ = perceived_bandwidth(1, 0.0);
    }

    #[test]
    fn availability_bounds() {
        let m = OverheadMetric {
            cpu_in_mpi_s: 2e-6,
            iteration_s: 10e-6,
        };
        assert!((m.availability() - 0.8).abs() < 1e-12);
        let busy = OverheadMetric {
            cpu_in_mpi_s: 10e-6,
            iteration_s: 10e-6,
        };
        assert_eq!(busy.availability(), 0.0);
    }

    #[test]
    fn early_bird_utilization_full_overlap() {
        // Bulk = D + T, pipelined = T → the whole delay was hidden.
        let d = 100e-6;
        let t = 160e-6;
        assert!((early_bird_utilization(t + d, t, d) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn early_bird_utilization_partial_and_none() {
        assert!((early_bird_utilization(200e-6, 150e-6, 100e-6) - 0.5).abs() < 1e-12);
        assert_eq!(early_bird_utilization(200e-6, 210e-6, 100e-6), 0.0);
        assert_eq!(early_bird_utilization(200e-6, 100e-6, 0.0), 0.0);
    }

    /// Consistency with the §2.2 gain model: full overlap at γβ ≥ Nθ−1.
    #[test]
    fn utilization_consistent_with_gain_model() {
        use crate::gain::{t_bulk, t_pipelined};
        let beta = 25e9;
        let s = 4e6;
        let n = 4u64;
        let delay = 2.5 * s / beta; // γβ = 2.5 < N−1 = 3: full overlap
        let tb = t_bulk(n, s, beta);
        let tp = t_pipelined(n, s, beta, delay);
        assert!((early_bird_utilization(tb, tp, delay) - 1.0).abs() < 1e-9);
        // Oversized delay: only part of it can be hidden.
        let big_delay = 5.0 * s / beta; // > (N−1)·S/β
        let tp2 = t_pipelined(n, s, beta, big_delay);
        let u = early_bird_utilization(tb, tp2, big_delay);
        assert!(u < 1.0 && u > 0.5, "utilization {u}");
    }
}
