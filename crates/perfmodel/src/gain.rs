//! Gain model for the pipelined communication pattern (paper §2.2).
//!
//! `η = T_b / T_p` (eq. 1) compares bulk thread synchronization (`T_b`) to
//! pipelined communication (`T_p`). Large messages are bandwidth/delay
//! dominated (eqs. 2–4); small messages are latency dominated (eq. 5).

/// Bulk-synchronized communication time for large messages (eq. 2):
/// `T_b ≈ N_part · S_part / β`.
///
/// * `n_part` — total number of partitions (`N·θ`)
/// * `s_part` — partition size in bytes
/// * `beta` — network bandwidth in bytes/second
pub fn t_bulk(n_part: u64, s_part: f64, beta: f64) -> f64 {
    assert!(beta > 0.0, "bandwidth must be positive");
    n_part as f64 * s_part / beta
}

/// Pipelined communication time for large messages (eq. 3):
/// `T_p ≈ max{(N_part − 1)·S_part/β − D, 0} + S_part/β`,
/// where `D` is the delay between the first and last partition being ready.
pub fn t_pipelined(n_part: u64, s_part: f64, beta: f64, delay: f64) -> f64 {
    assert!(beta > 0.0, "bandwidth must be positive");
    assert!(n_part >= 1, "need at least one partition");
    let per_part = s_part / beta;
    ((n_part - 1) as f64 * per_part - delay).max(0.0) + per_part
}

/// Theoretical large-message gain (eq. 4):
/// `η = Nθ / max{Nθ − γ_θ·β, 1}`.
///
/// * `n_threads` — number of threads `N`
/// * `theta` — partitions per thread `θ`
/// * `gamma` — delay rate `γ_θ` in s/B (see [`crate::delay`])
/// * `beta` — bandwidth in B/s
pub fn eta_large(n_threads: u64, theta: u64, gamma: f64, beta: f64) -> f64 {
    assert!(n_threads >= 1 && theta >= 1, "N and θ must be >= 1");
    assert!(gamma >= 0.0 && beta > 0.0, "γ >= 0 and β > 0 required");
    let n_part = (n_threads * theta) as f64;
    n_part / (n_part - gamma * beta).max(1.0)
}

/// Small-message gain (eq. 5): `η = 1 / (Nθ)` — pipelining *loses* by the
/// multiplication of per-message latencies.
pub fn eta_small(n_threads: u64, theta: u64) -> f64 {
    assert!(n_threads >= 1 && theta >= 1, "N and θ must be >= 1");
    1.0 / (n_threads * theta) as f64
}

/// A refined gain model covering the whole message-size range, used as the
/// "theory" overlay for the early-bird figure (Fig. 8).
///
/// The paper's eq. 4 assumes negligible latency; this model adds a one-way
/// latency `L`, a single-message overhead `o_b` for the bulk path and a
/// *contended* per-message overhead `o_p` for the pipelined path (threads
/// sending concurrently contend on MPI resources — the paper attributes the
/// ≈100 kB trade-off point to thread congestion, §4.3):
///
/// * bulk:      `T_b = o_b + L + N_part·S/β`
/// * pipelined: `T_p = max{(N_part−1)·max(S/β, o_p) − D, 0} + max(S/β, o_p) + L`
///
/// With `D = γ·S`. As `S → ∞` this converges to eq. 4; as `S → 0` the
/// pipelined path pays `N_part` contended overheads against one.
#[derive(Debug, Clone, Copy)]
pub struct RefinedGainModel {
    /// Network bandwidth β in B/s.
    pub beta: f64,
    /// One-way latency L in seconds.
    pub latency: f64,
    /// Single-message overhead in the bulk path, in seconds.
    pub bulk_overhead: f64,
    /// Per-message overhead in the pipelined path (including thread
    /// contention), in seconds.
    pub pipelined_msg_overhead: f64,
    /// Delay rate γ in s/B.
    pub gamma: f64,
}

impl RefinedGainModel {
    /// Bulk time for `n_part` partitions of `s_part` bytes each.
    pub fn t_bulk(&self, n_part: u64, s_part: f64) -> f64 {
        self.bulk_overhead + self.latency + n_part as f64 * s_part / self.beta
    }

    /// Pipelined time for `n_part` partitions of `s_part` bytes each.
    pub fn t_pipelined(&self, n_part: u64, s_part: f64) -> f64 {
        let per_part = (s_part / self.beta).max(self.pipelined_msg_overhead);
        let delay = self.gamma * s_part;
        ((n_part - 1) as f64 * per_part - delay).max(0.0) + per_part + self.latency
    }

    /// Gain `η(S) = T_b / T_p`.
    pub fn eta(&self, n_part: u64, s_part: f64) -> f64 {
        self.t_bulk(n_part, s_part) / self.t_pipelined(n_part, s_part)
    }

    /// Message size where the gain crosses 1 (pipelining starts to win),
    /// found by bisection over `[lo, hi]`. Returns `None` if no crossover.
    pub fn crossover_size(&self, n_part: u64, lo: f64, hi: f64) -> Option<f64> {
        let f = |s: f64| self.eta(n_part, s) - 1.0;
        let (mut a, mut b) = (lo, hi);
        if f(a) * f(b) > 0.0 {
            return None;
        }
        for _ in 0..200 {
            let m = 0.5 * (a + b);
            if f(a) * f(m) <= 0.0 {
                b = m;
            } else {
                a = m;
            }
        }
        Some(0.5 * (a + b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::us_per_mb_to_s_per_b;

    const BETA: f64 = 25e9; // 25 GB/s (MeluXina)

    /// §2.2.1: θ=1, β=25 GB/s, N=8, γ ∈ [1, 10] µs/MB → η = 1.003 / 1.032.
    #[test]
    fn paper_examples_theta_1() {
        let eta1 = eta_large(8, 1, us_per_mb_to_s_per_b(1.0), BETA);
        let eta10 = eta_large(8, 1, us_per_mb_to_s_per_b(10.0), BETA);
        assert!((eta1 - 1.003).abs() < 5e-4, "η(γ=1) = {eta1}");
        assert!((eta10 - 1.032).abs() < 5e-4, "η(γ=10) = {eta10}");
    }

    /// §2.2.1: θ=8, γ ≈ 1000 µs/MB → η = 1.641.
    #[test]
    fn paper_example_theta_8() {
        let eta = eta_large(8, 8, us_per_mb_to_s_per_b(1000.0), BETA);
        assert!((eta - 1.641).abs() < 5e-4, "η = {eta}");
    }

    /// §4.3 / Fig. 8: N=4, θ=1, γ = 100 µs/MB → theoretical gain 2.67.
    #[test]
    fn fig8_theoretical_gain() {
        let eta = eta_large(4, 1, us_per_mb_to_s_per_b(100.0), BETA);
        assert!((eta - 8.0 / 3.0).abs() < 1e-9, "η = {eta}");
    }

    #[test]
    fn eta_clamps_at_full_overlap() {
        // γβ >= Nθ − 1 means communication is fully hidden: η = Nθ.
        let gamma = us_per_mb_to_s_per_b(1e6);
        let eta = eta_large(4, 1, gamma, BETA);
        assert_eq!(eta, 4.0);
    }

    #[test]
    fn eta_is_one_without_delay() {
        assert_eq!(eta_large(8, 2, 0.0, BETA), 1.0);
    }

    #[test]
    fn eta_small_is_reciprocal() {
        assert_eq!(eta_small(8, 4), 1.0 / 32.0);
        assert_eq!(eta_small(1, 1), 1.0);
    }

    #[test]
    fn t_pipelined_consistent_with_eta() {
        // η derived from raw times must match eq. 4 when latency is ignored.
        let n = 4u64;
        let s = 4e6;
        let gamma = us_per_mb_to_s_per_b(100.0);
        let tb = t_bulk(n, s, BETA);
        let tp = t_pipelined(n, s, BETA, gamma * s);
        let eta_times = tb / tp;
        let eta_formula = eta_large(4, 1, gamma, BETA);
        assert!((eta_times - eta_formula).abs() < 1e-12);
    }

    #[test]
    fn t_pipelined_full_overlap_floor() {
        // Huge delay: only the last partition's transfer remains.
        let tp = t_pipelined(4, 1e6, BETA, 1.0);
        assert!((tp - 1e6 / BETA).abs() < 1e-15);
    }

    fn fig8_model() -> RefinedGainModel {
        RefinedGainModel {
            beta: BETA,
            latency: 1.22e-6,
            bulk_overhead: 0.4e-6,
            // Effective per-message cost with 4 threads contending on one
            // VCI; calibrated so the crossover matches the paper's ≈100 kB.
            pipelined_msg_overhead: 2.0e-6,
            gamma: us_per_mb_to_s_per_b(100.0),
        }
    }

    #[test]
    fn refined_model_asymptotes() {
        let m = fig8_model();
        // Large sizes approach the ideal eq. 4 gain.
        let eta_big = m.eta(4, 64e6);
        let ideal = eta_large(4, 1, m.gamma, BETA);
        assert!(
            (eta_big - ideal).abs() / ideal < 0.05,
            "η(64MB) = {eta_big}, ideal {ideal}"
        );
        // Small sizes: pipelining loses (η < 1).
        assert!(m.eta(4, 512.0) < 1.0);
    }

    #[test]
    fn refined_model_crossover_near_100kb() {
        // The paper observes the trade-off "around 100 kB" (§4.3), driven
        // by thread congestion.
        let m = fig8_model();
        let s = m.crossover_size(4, 1e3, 1e7).expect("crossover must exist");
        // Crossover per partition; the paper's axis is total message size
        // (4 partitions).
        let total = 4.0 * s;
        assert!(
            (5e4..3e5).contains(&total),
            "total crossover {total} outside plausible range"
        );
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = t_bulk(1, 1.0, 0.0);
    }
}
