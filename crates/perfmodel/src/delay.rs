//! Delay-rate model (paper Appendix A).
//!
//! The delay `D` between the first and last partition becoming ready is
//! modeled as `D = γ_θ · S_part` with (eq. 9)
//!
//! ```text
//! γ_θ = µ · (θ + (ε+δ)/2 · (√θ + 1) − 1)
//! ```
//!
//! where `µ` is the average per-byte compute rate (eq. 6), `ε` the system
//! noise and `δ` the algorithmic imbalance.

/// Per-byte compute rate from hardware/algorithm parameters (eq. 6):
/// `µ = (AI / CI) · 1 / (flops_per_cycle · F)` in s/B.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComputeProfile {
    /// Arithmetic intensity (flop/B of memory used).
    pub arithmetic_intensity: f64,
    /// Communication intensity (bytes sent / bytes of memory used).
    pub communication_intensity: f64,
    /// CPU clock in Hz.
    pub freq_hz: f64,
    /// Flops retired per cycle (the paper's fixed factor 8).
    pub flops_per_cycle: f64,
}

impl ComputeProfile {
    /// The average compute rate µ in seconds per *communicated* byte.
    pub fn mu(&self) -> f64 {
        assert!(
            self.communication_intensity > 0.0 && self.freq_hz > 0.0 && self.flops_per_cycle > 0.0,
            "profile parameters must be positive"
        );
        (self.arithmetic_intensity / self.communication_intensity)
            / (self.flops_per_cycle * self.freq_hz)
    }

    /// Distributed FFT preset (Appendix A.2.1): AI ≈ 5, CI = 1, on a
    /// 3.5 GHz, 8 flop/cycle core (the frequency reproducing the paper's
    /// γ values exactly).
    pub fn fft() -> Self {
        ComputeProfile {
            arithmetic_intensity: 5.0,
            communication_intensity: 1.0,
            freq_hz: 3.5e9,
            flops_per_cycle: 8.0,
        }
    }

    /// 3D finite-difference stencil preset (Appendix A.2.2): one 64³ block,
    /// two ghost points → CI = (66/64)³ − 1; 4th-order stencil AI ≈ 1/13.
    pub fn stencil3d() -> Self {
        ComputeProfile {
            arithmetic_intensity: 1.0 / 13.0,
            communication_intensity: (66.0f64 / 64.0).powi(3) - 1.0,
            freq_hz: 3.5e9,
            flops_per_cycle: 8.0,
        }
    }
}

/// Noise model: σ = (ε + δ)/2 (Appendix A.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// System execution noise ε (relative).
    pub epsilon: f64,
    /// Algorithmic imbalance δ (relative; e.g. 0.5 = some branches cost
    /// 50% more compute).
    pub delta: f64,
}

impl NoiseModel {
    /// Combined relative standard deviation σ = (ε + δ)/2.
    pub fn sigma(&self) -> f64 {
        assert!(
            self.epsilon >= 0.0 && self.delta >= 0.0,
            "noise terms must be non-negative"
        );
        0.5 * (self.epsilon + self.delta)
    }
}

/// The full delay model: compute rate plus noise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayModel {
    /// Average compute rate µ in s/B.
    pub mu: f64,
    /// Noise parameters.
    pub noise: NoiseModel,
}

impl DelayModel {
    /// Build from a compute profile and noise parameters.
    pub fn new(profile: ComputeProfile, noise: NoiseModel) -> Self {
        DelayModel {
            mu: profile.mu(),
            noise,
        }
    }

    /// Delay rate γ_θ in s/B (eq. 9).
    pub fn gamma(&self, theta: u64) -> f64 {
        assert!(theta >= 1, "θ must be >= 1");
        let t = theta as f64;
        let sigma = self.noise.sigma();
        self.mu * (t + sigma * (t.sqrt() + 1.0) - 1.0)
    }

    /// Delay time `D = γ_θ · S_part` in seconds (eq. 8).
    pub fn delay(&self, theta: u64, s_part: f64) -> f64 {
        self.gamma(theta) * s_part
    }

    /// Time when the *first* partition is expected ready:
    /// `µ·S_part·(1 − σ)` (Appendix A.1).
    pub fn first_ready(&self, s_part: f64) -> f64 {
        (self.mu * s_part * (1.0 - self.noise.sigma())).max(0.0)
    }

    /// Time when the *last* of θ partitions on a thread is expected ready:
    /// `µ·S_part·(θ + √θ·σ)` (Appendix A.1).
    pub fn last_ready(&self, theta: u64, s_part: f64) -> f64 {
        let t = theta as f64;
        self.mu * s_part * (t + t.sqrt() * self.noise.sigma())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{eta_large, s_per_b_to_us_per_mb};

    fn close(actual: f64, expected: f64, tol: f64) {
        assert!(
            (actual - expected).abs() < tol,
            "actual {actual}, expected {expected}"
        );
    }

    /// Appendix A.2.1 (FFT, ε = 0.04, δ = 0):
    /// γ₁ = 7.1428, γ₂ = 187.1936, γ₈ = 1263.67 µs/MB.
    #[test]
    fn fft_gamma_values() {
        let m = DelayModel::new(
            ComputeProfile::fft(),
            NoiseModel {
                epsilon: 0.04,
                delta: 0.0,
            },
        );
        close(s_per_b_to_us_per_mb(m.gamma(1)), 7.1428, 5e-3);
        close(s_per_b_to_us_per_mb(m.gamma(2)), 187.1936, 5e-3);
        close(s_per_b_to_us_per_mb(m.gamma(8)), 1263.67, 5e-2);
    }

    /// Appendix A.2.1: associated gains with N = 8, β = 25 GB/s:
    /// η = 1.0228, 1.4134, 1.9748.
    #[test]
    fn fft_eta_values() {
        let m = DelayModel::new(
            ComputeProfile::fft(),
            NoiseModel {
                epsilon: 0.04,
                delta: 0.0,
            },
        );
        let beta = 25e9;
        close(eta_large(8, 1, m.gamma(1), beta), 1.0228, 5e-4);
        close(eta_large(8, 2, m.gamma(2), beta), 1.4134, 5e-4);
        close(eta_large(8, 8, m.gamma(8), beta), 1.9748, 5e-4);
    }

    /// Appendix A.2.2 (stencil, ε = 0.04, δ = 0.5):
    /// γ₁ = 15.3398, γ₂ = 46.92385411, γ₈ = 228.21310932 µs/MB.
    #[test]
    fn stencil_gamma_values() {
        let m = DelayModel::new(
            ComputeProfile::stencil3d(),
            NoiseModel {
                epsilon: 0.04,
                delta: 0.5,
            },
        );
        close(s_per_b_to_us_per_mb(m.gamma(1)), 15.3398, 5e-3);
        close(s_per_b_to_us_per_mb(m.gamma(2)), 46.92385411, 5e-3);
        close(s_per_b_to_us_per_mb(m.gamma(8)), 228.21310932, 5e-3);
    }

    /// Appendix A.2.2 reports η = 1.1060 / 1.1718 / 1.2169, which are
    /// consistent with *twice* the listed γ values (a paper-internal
    /// inconsistency; the FFT numbers use 1×γ). We assert our formula
    /// reproduces the paper's numbers under the 2γ reading and records the
    /// 1γ values too (see EXPERIMENTS.md).
    #[test]
    fn stencil_eta_values_under_2gamma_reading() {
        let m = DelayModel::new(
            ComputeProfile::stencil3d(),
            NoiseModel {
                epsilon: 0.04,
                delta: 0.5,
            },
        );
        let beta = 25e9;
        close(eta_large(8, 1, 2.0 * m.gamma(1), beta), 1.1060, 5e-4);
        close(eta_large(8, 2, 2.0 * m.gamma(2), beta), 1.1718, 5e-4);
        close(eta_large(8, 8, 2.0 * m.gamma(8), beta), 1.2169, 5e-4);
        // 1×γ values for the record:
        close(eta_large(8, 1, m.gamma(1), beta), 1.0503, 5e-4);
    }

    #[test]
    fn gamma_grows_with_theta() {
        let m = DelayModel::new(
            ComputeProfile::fft(),
            NoiseModel {
                epsilon: 0.04,
                delta: 0.0,
            },
        );
        let mut prev = 0.0;
        for theta in 1..=16 {
            let g = m.gamma(theta);
            assert!(g > prev, "γ must increase with θ");
            prev = g;
        }
    }

    #[test]
    fn gamma_theta1_is_pure_noise() {
        // θ=1: γ₁ = µ·σ·2 − wait: θ + σ(√θ+1) − 1 = 2σ at θ=1.
        let m = DelayModel {
            mu: 1e-10,
            noise: NoiseModel {
                epsilon: 0.1,
                delta: 0.3,
            },
        };
        close(m.gamma(1), 1e-10 * 2.0 * 0.2, 1e-20);
    }

    #[test]
    fn delay_is_gamma_times_size() {
        let m = DelayModel {
            mu: 2e-10,
            noise: NoiseModel {
                epsilon: 0.0,
                delta: 0.0,
            },
        };
        // No noise: γ_θ = µ(θ−1); θ=3, S=1e6 → D = 2e-10·2·1e6 = 4e-4.
        close(m.delay(3, 1e6), 4e-4, 1e-15);
    }

    #[test]
    fn first_last_ready_bracket_delay() {
        let m = DelayModel::new(
            ComputeProfile::fft(),
            NoiseModel {
                epsilon: 0.04,
                delta: 0.0,
            },
        );
        let s = 1e6;
        for theta in [1u64, 2, 8] {
            let d = m.last_ready(theta, s) - m.first_ready(s);
            close(d, m.delay(theta, s), 1e-12);
        }
    }

    #[test]
    fn mu_example_fft_is_178_57_us_per_mb() {
        // µ = 5 / (8 · 3.5e9) s/B = 178.571 µs/MB.
        let mu = ComputeProfile::fft().mu();
        close(s_per_b_to_us_per_mb(mu), 178.5714, 1e-3);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn invalid_profile_rejected() {
        let p = ComputeProfile {
            arithmetic_intensity: 1.0,
            communication_intensity: 0.0,
            freq_hz: 1.0,
            flops_per_cycle: 1.0,
        };
        let _ = p.mu();
    }
}
