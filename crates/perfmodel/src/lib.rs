//! `pcomm-perfmodel` — the analytical performance model of pipelined
//! (partitioned) communication from *Quantifying the Performance Benefits of
//! Partitioned Communication in MPI* (ICPP 2023), Section 2.2 and Appendix A.
//!
//! Everything here is closed-form; the crate has no dependencies and is used
//! both to overlay "theory" curves on the simulator's figures and to check
//! the simulator/real-runtime results against the model.
//!
//! Units: this crate uses SI throughout — seconds, bytes, bytes/second and
//! seconds/byte. Helpers convert the paper's µs/MB delay rates
//! ([`us_per_mb_to_s_per_b`]).

#![warn(missing_docs)]

pub mod delay;
pub mod gain;
pub mod metrics;
pub mod stats;

pub use delay::{ComputeProfile, DelayModel, NoiseModel};
pub use gain::{eta_large, eta_small, t_bulk, t_pipelined, RefinedGainModel};
pub use metrics::{
    bandwidth_efficiency, early_bird_utilization, perceived_bandwidth, OverheadMetric,
};
pub use stats::{mean, sample_sd, student_t_90, ConfidenceInterval, MeasureOutcome, Protocol};

/// Convert a delay rate from the paper's µs/MB to s/B.
///
/// `1 µs/MB = 1e-6 s / 1e6 B = 1e-12 s/B`.
pub fn us_per_mb_to_s_per_b(us_per_mb: f64) -> f64 {
    us_per_mb * 1e-12
}

/// Convert a delay rate from s/B to the paper's µs/MB.
pub fn s_per_b_to_us_per_mb(s_per_b: f64) -> f64 {
    s_per_b * 1e12
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_rate_unit_roundtrip() {
        let g = us_per_mb_to_s_per_b(100.0);
        assert!((g - 1e-10).abs() < 1e-25);
        assert!((s_per_b_to_us_per_mb(g) - 100.0).abs() < 1e-9);
    }

    /// §2.2.2: with γ = 100 µs/MB and 1 µs latency, a 1 kB buffer generates
    /// delay worth about 10% of a single message latency.
    #[test]
    fn small_message_delay_example() {
        let gamma = us_per_mb_to_s_per_b(100.0);
        let delay = gamma * 1024.0;
        let latency = 1e-6;
        let frac = delay / latency;
        assert!((frac - 0.1024).abs() < 1e-12, "frac = {frac}");
    }
}
