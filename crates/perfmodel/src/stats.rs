//! The paper's measurement protocol (§4, "Performance results").
//!
//! Each data point is the average of 150 iterations (after 1 warm-up),
//! with a 90% confidence interval under a Student-t distribution. If the
//! half-width of the interval exceeds 5% of the mean, the measurement is
//! rerun, up to 50 times.

/// Arithmetic mean. Panics on an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "mean of empty slice");
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (n−1 denominator). Zero for n < 2.
pub fn sample_sd(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (n - 1) as f64).sqrt()
}

/// Two-sided 90% Student-t critical value `t_{0.95, df}`.
///
/// Table interpolated in `1/df` between tabulated points; exact at the
/// tabulated dfs, within ~1e-3 elsewhere — ample for a benchmark CI.
pub fn student_t_90(df: u64) -> f64 {
    assert!(df >= 1, "degrees of freedom must be >= 1");
    const TABLE: &[(u64, f64)] = &[
        (1, 6.3138),
        (2, 2.9200),
        (3, 2.3534),
        (4, 2.1318),
        (5, 2.0150),
        (6, 1.9432),
        (7, 1.8946),
        (8, 1.8595),
        (9, 1.8331),
        (10, 1.8125),
        (12, 1.7823),
        (15, 1.7531),
        (20, 1.7247),
        (25, 1.7081),
        (30, 1.6973),
        (40, 1.6839),
        (60, 1.6706),
        (120, 1.6577),
    ];
    const T_INF: f64 = 1.6449; // normal quantile z_{0.95}
    if let Some(&(_, t)) = TABLE.iter().find(|&&(d, _)| d == df) {
        return t;
    }
    if df > 120 {
        // Interpolate between df=120 and infinity in 1/df.
        let (d0, t0) = (120.0, 1.6577);
        let w = (1.0 / df as f64) / (1.0 / d0);
        return T_INF + w * (t0 - T_INF);
    }
    // Between two tabulated values, interpolate in 1/df.
    let idx = TABLE.iter().position(|&(d, _)| d > df).unwrap();
    let (d0, t0) = TABLE[idx - 1];
    let (d1, t1) = TABLE[idx];
    let x0 = 1.0 / d0 as f64;
    let x1 = 1.0 / d1 as f64;
    let x = 1.0 / df as f64;
    t1 + (t0 - t1) * (x - x1) / (x0 - x1)
}

/// A mean with its symmetric confidence half-width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Sample mean.
    pub mean: f64,
    /// Half-width of the two-sided 90% interval.
    pub halfwidth: f64,
    /// Number of samples.
    pub n: usize,
}

impl ConfidenceInterval {
    /// Compute the 90% Student-t interval of a sample.
    pub fn of(xs: &[f64]) -> ConfidenceInterval {
        let n = xs.len();
        let m = mean(xs);
        let hw = if n < 2 {
            0.0
        } else {
            student_t_90((n - 1) as u64) * sample_sd(xs) / (n as f64).sqrt()
        };
        ConfidenceInterval {
            mean: m,
            halfwidth: hw,
            n,
        }
    }

    /// Relative half-width (`halfwidth / mean`); infinite if the mean is 0.
    pub fn relative_halfwidth(&self) -> f64 {
        if self.mean == 0.0 {
            f64::INFINITY
        } else {
            (self.halfwidth / self.mean).abs()
        }
    }
}

/// The paper's measurement protocol parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Protocol {
    /// Measured iterations per attempt (paper: 150).
    pub iterations: usize,
    /// Warm-up iterations discarded per attempt (paper: 1).
    pub warmup: usize,
    /// Maximum reruns when the interval is too wide (paper: 50).
    pub max_retries: usize,
    /// Accepted relative half-width (paper: 0.05).
    pub rel_halfwidth: f64,
}

impl Default for Protocol {
    fn default() -> Self {
        Protocol {
            iterations: 150,
            warmup: 1,
            max_retries: 50,
            rel_halfwidth: 0.05,
        }
    }
}

/// Result of running the measurement protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasureOutcome {
    /// Final accepted (or last-attempt) interval.
    pub ci: ConfidenceInterval,
    /// Number of reruns performed (0 = first attempt accepted).
    pub retries: usize,
    /// Whether the relative half-width criterion was met.
    pub converged: bool,
}

impl Protocol {
    /// Run the protocol: `sample(iter_index)` returns one iteration's
    /// measured time; warm-up iterations are invoked but discarded.
    pub fn measure(&self, mut sample: impl FnMut(usize) -> f64) -> MeasureOutcome {
        assert!(self.iterations >= 1, "need at least one iteration");
        let mut retries = 0;
        loop {
            let mut xs = Vec::with_capacity(self.iterations);
            for i in 0..(self.warmup + self.iterations) {
                let x = sample(i);
                if i >= self.warmup {
                    xs.push(x);
                }
            }
            let ci = ConfidenceInterval::of(&xs);
            let converged = ci.relative_halfwidth() <= self.rel_halfwidth;
            if converged || retries >= self.max_retries {
                return MeasureOutcome {
                    ci,
                    retries,
                    converged,
                };
            }
            retries += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_sd_basic() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        // Known sample sd of this classic dataset: sqrt(32/7).
        assert!((sample_sd(&xs) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn sd_of_singleton_is_zero() {
        assert_eq!(sample_sd(&[3.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn mean_empty_panics() {
        let _ = mean(&[]);
    }

    #[test]
    fn t_table_exact_points() {
        assert_eq!(student_t_90(1), 6.3138);
        assert_eq!(student_t_90(10), 1.8125);
        assert_eq!(student_t_90(120), 1.6577);
    }

    #[test]
    fn t_decreases_with_df() {
        let mut prev = f64::INFINITY;
        for df in 1..=300 {
            let t = student_t_90(df);
            assert!(t <= prev + 1e-12, "t({df}) = {t} > t({}) = {prev}", df - 1);
            assert!(t >= 1.6449);
            prev = t;
        }
    }

    #[test]
    fn t_149_matches_paper_protocol() {
        // 150 iterations → df = 149; t ≈ 1.655.
        let t = student_t_90(149);
        assert!((t - 1.655).abs() < 3e-3, "t(149) = {t}");
    }

    #[test]
    fn ci_of_constant_sample_has_zero_width() {
        let ci = ConfidenceInterval::of(&[5.0; 100]);
        assert_eq!(ci.mean, 5.0);
        assert_eq!(ci.halfwidth, 0.0);
    }

    #[test]
    fn ci_shrinks_with_sample_size() {
        // Alternating values: same sd regardless of n, so hw ∝ t/√n.
        let make =
            |n: usize| -> Vec<f64> { (0..n).map(|i| if i % 2 == 0 { 1.0 } else { 3.0 }).collect() };
        let small = ConfidenceInterval::of(&make(10));
        let large = ConfidenceInterval::of(&make(1000));
        assert!(large.halfwidth < small.halfwidth / 5.0);
    }

    #[test]
    fn protocol_discards_warmup() {
        // First call (warm-up) returns a huge outlier; the mean must not
        // see it.
        let p = Protocol {
            iterations: 10,
            warmup: 1,
            max_retries: 0,
            rel_halfwidth: 0.05,
        };
        let out = p.measure(|i| if i == 0 { 1e9 } else { 2.0 });
        assert_eq!(out.ci.mean, 2.0);
        assert!(out.converged);
    }

    #[test]
    fn protocol_retries_until_quiet() {
        // Attempt 0 noisy, attempt 1 quiet: one retry, converged.
        let p = Protocol {
            iterations: 50,
            warmup: 0,
            max_retries: 5,
            rel_halfwidth: 0.05,
        };
        let mut call = 0usize;
        let out = p.measure(|i| {
            let attempt = call / 50;
            call += 1;
            if attempt == 0 {
                if i % 2 == 0 {
                    1.0
                } else {
                    100.0
                }
            } else {
                10.0
            }
        });
        assert_eq!(out.retries, 1);
        assert!(out.converged);
        assert_eq!(out.ci.mean, 10.0);
    }

    #[test]
    fn protocol_gives_up_after_max_retries() {
        let p = Protocol {
            iterations: 10,
            warmup: 0,
            max_retries: 3,
            rel_halfwidth: 0.0001,
        };
        let mut call = 0usize;
        let out = p.measure(|_| {
            call += 1;
            if call.is_multiple_of(2) {
                1.0
            } else {
                2.0
            }
        });
        assert_eq!(out.retries, 3);
        assert!(!out.converged);
    }

    #[test]
    fn paper_default_protocol() {
        let p = Protocol::default();
        assert_eq!(p.iterations, 150);
        assert_eq!(p.warmup, 1);
        assert_eq!(p.max_retries, 50);
        assert_eq!(p.rel_halfwidth, 0.05);
    }
}
