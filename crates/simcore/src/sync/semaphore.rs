//! FIFO-fair counting semaphore.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

struct WaitEntry {
    ticket: u64,
    waker: Option<Waker>,
}

struct SemState {
    permits: usize,
    queue: VecDeque<WaitEntry>,
    next_ticket: u64,
}

impl SemState {
    fn wake_head(&mut self) {
        if self.permits > 0 {
            if let Some(head) = self.queue.front_mut() {
                if let Some(w) = head.waker.take() {
                    w.wake();
                }
            }
        }
    }
}

/// A counting semaphore with strict FIFO grant order.
///
/// FIFO fairness matters for the simulator: grant order must be a
/// deterministic function of request order, not of scheduler whim.
#[derive(Clone)]
pub struct Semaphore {
    state: Rc<RefCell<SemState>>,
}

impl Semaphore {
    /// Create a semaphore with `permits` initial permits.
    pub fn new(permits: usize) -> Semaphore {
        Semaphore {
            state: Rc::new(RefCell::new(SemState {
                permits,
                queue: VecDeque::new(),
                next_ticket: 0,
            })),
        }
    }

    /// Currently available permits.
    pub fn available(&self) -> usize {
        self.state.borrow().permits
    }

    /// Number of tasks queued waiting for a permit.
    pub fn waiting(&self) -> usize {
        self.state.borrow().queue.len()
    }

    /// Acquire one permit; resolves to a guard that releases on drop.
    pub fn acquire(&self) -> Acquire {
        Acquire {
            state: Rc::clone(&self.state),
            ticket: None,
        }
    }

    /// Try to acquire a permit without waiting. Fails if none are free or
    /// other tasks are already queued (to preserve FIFO order).
    pub fn try_acquire(&self) -> Option<SemaphoreGuard> {
        let mut s = self.state.borrow_mut();
        if s.permits > 0 && s.queue.is_empty() {
            s.permits -= 1;
            Some(SemaphoreGuard {
                state: Rc::clone(&self.state),
            })
        } else {
            None
        }
    }
}

/// Future returned by [`Semaphore::acquire`].
pub struct Acquire {
    state: Rc<RefCell<SemState>>,
    ticket: Option<u64>,
}

impl Future for Acquire {
    type Output = SemaphoreGuard;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<SemaphoreGuard> {
        let mut s = self.state.borrow_mut();
        match self.ticket {
            None => {
                if s.permits > 0 && s.queue.is_empty() {
                    s.permits -= 1;
                    drop(s);
                    return Poll::Ready(SemaphoreGuard {
                        state: Rc::clone(&self.state),
                    });
                }
                let ticket = s.next_ticket;
                s.next_ticket += 1;
                s.queue.push_back(WaitEntry {
                    ticket,
                    waker: Some(cx.waker().clone()),
                });
                drop(s);
                self.ticket = Some(ticket);
                Poll::Pending
            }
            Some(ticket) => {
                let at_head = s.queue.front().map(|e| e.ticket) == Some(ticket);
                if at_head && s.permits > 0 {
                    s.permits -= 1;
                    s.queue.pop_front();
                    // A freed permit may allow the next waiter through too
                    // (when permits > 1).
                    s.wake_head();
                    drop(s);
                    self.ticket = None; // consumed; Drop must not dequeue
                    Poll::Ready(SemaphoreGuard {
                        state: Rc::clone(&self.state),
                    })
                } else {
                    // Refresh the stored waker in case the task moved.
                    if let Some(entry) = s.queue.iter_mut().find(|e| e.ticket == ticket) {
                        entry.waker = Some(cx.waker().clone());
                    }
                    Poll::Pending
                }
            }
        }
    }
}

impl Drop for Acquire {
    fn drop(&mut self) {
        if let Some(ticket) = self.ticket {
            // Cancelled while queued: remove our entry and, if we were at
            // the head, let the next waiter proceed.
            let mut s = self.state.borrow_mut();
            let was_head = s.queue.front().map(|e| e.ticket) == Some(ticket);
            s.queue.retain(|e| e.ticket != ticket);
            if was_head {
                s.wake_head();
            }
        }
    }
}

/// Permit guard; releases its permit when dropped.
pub struct SemaphoreGuard {
    state: Rc<RefCell<SemState>>,
}

impl Drop for SemaphoreGuard {
    fn drop(&mut self) {
        let mut s = self.state.borrow_mut();
        s.permits += 1;
        s.wake_head();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dur, Sim};

    #[test]
    fn uncontended_acquire_is_immediate() {
        let sim = Sim::new();
        let sem = Semaphore::new(2);
        let sem2 = sem.clone();
        sim.block_on(async move {
            let _a = sem2.acquire().await;
            let _b = sem2.acquire().await;
            assert_eq!(sem2.available(), 0);
        });
        assert_eq!(sem.available(), 2);
    }

    #[test]
    fn guard_drop_releases() {
        let sim = Sim::new();
        let sem = Semaphore::new(1);
        let sem2 = sem.clone();
        sim.block_on(async move {
            {
                let _g = sem2.acquire().await;
                assert_eq!(sem2.available(), 0);
            }
            assert_eq!(sem2.available(), 1);
        });
    }

    #[test]
    fn fifo_grant_order() {
        let sim = Sim::new();
        let sem = Semaphore::new(1);
        let order = Rc::new(RefCell::new(Vec::new()));
        // Task 0 holds the permit for 10us; tasks 1..5 request in order at
        // t = 1,2,3,4 us and must be granted in that order.
        {
            let s = sim.clone();
            let sem = sem.clone();
            let order = Rc::clone(&order);
            sim.spawn(async move {
                let g = sem.acquire().await;
                order.borrow_mut().push(0);
                s.sleep(Dur::from_us(10)).await;
                drop(g);
            });
        }
        for i in 1..5u64 {
            let s = sim.clone();
            let sem = sem.clone();
            let order = Rc::clone(&order);
            sim.spawn(async move {
                s.sleep(Dur::from_us(i)).await;
                let _g = sem.acquire().await;
                order.borrow_mut().push(i);
            });
        }
        sim.run();
        assert_eq!(*order.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn try_acquire_respects_queue() {
        let sim = Sim::new();
        let sem = Semaphore::new(1);
        let sem2 = sem.clone();
        let s = sim.clone();
        sim.spawn(async move {
            let _g = sem2.acquire().await;
            s.sleep(Dur::from_us(5)).await;
        });
        let sem3 = sem.clone();
        let s2 = sim.clone();
        sim.spawn(async move {
            s2.sleep(Dur::from_us(1)).await;
            let _g = sem3.acquire().await;
        });
        let sem4 = sem.clone();
        let s3 = sim.clone();
        let probe = sim.spawn(async move {
            s3.sleep(Dur::from_us(2)).await;
            sem4.try_acquire().is_none()
        });
        sim.run();
        assert!(
            probe.try_take().unwrap(),
            "try_acquire should fail while queued"
        );
    }

    #[test]
    fn serialization_time_adds_up() {
        let sim = Sim::new();
        let sem = Semaphore::new(1);
        for _ in 0..8 {
            let s = sim.clone();
            let sem = sem.clone();
            sim.spawn(async move {
                let _g = sem.acquire().await;
                s.sleep(Dur::from_us(3)).await;
            });
        }
        sim.run();
        assert_eq!(sim.now().as_us_f64(), 24.0);
    }

    #[test]
    fn two_permits_halve_serialization() {
        let sim = Sim::new();
        let sem = Semaphore::new(2);
        for _ in 0..8 {
            let s = sim.clone();
            let sem = sem.clone();
            sim.spawn(async move {
                let _g = sem.acquire().await;
                s.sleep(Dur::from_us(3)).await;
            });
        }
        sim.run();
        assert_eq!(sim.now().as_us_f64(), 12.0);
    }

    #[test]
    fn waiting_count_tracks_queue() {
        let sim = Sim::new();
        let sem = Semaphore::new(1);
        let sem_probe = sem.clone();
        {
            let s = sim.clone();
            let sem = sem.clone();
            sim.spawn(async move {
                let _g = sem.acquire().await;
                s.sleep(Dur::from_us(10)).await;
            });
        }
        for _ in 0..3 {
            let sem = sem.clone();
            let s = sim.clone();
            sim.spawn(async move {
                s.sleep(Dur::from_us(1)).await;
                let _g = sem.acquire().await;
            });
        }
        let s = sim.clone();
        let probe = sim.spawn(async move {
            s.sleep(Dur::from_us(2)).await;
            sem_probe.waiting()
        });
        sim.run();
        assert_eq!(probe.try_take().unwrap(), 3);
    }
}
