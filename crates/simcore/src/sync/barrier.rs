//! Reusable (cyclic) barrier for simulated thread teams.
//!
//! Models the OpenMP-style thread barriers in the paper's benchmark template
//! (Fig. 3): a barrier after `start` and one before `wait`. The time cost of
//! a barrier is *not* built in — the cost model charges it explicitly so it
//! can be varied per machine configuration.

use std::cell::RefCell;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

struct BarrierState {
    parties: usize,
    arrived: usize,
    generation: u64,
    waiters: Vec<Waker>,
}

/// A cyclic barrier for a fixed number of parties.
#[derive(Clone)]
pub struct Barrier {
    state: Rc<RefCell<BarrierState>>,
}

/// Result of a barrier wait; the *leader* is the last task to arrive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrierWaitResult {
    /// True for exactly one waiter per barrier cycle (the last to arrive).
    pub is_leader: bool,
}

impl Barrier {
    /// Create a barrier for `parties` tasks. `parties` must be >= 1.
    pub fn new(parties: usize) -> Barrier {
        assert!(parties >= 1, "barrier needs at least one party");
        Barrier {
            state: Rc::new(RefCell::new(BarrierState {
                parties,
                arrived: 0,
                generation: 0,
                waiters: Vec::new(),
            })),
        }
    }

    /// Number of parties the barrier synchronizes.
    pub fn parties(&self) -> usize {
        self.state.borrow().parties
    }

    /// Wait for all parties to arrive.
    pub fn wait(&self) -> BarrierWait {
        BarrierWait {
            state: Rc::clone(&self.state),
            generation: None,
        }
    }
}

/// Future returned by [`Barrier::wait`].
pub struct BarrierWait {
    state: Rc<RefCell<BarrierState>>,
    /// Generation this waiter arrived in (None until first poll).
    generation: Option<u64>,
}

impl Future for BarrierWait {
    type Output = BarrierWaitResult;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<BarrierWaitResult> {
        let mut s = self.state.borrow_mut();
        match self.generation {
            None => {
                // First poll: register arrival.
                s.arrived += 1;
                if s.arrived == s.parties {
                    // Leader: release everyone and reset for the next cycle.
                    s.arrived = 0;
                    s.generation += 1;
                    for w in s.waiters.drain(..) {
                        w.wake();
                    }
                    Poll::Ready(BarrierWaitResult { is_leader: true })
                } else {
                    let gen = s.generation;
                    drop(s);
                    self.generation = Some(gen);
                    self.state.borrow_mut().waiters.push(cx.waker().clone());
                    Poll::Pending
                }
            }
            Some(gen) => {
                if s.generation != gen {
                    Poll::Ready(BarrierWaitResult { is_leader: false })
                } else {
                    s.waiters.push(cx.waker().clone());
                    Poll::Pending
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dur, Sim};
    use std::cell::Cell;

    #[test]
    fn single_party_passes_immediately() {
        let sim = Sim::new();
        let b = Barrier::new(1);
        let r = sim.block_on(async move { b.wait().await });
        assert!(r.is_leader);
    }

    #[test]
    fn barrier_waits_for_slowest() {
        let sim = Sim::new();
        let b = Barrier::new(4);
        let release_times = Rc::new(RefCell::new(Vec::new()));
        for i in 0..4u64 {
            let s = sim.clone();
            let b = b.clone();
            let rt = Rc::clone(&release_times);
            sim.spawn(async move {
                s.sleep(Dur::from_us(i * 10)).await;
                b.wait().await;
                rt.borrow_mut().push(s.now().as_us_f64());
            });
        }
        sim.run();
        // Everyone releases when the slowest (30us) arrives.
        assert_eq!(*release_times.borrow(), vec![30.0; 4]);
    }

    #[test]
    fn exactly_one_leader_per_cycle() {
        let sim = Sim::new();
        let b = Barrier::new(8);
        let leaders = Rc::new(Cell::new(0));
        for i in 0..8u64 {
            let s = sim.clone();
            let b = b.clone();
            let l = Rc::clone(&leaders);
            sim.spawn(async move {
                s.sleep(Dur::from_ns(i)).await;
                let r = b.wait().await;
                if r.is_leader {
                    l.set(l.get() + 1);
                }
            });
        }
        sim.run();
        assert_eq!(leaders.get(), 1);
    }

    #[test]
    fn barrier_is_reusable_across_cycles() {
        let sim = Sim::new();
        let b = Barrier::new(3);
        let laps = Rc::new(Cell::new(0u32));
        for i in 0..3u64 {
            let s = sim.clone();
            let b = b.clone();
            let laps = Rc::clone(&laps);
            sim.spawn(async move {
                for lap in 0..10u64 {
                    s.sleep(Dur::from_ns((i + 1) * (lap + 1))).await;
                    b.wait().await;
                    laps.set(laps.get() + 1);
                }
            });
        }
        sim.run();
        assert_eq!(laps.get(), 30);
    }

    #[test]
    fn missing_party_deadlocks() {
        let sim = Sim::new();
        let b = Barrier::new(2);
        sim.spawn(async move {
            b.wait().await;
        });
        let report = sim.try_run();
        assert_eq!(report.stuck_tasks, 1);
    }

    #[test]
    #[should_panic(expected = "at least one party")]
    fn zero_parties_rejected() {
        let _ = Barrier::new(0);
    }
}
