//! Synchronization primitives for simulated processes.
//!
//! All primitives operate on *virtual* time: "blocking" means the task
//! suspends until another task changes the state; no OS synchronization is
//! involved beyond the executor's single thread.

mod barrier;
mod channel;
mod resource;
mod semaphore;
mod signal;

pub use barrier::{Barrier, BarrierWaitResult};
pub use channel::{channel, Receiver, RecvError, Sender};
pub use resource::{Resource, ResourceGuard};
pub use semaphore::{Semaphore, SemaphoreGuard};
pub use signal::{wait_any, Signal, WaitAny};
