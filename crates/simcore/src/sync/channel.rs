//! Unbounded multi-producer single-consumer channel over virtual time.
//!
//! Used by the simulated MPI runtime to deliver network packets and control
//! messages between rank processes.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

struct ChannelState<T> {
    queue: VecDeque<T>,
    recv_waker: Option<Waker>,
    senders: usize,
    receiver_alive: bool,
}

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders have been dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "channel closed: all senders dropped")
    }
}

impl std::error::Error for RecvError {}

/// Create an unbounded mpsc channel.
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let state = Rc::new(RefCell::new(ChannelState {
        queue: VecDeque::new(),
        recv_waker: None,
        senders: 1,
        receiver_alive: true,
    }));
    (
        Sender {
            state: Rc::clone(&state),
        },
        Receiver { state },
    )
}

/// Sending half; clonable.
pub struct Sender<T> {
    state: Rc<RefCell<ChannelState<T>>>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.state.borrow_mut().senders += 1;
        Sender {
            state: Rc::clone(&self.state),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut s = self.state.borrow_mut();
        s.senders -= 1;
        if s.senders == 0 {
            if let Some(w) = s.recv_waker.take() {
                w.wake();
            }
        }
    }
}

impl<T> Sender<T> {
    /// Enqueue a value (never blocks). Returns `false` if the receiver was
    /// dropped (the value is discarded).
    pub fn send(&self, value: T) -> bool {
        let mut s = self.state.borrow_mut();
        if !s.receiver_alive {
            return false;
        }
        s.queue.push_back(value);
        if let Some(w) = s.recv_waker.take() {
            w.wake();
        }
        true
    }
}

/// Receiving half; not clonable (single consumer).
pub struct Receiver<T> {
    state: Rc<RefCell<ChannelState<T>>>,
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.state.borrow_mut().receiver_alive = false;
    }
}

impl<T> Receiver<T> {
    /// Await the next value.
    pub fn recv(&mut self) -> Recv<'_, T> {
        Recv { receiver: self }
    }

    /// Non-blocking receive.
    pub fn try_recv(&mut self) -> Option<T> {
        self.state.borrow_mut().queue.pop_front()
    }

    /// Number of queued values.
    pub fn len(&self) -> usize {
        self.state.borrow().queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Future returned by [`Receiver::recv`].
pub struct Recv<'a, T> {
    receiver: &'a mut Receiver<T>,
}

impl<T> Future for Recv<'_, T> {
    type Output = Result<T, RecvError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Result<T, RecvError>> {
        let mut s = self.receiver.state.borrow_mut();
        if let Some(v) = s.queue.pop_front() {
            Poll::Ready(Ok(v))
        } else if s.senders == 0 {
            Poll::Ready(Err(RecvError))
        } else {
            s.recv_waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dur, Sim};

    #[test]
    fn send_then_recv() {
        let sim = Sim::new();
        let (tx, mut rx) = channel::<u32>();
        tx.send(5);
        let v = sim.block_on(async move { rx.recv().await.unwrap() });
        assert_eq!(v, 5);
    }

    #[test]
    fn recv_waits_for_sender() {
        let sim = Sim::new();
        let (tx, mut rx) = channel::<u32>();
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep(Dur::from_us(2)).await;
            tx.send(9);
        });
        let s2 = sim.clone();
        let got = sim.spawn(async move {
            let v = rx.recv().await.unwrap();
            (v, s2.now().as_us_f64())
        });
        sim.run();
        assert_eq!(got.try_take().unwrap(), (9, 2.0));
    }

    #[test]
    fn fifo_order_preserved() {
        let sim = Sim::new();
        let (tx, mut rx) = channel::<u32>();
        for i in 0..10 {
            tx.send(i);
        }
        let all = sim.block_on(async move {
            let mut v = Vec::new();
            for _ in 0..10 {
                v.push(rx.recv().await.unwrap());
            }
            v
        });
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn recv_errors_when_all_senders_dropped() {
        let sim = Sim::new();
        let (tx, mut rx) = channel::<u32>();
        tx.send(1);
        drop(tx);
        let out = sim.block_on(async move {
            let first = rx.recv().await;
            let second = rx.recv().await;
            (first, second)
        });
        assert_eq!(out.0, Ok(1));
        assert_eq!(out.1, Err(RecvError));
    }

    #[test]
    fn cloned_senders_keep_channel_open() {
        let sim = Sim::new();
        let (tx, mut rx) = channel::<u32>();
        let tx2 = tx.clone();
        drop(tx);
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep(Dur::from_us(1)).await;
            tx2.send(7);
            drop(tx2);
        });
        let got = sim.spawn(async move {
            let a = rx.recv().await;
            let b = rx.recv().await;
            (a, b)
        });
        sim.run();
        assert_eq!(got.try_take().unwrap(), (Ok(7), Err(RecvError)));
    }

    #[test]
    fn send_to_dropped_receiver_returns_false() {
        let (tx, rx) = channel::<u32>();
        drop(rx);
        assert!(!tx.send(3));
    }

    #[test]
    fn try_recv_and_len() {
        let (tx, mut rx) = channel::<u32>();
        assert!(rx.is_empty());
        tx.send(1);
        tx.send(2);
        assert_eq!(rx.len(), 2);
        assert_eq!(rx.try_recv(), Some(1));
        assert_eq!(rx.try_recv(), Some(2));
        assert_eq!(rx.try_recv(), None);
    }
}
