//! One-shot broadcast event.

use std::cell::RefCell;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

struct SignalState {
    set: bool,
    waiters: Vec<Waker>,
}

/// A one-shot event: any number of tasks can `wait()` until some task calls
/// `set()`. Once set, it stays set and all current and future waiters
/// resolve immediately.
///
/// This models completion flags such as "the CTS for this request arrived"
/// or "partition *k* of the incoming message landed".
#[derive(Clone)]
pub struct Signal {
    state: Rc<RefCell<SignalState>>,
}

impl std::fmt::Debug for Signal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Signal")
            .field("set", &self.is_set())
            .finish()
    }
}

impl Default for Signal {
    fn default() -> Self {
        Self::new()
    }
}

impl Signal {
    /// Create an unset signal.
    pub fn new() -> Signal {
        Signal {
            state: Rc::new(RefCell::new(SignalState {
                set: false,
                waiters: Vec::new(),
            })),
        }
    }

    /// Whether the signal has been set.
    pub fn is_set(&self) -> bool {
        self.state.borrow().set
    }

    /// Set the signal, waking all waiters. Idempotent.
    pub fn set(&self) {
        let mut s = self.state.borrow_mut();
        if s.set {
            return;
        }
        s.set = true;
        for w in s.waiters.drain(..) {
            w.wake();
        }
    }

    /// Wait until the signal is set.
    pub fn wait(&self) -> SignalWait {
        SignalWait {
            state: Rc::clone(&self.state),
        }
    }
}

/// Wait until **any** of the given signals is set; resolves to the index
/// of the first set signal (lowest index wins on ties).
///
/// The `MPI_Waitany` building block: consumers racing multiple
/// partitioned arrivals use this instead of polling.
pub fn wait_any(signals: Vec<Signal>) -> WaitAny {
    assert!(!signals.is_empty(), "wait_any needs at least one signal");
    WaitAny { signals }
}

/// Future returned by [`wait_any`].
pub struct WaitAny {
    signals: Vec<Signal>,
}

impl Future for WaitAny {
    type Output = usize;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<usize> {
        for (i, s) in self.signals.iter().enumerate() {
            if s.is_set() {
                return Poll::Ready(i);
            }
        }
        for s in &self.signals {
            s.state.borrow_mut().waiters.push(cx.waker().clone());
        }
        Poll::Pending
    }
}

/// Future returned by [`Signal::wait`].
pub struct SignalWait {
    state: Rc<RefCell<SignalState>>,
}

impl Future for SignalWait {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut s = self.state.borrow_mut();
        if s.set {
            Poll::Ready(())
        } else {
            s.waiters.push(cx.waker().clone());
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dur, Sim};
    use std::cell::Cell;

    #[test]
    fn set_before_wait_resolves_immediately() {
        let sim = Sim::new();
        let sig = Signal::new();
        sig.set();
        let sig2 = sig.clone();
        sim.block_on(async move { sig2.wait().await });
        assert!(sig.is_set());
    }

    #[test]
    fn waiters_resume_on_set() {
        let sim = Sim::new();
        let sig = Signal::new();
        let resumed = Rc::new(Cell::new(0));
        for _ in 0..5 {
            let sig = sig.clone();
            let r = Rc::clone(&resumed);
            sim.spawn(async move {
                sig.wait().await;
                r.set(r.get() + 1);
            });
        }
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep(Dur::from_us(3)).await;
            sig.set();
        });
        sim.run();
        assert_eq!(resumed.get(), 5);
        assert_eq!(sim.now().as_us_f64(), 3.0);
    }

    #[test]
    fn set_is_idempotent() {
        let sig = Signal::new();
        sig.set();
        sig.set();
        assert!(sig.is_set());
    }

    #[test]
    fn wait_any_resolves_to_first_set() {
        let sim = Sim::new();
        let sigs: Vec<Signal> = (0..4).map(|_| Signal::new()).collect();
        let winner = sim.spawn({
            let sigs = sigs.clone();
            async move { wait_any(sigs).await }
        });
        let s = sim.clone();
        let sig2 = sigs[2].clone();
        sim.spawn(async move {
            s.sleep(Dur::from_us(5)).await;
            sig2.set();
        });
        sim.run();
        assert_eq!(winner.try_take().unwrap(), 2);
    }

    #[test]
    fn wait_any_immediate_when_already_set() {
        let sim = Sim::new();
        let sigs: Vec<Signal> = (0..3).map(|_| Signal::new()).collect();
        sigs[0].set();
        sigs[2].set();
        let winner = sim.block_on({
            let sigs = sigs.clone();
            async move { wait_any(sigs).await }
        });
        assert_eq!(winner, 0, "lowest set index wins");
    }

    #[test]
    #[should_panic(expected = "at least one signal")]
    fn wait_any_empty_rejected() {
        // Construction itself panics; the future is never awaited.
        drop(wait_any(Vec::new()));
    }

    #[test]
    fn unset_signal_deadlocks_waiter() {
        let sim = Sim::new();
        let sig = Signal::new();
        sim.spawn(async move { sig.wait().await });
        let report = sim.try_run();
        assert_eq!(report.stuck_tasks, 1);
    }
}
