//! Exclusive FIFO resource with contention accounting.
//!
//! Models a serialized hardware/software resource such as an MPICH *virtual
//! communication interface* (VCI): one request is served at a time, requests
//! queue FIFO, and the grant reports how many requests were contending so
//! that a cost model can charge a contention penalty (cache-line bouncing on
//! the lock protecting the VCI grows with the number of waiters).

use std::cell::RefCell;
use std::rc::Rc;

use crate::sync::semaphore::{Semaphore, SemaphoreGuard};
use crate::time::{Dur, SimTime};
use crate::Sim;

/// Cumulative usage statistics of a [`Resource`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ResourceStats {
    /// Total number of grants.
    pub acquisitions: u64,
    /// Sum of time spent queued (virtual).
    pub total_wait: Dur,
    /// Maximum observed queue length (including the request itself).
    pub max_queue: usize,
}

struct ResourceState {
    stats: ResourceStats,
}

/// An exclusive, FIFO-fair resource.
#[derive(Clone)]
pub struct Resource {
    sem: Semaphore,
    state: Rc<RefCell<ResourceState>>,
    sim: Sim,
}

impl Resource {
    /// Create a resource bound to a simulation (for wait-time accounting).
    pub fn new(sim: &Sim) -> Resource {
        Resource {
            sem: Semaphore::new(1),
            state: Rc::new(RefCell::new(ResourceState {
                stats: ResourceStats::default(),
            })),
            sim: sim.clone(),
        }
    }

    /// Acquire exclusive access; FIFO order among waiters.
    pub async fn acquire(&self) -> ResourceGuard {
        let requested_at = self.sim.now();
        let queue_at_request = self.sem.waiting() + (1 - self.sem.available().min(1));
        {
            let mut st = self.state.borrow_mut();
            st.stats.max_queue = st.stats.max_queue.max(queue_at_request + 1);
        }
        let guard = self.sem.acquire().await;
        let granted_at = self.sim.now();
        let waiters_behind = self.sem.waiting();
        {
            let mut st = self.state.borrow_mut();
            st.stats.acquisitions += 1;
            st.stats.total_wait += granted_at.since(requested_at);
        }
        ResourceGuard {
            _permit: guard,
            waiters_behind,
            requested_at,
            granted_at,
        }
    }

    /// Acquire, hold for `busy`, then release. Returns the guard's
    /// contention observation for cost-model use.
    pub async fn occupy(&self, busy: Dur) -> ContentionObservation {
        let guard = self.acquire().await;
        let obs = guard.observation();
        self.sim.sleep(busy).await;
        drop(guard);
        obs
    }

    /// Number of tasks queued (excluding the current holder).
    pub fn waiting(&self) -> usize {
        self.sem.waiting()
    }

    /// Whether the resource is currently held.
    pub fn is_busy(&self) -> bool {
        self.sem.available() == 0
    }

    /// Snapshot of cumulative statistics.
    pub fn stats(&self) -> ResourceStats {
        self.state.borrow().stats
    }
}

/// What a grant observed about contention; consumed by cost models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContentionObservation {
    /// Tasks still queued behind this request when it was granted.
    pub waiters_behind: usize,
    /// Virtual time spent queued.
    pub queued_for: Dur,
}

/// Guard for exclusive access to a [`Resource`].
pub struct ResourceGuard {
    _permit: SemaphoreGuard,
    waiters_behind: usize,
    requested_at: SimTime,
    granted_at: SimTime,
}

impl ResourceGuard {
    /// Tasks that were still queued behind this request at grant time.
    pub fn waiters_behind(&self) -> usize {
        self.waiters_behind
    }

    /// Virtual time this request spent queued before the grant.
    pub fn queued_for(&self) -> Dur {
        self.granted_at.since(self.requested_at)
    }

    /// Bundle the contention facts for cost-model use.
    pub fn observation(&self) -> ContentionObservation {
        ContentionObservation {
            waiters_behind: self.waiters_behind,
            queued_for: self.queued_for(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_user_sees_no_contention() {
        let sim = Sim::new();
        let res = Resource::new(&sim);
        let res2 = res.clone();
        let obs = sim.block_on(async move { res2.occupy(Dur::from_us(1)).await });
        assert_eq!(obs.waiters_behind, 0);
        assert_eq!(obs.queued_for, Dur::ZERO);
        assert_eq!(res.stats().acquisitions, 1);
    }

    #[test]
    fn contended_acquires_serialize_and_report_waiters() {
        let sim = Sim::new();
        let res = Resource::new(&sim);
        let observations = Rc::new(RefCell::new(Vec::new()));
        for _ in 0..4 {
            let res = res.clone();
            let obs = Rc::clone(&observations);
            sim.spawn(async move {
                let o = res.occupy(Dur::from_us(2)).await;
                obs.borrow_mut().push(o);
            });
        }
        sim.run();
        assert_eq!(sim.now().as_us_f64(), 8.0);
        let obs = observations.borrow();
        // Grants happen at 0,2,4,6us. The first requester is granted before
        // the others are even polled (sees 0 behind); the rest observe the
        // queue draining: 2, 1, 0.
        let behind: Vec<usize> = obs.iter().map(|o| o.waiters_behind).collect();
        assert_eq!(behind, vec![0, 2, 1, 0]);
        let waited: Vec<f64> = obs.iter().map(|o| o.queued_for.as_us_f64()).collect();
        assert_eq!(waited, vec![0.0, 2.0, 4.0, 6.0]);
    }

    #[test]
    fn stats_accumulate() {
        let sim = Sim::new();
        let res = Resource::new(&sim);
        for _ in 0..3 {
            let res = res.clone();
            sim.spawn(async move {
                res.occupy(Dur::from_us(1)).await;
            });
        }
        sim.run();
        let st = res.stats();
        assert_eq!(st.acquisitions, 3);
        // Waits: 0 + 1 + 2 us.
        assert_eq!(st.total_wait, Dur::from_us(3));
        assert_eq!(st.max_queue, 3);
    }

    #[test]
    fn is_busy_reflects_holder() {
        let sim = Sim::new();
        let res = Resource::new(&sim);
        let res2 = res.clone();
        let s = sim.clone();
        sim.spawn(async move {
            let _g = res2.acquire().await;
            s.sleep(Dur::from_us(5)).await;
        });
        let res3 = res.clone();
        let s2 = sim.clone();
        let probe = sim.spawn(async move {
            s2.sleep(Dur::from_us(1)).await;
            let during = res3.is_busy();
            s2.sleep(Dur::from_us(10)).await;
            let after = res3.is_busy();
            (during, after)
        });
        sim.run();
        assert_eq!(probe.try_take().unwrap(), (true, false));
    }
}
