//! Virtual time for the discrete-event simulator.
//!
//! Time is kept in integer **picoseconds** so that every event has an exact,
//! platform-independent timestamp (25 GB/s is 40 ps/byte, so per-byte costs
//! stay integral at realistic bandwidths). The `u64` range covers ~208 days
//! of simulated time, far beyond any benchmark here.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

const PS_PER_NS: u64 = 1_000;
const PS_PER_US: u64 = 1_000_000;
const PS_PER_MS: u64 = 1_000_000_000;
const PS_PER_S: u64 = 1_000_000_000_000;

/// A span of virtual time (picosecond resolution).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dur(u64);

impl Dur {
    /// Zero-length duration.
    pub const ZERO: Dur = Dur(0);

    /// From raw picoseconds.
    pub const fn from_ps(ps: u64) -> Dur {
        Dur(ps)
    }

    /// From nanoseconds.
    pub const fn from_ns(ns: u64) -> Dur {
        Dur(ns * PS_PER_NS)
    }

    /// From microseconds.
    pub const fn from_us(us: u64) -> Dur {
        Dur(us * PS_PER_US)
    }

    /// From milliseconds.
    pub const fn from_ms(ms: u64) -> Dur {
        Dur(ms * PS_PER_MS)
    }

    /// From seconds.
    pub const fn from_s(s: u64) -> Dur {
        Dur(s * PS_PER_S)
    }

    /// From fractional seconds, rounded to the nearest picosecond.
    /// Negative and non-finite inputs are clamped to zero.
    pub fn from_secs_f64(s: f64) -> Dur {
        if !s.is_finite() || s <= 0.0 {
            return Dur::ZERO;
        }
        Dur((s * PS_PER_S as f64).round() as u64)
    }

    /// From fractional microseconds, rounded to the nearest picosecond.
    pub fn from_us_f64(us: f64) -> Dur {
        Dur::from_secs_f64(us * 1e-6)
    }

    /// From fractional nanoseconds, rounded to the nearest picosecond.
    pub fn from_ns_f64(ns: f64) -> Dur {
        Dur::from_secs_f64(ns * 1e-9)
    }

    /// Raw picoseconds.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// As fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_S as f64
    }

    /// As fractional microseconds.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// As fractional nanoseconds.
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Dur) -> Dur {
        Dur(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition.
    pub fn checked_add(self, rhs: Dur) -> Option<Dur> {
        self.0.checked_add(rhs.0).map(Dur)
    }

    /// Scale by a non-negative float, rounding to the nearest picosecond.
    pub fn mul_f64(self, k: f64) -> Dur {
        assert!(k.is_finite() && k >= 0.0, "scale must be finite and >= 0");
        Dur((self.0 as f64 * k).round() as u64)
    }
}

impl Add for Dur {
    type Output = Dur;
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0 + rhs.0)
    }
}

impl AddAssign for Dur {
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl Sub for Dur {
    type Output = Dur;
    fn sub(self, rhs: Dur) -> Dur {
        Dur(self.0 - rhs.0)
    }
}

impl SubAssign for Dur {
    fn sub_assign(&mut self, rhs: Dur) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Dur {
    type Output = Dur;
    fn mul(self, rhs: u64) -> Dur {
        Dur(self.0 * rhs)
    }
}

impl Div<u64> for Dur {
    type Output = Dur;
    fn div(self, rhs: u64) -> Dur {
        Dur(self.0 / rhs)
    }
}

impl Sum for Dur {
    fn sum<I: Iterator<Item = Dur>>(iter: I) -> Dur {
        iter.fold(Dur::ZERO, Add::add)
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps == 0 {
            write!(f, "0s")
        } else if ps < PS_PER_NS {
            write!(f, "{ps}ps")
        } else if ps < PS_PER_US {
            write!(f, "{:.3}ns", self.as_ns_f64())
        } else if ps < PS_PER_MS {
            write!(f, "{:.3}us", self.as_us_f64())
        } else if ps < PS_PER_S {
            write!(f, "{:.3}ms", self.as_secs_f64() * 1e3)
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

/// An absolute point in virtual time (picoseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// From raw picoseconds since epoch.
    pub const fn from_ps(ps: u64) -> SimTime {
        SimTime(ps)
    }

    /// Raw picoseconds since epoch.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Seconds since epoch.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_S as f64
    }

    /// Microseconds since epoch.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// Nanoseconds since epoch.
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }

    /// Elapsed duration since `earlier`. Panics if `earlier` is later.
    pub fn since(self, earlier: SimTime) -> Dur {
        assert!(
            self.0 >= earlier.0,
            "SimTime::since: earlier ({}) is after self ({})",
            earlier.0,
            self.0
        );
        Dur(self.0 - earlier.0)
    }

    /// Saturating elapsed duration since `earlier`.
    pub fn saturating_since(self, earlier: SimTime) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }
}

impl Add<Dur> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Dur) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<Dur> for SimTime {
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", Dur(self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constructors_agree() {
        assert_eq!(Dur::from_ns(1), Dur::from_ps(1_000));
        assert_eq!(Dur::from_us(1), Dur::from_ns(1_000));
        assert_eq!(Dur::from_ms(1), Dur::from_us(1_000));
        assert_eq!(Dur::from_s(1), Dur::from_ms(1_000));
    }

    #[test]
    fn secs_f64_roundtrip() {
        let d = Dur::from_secs_f64(1.22e-6);
        assert_eq!(d, Dur::from_ps(1_220_000));
        assert!((d.as_secs_f64() - 1.22e-6).abs() < 1e-15);
    }

    #[test]
    fn from_secs_f64_clamps_nonpositive() {
        assert_eq!(Dur::from_secs_f64(-1.0), Dur::ZERO);
        assert_eq!(Dur::from_secs_f64(f64::NAN), Dur::ZERO);
        assert_eq!(Dur::from_secs_f64(f64::NEG_INFINITY), Dur::ZERO);
    }

    #[test]
    fn bandwidth_cost_is_exact_at_25_gbs() {
        // 25 GB/s = 40 ps per byte.
        let per_byte = Dur::from_secs_f64(1.0 / 25e9);
        assert_eq!(per_byte, Dur::from_ps(40));
        assert_eq!(per_byte * 1_000_000, Dur::from_us(40));
    }

    #[test]
    fn arithmetic() {
        let a = Dur::from_us(3);
        let b = Dur::from_us(1);
        assert_eq!(a + b, Dur::from_us(4));
        assert_eq!(a - b, Dur::from_us(2));
        assert_eq!(a * 2, Dur::from_us(6));
        assert_eq!(a / 3, Dur::from_us(1));
        assert_eq!(b.saturating_sub(a), Dur::ZERO);
        assert_eq!(a.mul_f64(0.5), Dur::from_ns(1500));
    }

    #[test]
    fn simtime_unit_views_agree() {
        let t = SimTime::ZERO + Dur::from_us(3);
        assert_eq!(t.as_ns_f64(), 3000.0);
        assert_eq!(t.as_us_f64(), 3.0);
    }

    #[test]
    fn simtime_ordering_and_since() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + Dur::from_us(5);
        assert!(t1 > t0);
        assert_eq!(t1.since(t0), Dur::from_us(5));
        assert_eq!(t0.saturating_since(t1), Dur::ZERO);
    }

    #[test]
    #[should_panic(expected = "earlier")]
    fn since_panics_when_reversed() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + Dur::from_ns(1);
        let _ = t0.since(t1);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(Dur::from_ps(500).to_string(), "500ps");
        assert_eq!(Dur::from_ns(150).to_string(), "150.000ns");
        assert_eq!(Dur::from_ns(1500).to_string(), "1.500us");
        assert_eq!(Dur::from_us(2).to_string(), "2.000us");
        assert_eq!(Dur::from_ms(3).to_string(), "3.000ms");
        assert_eq!(Dur::from_s(4).to_string(), "4.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: Dur = (1..=4u64).map(Dur::from_us).sum();
        assert_eq!(total, Dur::from_us(10));
    }
}
