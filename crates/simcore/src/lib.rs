//! `pcomm-simcore` — a deterministic discrete-event simulation kernel.
//!
//! This crate is the substrate under the simulated MPI runtime
//! (`pcomm-simmpi`): simulated processes (MPI ranks, OpenMP threads, NIC
//! engines) are async tasks driven over **virtual time** by a
//! single-threaded executor. Determinism is a hard requirement — every
//! figure in the reproduced paper must be bit-identical across runs — so:
//!
//! * time is integer picoseconds ([`SimTime`], [`Dur`]);
//! * ready tasks run in FIFO wake order; simultaneous timers fire in
//!   registration order;
//! * all randomness comes from explicitly seeded [`pcomm_prng`] generators.
//!
//! # Example
//!
//! ```
//! use pcomm_simcore::{Sim, Dur, sync::Barrier};
//!
//! let sim = Sim::new();
//! let barrier = Barrier::new(2);
//! for i in 0..2u64 {
//!     let s = sim.clone();
//!     let b = barrier.clone();
//!     sim.spawn(async move {
//!         s.sleep(Dur::from_us(i * 10)).await; // unbalanced compute
//!         b.wait().await;                      // synchronize
//!     });
//! }
//! sim.run();
//! assert_eq!(sim.now().as_us_f64(), 10.0); // barrier waits for slowest
//! ```

#![warn(missing_docs)]

mod executor;
pub mod sync;
mod time;

pub use executor::{JoinHandle, RunReport, Sim, Sleep, TaskId, YieldNow};
pub use time::{Dur, SimTime};

#[cfg(test)]
mod integration_tests {
    use super::sync::*;
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// A miniature "pipelined communication" smoke test: N workers compute
    /// with different delays and push results through a shared serialized
    /// resource; total time = max(compute) + serialized transfer tail.
    #[test]
    fn pipeline_shape() {
        let sim = Sim::new();
        let vci = Resource::new(&sim);
        let xfer = Dur::from_us(5);
        for i in 0..4u64 {
            let s = sim.clone();
            let vci = vci.clone();
            sim.spawn(async move {
                s.sleep(Dur::from_us(i * 2)).await; // compute: 0,2,4,6 us
                vci.occupy(xfer).await; // serialized send
            });
        }
        sim.run();
        // Sends at 0..5, 5..10, 10..15, 15..20 (first three queue up faster
        // than the resource drains; the last arrives at 6 but waits).
        assert_eq!(sim.now().as_us_f64(), 20.0);
    }

    /// Early-bird effect in miniature: pipelined beats bulk-synchronized
    /// when compute delay overlaps the transfer of early partitions.
    #[test]
    fn early_bird_beats_bulk() {
        fn bulk(delay_us: u64, parts: u64, xfer: Dur) -> f64 {
            let sim = Sim::new();
            let barrier = Barrier::new(parts as usize);
            let link = Resource::new(&sim);
            for i in 0..parts {
                let s = sim.clone();
                let b = barrier.clone();
                let link = link.clone();
                sim.spawn(async move {
                    s.sleep(Dur::from_us(if i == parts - 1 { delay_us } else { 0 }))
                        .await;
                    b.wait().await; // bulk synchronization
                    link.occupy(xfer).await;
                });
            }
            sim.run();
            sim.now().as_us_f64()
        }
        fn pipelined(delay_us: u64, parts: u64, xfer: Dur) -> f64 {
            let sim = Sim::new();
            let link = Resource::new(&sim);
            for i in 0..parts {
                let s = sim.clone();
                let link = link.clone();
                sim.spawn(async move {
                    s.sleep(Dur::from_us(if i == parts - 1 { delay_us } else { 0 }))
                        .await;
                    link.occupy(xfer).await; // send as soon as ready
                });
            }
            sim.run();
            sim.now().as_us_f64()
        }
        let xfer = Dur::from_us(10);
        // Delay (25us) < transfer of first 3 partitions (30us): fully hidden.
        assert_eq!(bulk(25, 4, xfer), 25.0 + 40.0);
        assert_eq!(pipelined(25, 4, xfer), 40.0);
        // Delay (35us) > 30us: partially hidden.
        assert_eq!(pipelined(35, 4, xfer), 45.0);
    }

    /// Producer/consumer across a channel with timed sends.
    #[test]
    fn producer_consumer_times() {
        let sim = Sim::new();
        let (tx, mut rx) = channel::<u64>();
        let s = sim.clone();
        sim.spawn(async move {
            for i in 0..5u64 {
                s.sleep(Dur::from_us(10)).await;
                tx.send(i);
            }
        });
        let s2 = sim.clone();
        let arrivals = Rc::new(RefCell::new(Vec::new()));
        let arr = Rc::clone(&arrivals);
        sim.spawn(async move {
            while let Ok(v) = rx.recv().await {
                arr.borrow_mut().push((v, s2.now().as_us_f64()));
            }
        });
        sim.run();
        let expected: Vec<(u64, f64)> = (0..5).map(|i| (i, (i as f64 + 1.0) * 10.0)).collect();
        assert_eq!(*arrivals.borrow(), expected);
    }
}
