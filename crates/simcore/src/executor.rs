//! The discrete-event executor.
//!
//! Simulated processes are plain Rust `Future`s driven by a single-threaded
//! executor over virtual time. Blocking operations (`sleep`, barriers,
//! channel receives, resource acquisition) register wakers that fire either
//! immediately (state change) or at a scheduled virtual time (timers).
//!
//! Determinism: the run loop drains ready tasks in FIFO wake order, then
//! advances the clock to the earliest timer; ties are broken by registration
//! sequence number. No OS threads, no wall-clock time, no global state.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};

use crate::time::{Dur, SimTime};

/// Identifier of a spawned task.
pub type TaskId = u64;

/// The cross-thread-safe part of the executor: the ready queue that wakers
/// push into. Wakers must be `Send + Sync`, so this lives behind an `Arc`
/// even though the executor itself is single-threaded.
struct WakeQueue {
    ready: Mutex<VecDeque<TaskId>>,
}

impl WakeQueue {
    fn push(&self, id: TaskId) {
        self.ready.lock().unwrap().push_back(id);
    }

    fn pop(&self) -> Option<TaskId> {
        self.ready.lock().unwrap().pop_front()
    }
}

struct TaskWaker {
    queue: Arc<WakeQueue>,
    id: TaskId,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.queue.push(self.id);
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.queue.push(self.id);
    }
}

/// A timer entry; ordered by `(at, seq)` so simultaneous timers fire in
/// registration order.
struct Timer {
    at: SimTime,
    seq: u64,
    waker: Waker,
}

impl PartialEq for Timer {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Timer {}
impl PartialOrd for Timer {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Timer {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

type BoxedTask = Pin<Box<dyn Future<Output = ()>>>;

struct Core {
    now: SimTime,
    timer_seq: u64,
    timers: BinaryHeap<Reverse<Timer>>,
    tasks: HashMap<TaskId, BoxedTask>,
    next_task: TaskId,
    events_processed: u64,
    running: bool,
}

/// Outcome of [`Sim::try_run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunReport {
    /// Number of tasks that never completed (a nonzero value indicates a
    /// deadlock: tasks waiting on conditions no other task can produce).
    pub stuck_tasks: usize,
    /// Virtual time when the run loop stopped.
    pub finished_at: SimTime,
    /// Total task polls performed.
    pub polls: u64,
}

/// Handle to a discrete-event simulation.
///
/// Cheap to clone; all clones refer to the same simulation. Not `Send`:
/// the executor and every simulated entity live on one thread.
#[derive(Clone)]
pub struct Sim {
    core: Rc<RefCell<Core>>,
    wakes: Arc<WakeQueue>,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl Sim {
    /// Create a new simulation at `t = 0` with no tasks.
    pub fn new() -> Sim {
        Sim {
            core: Rc::new(RefCell::new(Core {
                now: SimTime::ZERO,
                timer_seq: 0,
                timers: BinaryHeap::new(),
                tasks: HashMap::new(),
                next_task: 0,
                events_processed: 0,
                running: false,
            })),
            wakes: Arc::new(WakeQueue {
                ready: Mutex::new(VecDeque::new()),
            }),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.core.borrow().now
    }

    /// Number of tasks spawned and not yet completed.
    pub fn live_tasks(&self) -> usize {
        self.core.borrow().tasks.len()
    }

    /// Total task polls performed so far.
    pub fn polls(&self) -> u64 {
        self.core.borrow().events_processed
    }

    /// Spawn a task. It will first be polled when the simulation runs.
    pub fn spawn<T: 'static>(&self, fut: impl Future<Output = T> + 'static) -> JoinHandle<T> {
        let state = Rc::new(RefCell::new(JoinState {
            result: None,
            finished: false,
            waiters: Vec::new(),
        }));
        let state2 = Rc::clone(&state);
        let wrapped = async move {
            let result = fut.await;
            let mut s = state2.borrow_mut();
            s.result = Some(result);
            s.finished = true;
            for w in s.waiters.drain(..) {
                w.wake();
            }
        };
        let id = {
            let mut core = self.core.borrow_mut();
            let id = core.next_task;
            core.next_task += 1;
            core.tasks.insert(id, Box::pin(wrapped));
            id
        };
        self.wakes.push(id);
        JoinHandle { state }
    }

    /// Future resolving after `d` of virtual time.
    pub fn sleep(&self, d: Dur) -> Sleep {
        self.sleep_until(self.now() + d)
    }

    /// Future resolving at virtual time `at` (immediately if in the past).
    pub fn sleep_until(&self, at: SimTime) -> Sleep {
        Sleep {
            sim: self.clone(),
            at,
            registered: false,
        }
    }

    /// Future that yields once, letting other ready tasks run at the same
    /// virtual time before this task continues.
    pub fn yield_now(&self) -> YieldNow {
        YieldNow { polled: false }
    }

    /// Register a waker to fire at virtual time `at`.
    pub(crate) fn register_timer(&self, at: SimTime, waker: Waker) {
        let mut core = self.core.borrow_mut();
        assert!(
            at >= core.now,
            "timer registered in the past: {} < {}",
            at,
            core.now
        );
        let seq = core.timer_seq;
        core.timer_seq += 1;
        core.timers.push(Reverse(Timer { at, seq, waker }));
    }

    /// Run until no runnable work remains. Panics if tasks are left stuck
    /// (deadlock); use [`Sim::try_run`] to inspect instead.
    pub fn run(&self) {
        let report = self.try_run();
        assert_eq!(
            report.stuck_tasks, 0,
            "simulation deadlocked at {} with {} stuck task(s)",
            report.finished_at, report.stuck_tasks
        );
    }

    /// Run until no runnable work remains and report the outcome.
    pub fn try_run(&self) -> RunReport {
        {
            let mut core = self.core.borrow_mut();
            assert!(!core.running, "Sim::run is not reentrant");
            core.running = true;
        }
        loop {
            // Drain every ready task at the current virtual time.
            while let Some(id) = self.wakes.pop() {
                self.poll_task(id);
            }
            // Advance the clock to the earliest timer, if any.
            let timer = self.core.borrow_mut().timers.pop();
            match timer {
                Some(Reverse(t)) => {
                    self.core.borrow_mut().now = t.at;
                    t.waker.wake();
                }
                None => break,
            }
        }
        let mut core = self.core.borrow_mut();
        core.running = false;
        RunReport {
            stuck_tasks: core.tasks.len(),
            finished_at: core.now,
            polls: core.events_processed,
        }
    }

    /// Spawn `fut`, run the simulation to completion, and return its result.
    ///
    /// Must be called from outside the simulation (not from within a task).
    pub fn block_on<T: 'static>(&self, fut: impl Future<Output = T> + 'static) -> T {
        let handle = self.spawn(fut);
        self.run();
        handle
            .try_take()
            .expect("block_on: root task did not complete")
    }

    fn poll_task(&self, id: TaskId) {
        // A stale waker may refer to a finished task; ignore it.
        let Some(mut fut) = self.core.borrow_mut().tasks.remove(&id) else {
            return;
        };
        self.core.borrow_mut().events_processed += 1;
        let waker = Waker::from(Arc::new(TaskWaker {
            queue: Arc::clone(&self.wakes),
            id,
        }));
        let mut cx = Context::from_waker(&waker);
        // The core borrow is NOT held here: the future may call spawn/now/
        // sleep, which take their own short borrows.
        if fut.as_mut().poll(&mut cx).is_pending() {
            self.core.borrow_mut().tasks.insert(id, fut);
        }
    }
}

struct JoinState<T> {
    result: Option<T>,
    finished: bool,
    waiters: Vec<Waker>,
}

/// Awaitable handle to a spawned task's result.
pub struct JoinHandle<T> {
    state: Rc<RefCell<JoinState<T>>>,
}

impl<T> JoinHandle<T> {
    /// Whether the task has completed.
    pub fn is_finished(&self) -> bool {
        self.state.borrow().finished
    }

    /// Take the result if the task has completed (returns `None` before
    /// completion or if the result was already taken).
    pub fn try_take(&self) -> Option<T> {
        self.state.borrow_mut().result.take()
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = T;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut s = self.state.borrow_mut();
        if s.finished {
            Poll::Ready(s.result.take().expect("JoinHandle result already taken"))
        } else {
            s.waiters.push(cx.waker().clone());
            Poll::Pending
        }
    }
}

/// Future returned by [`Sim::sleep`] / [`Sim::sleep_until`].
pub struct Sleep {
    sim: Sim,
    at: SimTime,
    registered: bool,
}

impl Future for Sleep {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.sim.now() >= self.at {
            Poll::Ready(())
        } else if !self.registered {
            let at = self.at;
            self.sim.register_timer(at, cx.waker().clone());
            self.registered = true;
            Poll::Pending
        } else {
            // Spurious wake before the deadline; the timer is still armed
            // and its waker targets this same task, so just wait.
            Poll::Pending
        }
    }
}

/// Future returned by [`Sim::yield_now`].
pub struct YieldNow {
    polled: bool,
}

impl Future for YieldNow {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.polled {
            Poll::Ready(())
        } else {
            self.polled = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn empty_sim_runs() {
        let sim = Sim::new();
        let report = sim.try_run();
        assert_eq!(report.stuck_tasks, 0);
        assert_eq!(report.finished_at, SimTime::ZERO);
    }

    #[test]
    fn block_on_returns_value() {
        let sim = Sim::new();
        let v = sim.block_on(async { 42 });
        assert_eq!(v, 42);
    }

    #[test]
    fn sleep_advances_virtual_time() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.block_on(async move {
            s.sleep(Dur::from_us(7)).await;
            assert_eq!(s.now(), SimTime::ZERO + Dur::from_us(7));
            s.sleep(Dur::from_ns(3)).await;
            assert_eq!(s.now(), SimTime::ZERO + Dur::from_us(7) + Dur::from_ns(3));
        });
    }

    #[test]
    fn sleep_zero_completes() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.block_on(async move {
            s.sleep(Dur::ZERO).await;
            assert_eq!(s.now(), SimTime::ZERO);
        });
    }

    #[test]
    fn concurrent_sleeps_wall_time_is_max() {
        let sim = Sim::new();
        let s = sim.clone();
        let a = sim.spawn({
            let s = s.clone();
            async move { s.sleep(Dur::from_us(10)).await }
        });
        let b = sim.spawn({
            let s = s.clone();
            async move { s.sleep(Dur::from_us(4)).await }
        });
        sim.run();
        assert!(a.is_finished() && b.is_finished());
        assert_eq!(sim.now(), SimTime::ZERO + Dur::from_us(10));
    }

    #[test]
    fn simultaneous_timers_fire_in_registration_order() {
        let sim = Sim::new();
        let order = Rc::new(RefCell::new(Vec::new()));
        for i in 0..8 {
            let s = sim.clone();
            let order = Rc::clone(&order);
            sim.spawn(async move {
                s.sleep(Dur::from_us(5)).await;
                order.borrow_mut().push(i);
            });
        }
        sim.run();
        assert_eq!(*order.borrow(), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn join_handle_awaits_result() {
        let sim = Sim::new();
        let s = sim.clone();
        let result = sim.block_on(async move {
            let h = s.spawn({
                let s = s.clone();
                async move {
                    s.sleep(Dur::from_us(1)).await;
                    "done"
                }
            });
            h.await
        });
        assert_eq!(result, "done");
    }

    #[test]
    fn join_handle_try_take_before_finish_is_none() {
        let sim = Sim::new();
        let s = sim.clone();
        let h = sim.spawn(async move { s.sleep(Dur::from_us(1)).await });
        assert!(!h.is_finished());
        assert!(h.try_take().is_none());
        sim.run();
        assert!(h.is_finished());
        assert!(h.try_take().is_some());
        assert!(h.try_take().is_none());
    }

    #[test]
    fn deadlock_detected() {
        let sim = Sim::new();
        // A task that waits on a JoinHandle of a task that never finishes
        // because it waits on a timerless pending future.
        struct Never;
        impl Future for Never {
            type Output = ();
            fn poll(self: Pin<&mut Self>, _: &mut Context<'_>) -> Poll<()> {
                Poll::Pending
            }
        }
        sim.spawn(Never);
        let report = sim.try_run();
        assert_eq!(report.stuck_tasks, 1);
    }

    #[test]
    #[should_panic(expected = "deadlocked")]
    fn run_panics_on_deadlock() {
        let sim = Sim::new();
        struct Never;
        impl Future for Never {
            type Output = ();
            fn poll(self: Pin<&mut Self>, _: &mut Context<'_>) -> Poll<()> {
                Poll::Pending
            }
        }
        sim.spawn(Never);
        sim.run();
    }

    #[test]
    fn yield_now_interleaves_same_time_tasks() {
        let sim = Sim::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        for name in ["a", "b"] {
            let s = sim.clone();
            let log = Rc::clone(&log);
            sim.spawn(async move {
                log.borrow_mut().push(format!("{name}1"));
                s.yield_now().await;
                log.borrow_mut().push(format!("{name}2"));
            });
        }
        sim.run();
        assert_eq!(*log.borrow(), vec!["a1", "b1", "a2", "b2"]);
    }

    #[test]
    fn spawn_from_within_task() {
        let sim = Sim::new();
        let s = sim.clone();
        let hit = Rc::new(Cell::new(false));
        let hit2 = Rc::clone(&hit);
        sim.block_on(async move {
            let inner = s.spawn(async move {
                hit2.set(true);
                5
            });
            assert_eq!(inner.await, 5);
        });
        assert!(hit.get());
    }

    #[test]
    fn nested_sleeps_accumulate_deterministically() {
        let sim = Sim::new();
        let s = sim.clone();
        let t = sim.block_on(async move {
            for _ in 0..100 {
                s.sleep(Dur::from_ns(10)).await;
            }
            s.now()
        });
        assert_eq!(t, SimTime::ZERO + Dur::from_us(1));
    }

    #[test]
    fn many_tasks_complete() {
        let sim = Sim::new();
        let counter = Rc::new(Cell::new(0u32));
        for i in 0..1000 {
            let s = sim.clone();
            let c = Rc::clone(&counter);
            sim.spawn(async move {
                s.sleep(Dur::from_ns(i % 17)).await;
                c.set(c.get() + 1);
            });
        }
        sim.run();
        assert_eq!(counter.get(), 1000);
        assert_eq!(sim.live_tasks(), 0);
    }

    #[test]
    fn identical_runs_produce_identical_poll_counts() {
        fn build_and_run() -> (u64, SimTime) {
            let sim = Sim::new();
            for i in 0..64u64 {
                let s = sim.clone();
                sim.spawn(async move {
                    s.sleep(Dur::from_ns(i * 3 % 29)).await;
                    s.yield_now().await;
                    s.sleep(Dur::from_ns(i % 7)).await;
                });
            }
            let report = sim.try_run();
            (report.polls, report.finished_at)
        }
        assert_eq!(build_and_run(), build_and_run());
    }
}
