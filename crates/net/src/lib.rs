//! `pcomm-net` — the inter-process half of the pcomm transport layer.
//!
//! This crate is deliberately free of any dependency on `pcomm-core`: it
//! only knows about bytes, sockets and processes. It provides
//!
//! * [`frame`] — the versioned, length-prefixed wire protocol every
//!   backend speaks (eager payloads, RTS/CTS rendezvous, barrier,
//!   one-sided put/get, abort/shutdown);
//! * [`endpoint`] — a stream abstraction over Unix domain sockets and
//!   TCP loopback, so the progress engine is backend-agnostic;
//! * [`mesh`] — full-mesh connection establishment between the rank
//!   processes of one universe, rendezvousing through a shared
//!   directory;
//! * [`faults`] — seeded wire-level fault injection (torn writes,
//!   short reads, garbage, resets, lane kill, half-open death) for
//!   chaos runs, wrapped around any endpoint;
//! * [`launch`] — the `PCOMM_NET_*` environment contract between a
//!   launcher and the rank processes, plus helpers to spawn ranks
//!   (used by the `pcomm-launch` binary and
//!   `Universe::run_multiprocess` in `pcomm-core`).
//!
//! The matching in-process glue — the `Transport` seam in
//! `pcomm-core::fabric` and the progress-engine threads that own these
//! sockets — lives in `pcomm-core`, which depends on this crate.

#![warn(missing_docs)]

pub mod endpoint;
pub mod faults;
pub mod frame;
pub mod ipc;
pub mod launch;
pub mod mesh;
pub mod sys;

pub use endpoint::Endpoint;
pub use faults::{WireFault, WireFaults};
pub use frame::Frame;
pub use launch::MultiprocEnv;
pub use mesh::{Backend, Mesh, MeshConfig};
