//! Seeded wire-level fault injection.
//!
//! [`WireFaults`] describes a plan of *wire-class* faults — torn
//! (partial) writes, short reads, injected garbage bytes, connection
//! reset at a frame boundary, lane kill after a byte threshold, and
//! half-open silent death — and an [`Endpoint`] wrapped via
//! [`Endpoint::with_faults`] applies them on every `read`/`write` call.
//!
//! Every decision is a pure function of `(seed, peer, lane, call
//! index)`: two runs with the same plan and the same call sequence
//! inject bit-for-bit the same faults, so a failing chaos run replays
//! exactly. The probability draws use the same SplitMix64 folding
//! discipline as the message-level `FaultPlan` in `pcomm-trace`, but
//! live here so `pcomm-net` stays free of any `pcomm-core` dependency:
//! the runtime converts its parsed `PCOMM_FAULTS` plan into a
//! [`WireFaults`] when it builds the socket transport.

use std::fmt;
use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use pcomm_prng::{Rng64, SplitMix64};

use crate::endpoint::Endpoint;

/// Domain separator for write-side draws.
const DOMAIN_WRITE: u64 = 0x7772; // "wr"
/// Domain separator for read-side draws.
const DOMAIN_READ: u64 = 0x7264; // "rd"

/// One wire-class fault, as injected (reported through the
/// [`WireFaults::on_fault`] observer and counted per endpoint).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFault {
    /// A write call delivered only a prefix of the caller's bytes.
    TornWrite,
    /// A read call returned fewer bytes than the peer had available.
    ShortRead,
    /// A byte of an outgoing write was flipped in flight.
    Garbage,
    /// The connection was reset (socket shut down, error returned).
    Reset,
    /// A lane was killed after its configured byte threshold.
    LaneKill,
    /// Writes are silently swallowed: the peer sees a live socket that
    /// never speaks again.
    HalfOpen,
}

impl WireFault {
    /// Stable short name (used by counters and log lines).
    pub fn name(self) -> &'static str {
        match self {
            WireFault::TornWrite => "torn-write",
            WireFault::ShortRead => "short-read",
            WireFault::Garbage => "garbage",
            WireFault::Reset => "reset",
            WireFault::LaneKill => "lane-kill",
            WireFault::HalfOpen => "half-open",
        }
    }

    /// Index into per-endpoint fault counters.
    fn slot(self) -> usize {
        match self {
            WireFault::TornWrite => 0,
            WireFault::ShortRead => 1,
            WireFault::Garbage => 2,
            WireFault::Reset => 3,
            WireFault::LaneKill => 4,
            WireFault::HalfOpen => 5,
        }
    }
}

/// Observer invoked synchronously for every injected fault (the runtime
/// uses it to emit trace events without `pcomm-net` knowing about the
/// tracer).
pub type FaultObserver = Arc<dyn Fn(WireFault, u32, u32) + Send + Sync>;

/// A seeded wire-fault plan shared by every wrapped endpoint of one
/// transport. Probabilities are per `read`/`write` *call*; thresholds
/// are cumulative bytes written on the matching lane.
#[derive(Clone, Default)]
pub struct WireFaults {
    /// Seed every decision derives from.
    pub seed: u64,
    /// Probability a write delivers only a seeded prefix.
    pub torn: f64,
    /// Probability a read returns fewer bytes than requested.
    pub short_read: f64,
    /// Probability one byte of a write is flipped in flight.
    pub garbage: f64,
    /// Probability a write call resets the connection instead.
    pub reset: f64,
    /// Kill lane `.0` once `.1` cumulative bytes were written on it.
    pub lane_kill: Option<(u32, u64)>,
    /// After `.1` bytes written on lane `.0`, silently swallow all
    /// further writes (half-open peer: alive socket, dead process).
    pub half_open: Option<(u32, u64)>,
    /// Observer called as `(fault, peer, lane)` on every injection.
    pub on_fault: Option<FaultObserver>,
}

impl fmt::Debug for WireFaults {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WireFaults")
            .field("seed", &self.seed)
            .field("torn", &self.torn)
            .field("short_read", &self.short_read)
            .field("garbage", &self.garbage)
            .field("reset", &self.reset)
            .field("lane_kill", &self.lane_kill)
            .field("half_open", &self.half_open)
            .finish()
    }
}

impl WireFaults {
    /// Whether any wire fault can ever fire under this plan.
    pub fn any(&self) -> bool {
        self.torn > 0.0
            || self.short_read > 0.0
            || self.garbage > 0.0
            || self.reset > 0.0
            || self.lane_kill.is_some()
            || self.half_open.is_some()
    }
}

/// Mutable per-link state, shared by every clone of one wrapped
/// endpoint so reader and writer threads see one byte/call ledger.
#[derive(Debug, Default)]
pub struct FaultyState {
    written: AtomicU64,
    writes: AtomicU64,
    reads: AtomicU64,
    dead: AtomicBool,
    half_open: AtomicBool,
    injected: [AtomicU64; 6],
}

impl FaultyState {
    /// How many faults of `kind` this link has injected so far.
    pub fn injected(&self, kind: WireFault) -> u64 {
        // ORDERING: advisory fault tally, read for assertions after
        // the I/O threads have been joined.
        self.injected[kind.slot()].load(Ordering::Relaxed)
    }
}

/// An [`Endpoint`] plus the fault plan that intercepts its I/O. Built
/// by [`Endpoint::with_faults`]; clones share one [`FaultyState`].
pub struct FaultyLink {
    /// The real endpoint the surviving bytes travel over.
    pub(crate) inner: Endpoint,
    pub(crate) plan: Arc<WireFaults>,
    pub(crate) peer: u32,
    pub(crate) lane: u32,
    pub(crate) state: Arc<FaultyState>,
}

impl fmt::Debug for FaultyLink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultyLink")
            .field("inner", &self.inner)
            .field("peer", &self.peer)
            .field("lane", &self.lane)
            .field("plan", &self.plan)
            .finish()
    }
}

/// Map a 64-bit draw to a uniform in `[0, 1)` (same convention as the
/// message-level fault plan).
fn u01(v: u64) -> f64 {
    (v >> 11) as f64 / (1u64 << 53) as f64
}

impl FaultyLink {
    pub(crate) fn clone_shared(&self) -> io::Result<FaultyLink> {
        Ok(FaultyLink {
            inner: self.inner.try_clone()?,
            plan: Arc::clone(&self.plan),
            peer: self.peer,
            lane: self.lane,
            state: Arc::clone(&self.state),
        })
    }

    /// One deterministic 64-bit draw for call `idx` in `domain`.
    fn draw(&self, domain: u64, idx: u64) -> u64 {
        let mut acc = SplitMix64::new(self.plan.seed).next_u64();
        for w in [domain, self.peer as u64, self.lane as u64, idx] {
            acc = SplitMix64::new(acc ^ w.wrapping_mul(0x9E37_79B9_7F4A_7C15)).next_u64();
        }
        SplitMix64::new(acc).next_u64()
    }

    fn report(&self, kind: WireFault) {
        // ORDERING: advisory fault tally (see `FaultyState::injected`).
        self.state.injected[kind.slot()].fetch_add(1, Ordering::Relaxed);
        if let Some(obs) = &self.plan.on_fault {
            obs(kind, self.peer, self.lane);
        }
    }

    fn reset_err(&self) -> io::Error {
        io::Error::new(
            io::ErrorKind::ConnectionReset,
            format!(
                "wire fault: connection reset (peer {}, lane {})",
                self.peer, self.lane
            ),
        )
    }

    pub(crate) fn faulty_write(&mut self, buf: &[u8]) -> io::Result<usize> {
        // ORDERING: sticky kill flag — reading it late only lets one
        // more write reach a socket the kill already shut down.
        if self.state.dead.load(Ordering::Relaxed) {
            return Err(self.reset_err());
        }
        // ORDERING: the byte ledger is written only by this lane's one
        // writer thread; reads elsewhere are advisory.
        let written = self.state.written.load(Ordering::Relaxed);
        if let Some((lane, after)) = self.plan.lane_kill {
            if lane == self.lane && written >= after {
                // ORDERING: the swap makes the fault report
                // exactly-once; no other memory rides on the flag.
                if !self.state.dead.swap(true, Ordering::Relaxed) {
                    self.report(WireFault::LaneKill);
                    // Kill the real socket so the peer's reader on this
                    // lane fails too instead of waiting forever.
                    self.inner.shutdown();
                }
                return Err(self.reset_err());
            }
        }
        if let Some((lane, after)) = self.plan.half_open {
            if lane == self.lane
                // ORDERING: sticky half-open latch; a late read only
                // delays the first swallowed write by one call.
                && (written >= after || self.state.half_open.load(Ordering::Relaxed))
            {
                // ORDERING: swap = exactly-once report (see lane_kill).
                if !self.state.half_open.swap(true, Ordering::Relaxed) {
                    self.report(WireFault::HalfOpen);
                }
                // Swallow: the caller believes the bytes left; the peer
                // hears silence from now on.
                let n = buf.len() as u64;
                // ORDERING: single-writer byte ledger (see above).
                self.state.written.fetch_add(n, Ordering::Relaxed);
                return Ok(buf.len());
            }
        }
        // ORDERING: per-call index for the deterministic draw; calls on
        // one lane come from one writer thread, so the sequence is
        // already serial.
        let idx = self.state.writes.fetch_add(1, Ordering::Relaxed);
        let p = u01(self.draw(DOMAIN_WRITE, idx));
        if p < self.plan.reset {
            // ORDERING: sticky kill flag (see the load at the top).
            self.state.dead.store(true, Ordering::Relaxed);
            self.report(WireFault::Reset);
            self.inner.shutdown();
            return Err(self.reset_err());
        }
        if p < self.plan.reset + self.plan.garbage && !buf.is_empty() {
            // Flip one seeded byte of a copy; the peer's decode layer
            // must turn this into a typed error, never a panic.
            let pick = self.draw(DOMAIN_WRITE ^ 0xff, idx);
            let mut corrupt = buf.to_vec();
            let at = (pick as usize) % corrupt.len();
            corrupt[at] ^= 1 << ((pick >> 32) % 8);
            self.report(WireFault::Garbage);
            let n = self.inner.write(&corrupt)?;
            // ORDERING: single-writer byte ledger (see above).
            self.state.written.fetch_add(n as u64, Ordering::Relaxed);
            return Ok(n);
        }
        if p < self.plan.reset + self.plan.garbage + self.plan.torn && buf.len() > 1 {
            // Deliver only a seeded prefix; a correct caller loops.
            let pick = self.draw(DOMAIN_WRITE ^ 0xaa, idx);
            let k = 1 + (pick as usize) % (buf.len() - 1);
            self.report(WireFault::TornWrite);
            let n = self.inner.write(&buf[..k])?;
            // ORDERING: single-writer byte ledger (see above).
            self.state.written.fetch_add(n as u64, Ordering::Relaxed);
            return Ok(n);
        }
        let n = self.inner.write(buf)?;
        // ORDERING: single-writer byte ledger (see above).
        self.state.written.fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }

    pub(crate) fn faulty_read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        // ORDERING: sticky kill flag (see `faulty_write`).
        if self.state.dead.load(Ordering::Relaxed) {
            return Err(self.reset_err());
        }
        // ORDERING: per-call draw index; one reader thread per lane.
        let idx = self.state.reads.fetch_add(1, Ordering::Relaxed);
        if buf.len() > 1 && u01(self.draw(DOMAIN_READ, idx)) < self.plan.short_read {
            // Hand back fewer bytes than asked for; a correct caller
            // (read_exact, the frame reader) loops.
            let pick = self.draw(DOMAIN_READ ^ 0x55, idx);
            let k = 1 + (pick as usize) % (buf.len() - 1);
            self.report(WireFault::ShortRead);
            return self.inner.read(&mut buf[..k]);
        }
        self.inner.read(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::unix::net::UnixStream;

    fn pair_with(plan: WireFaults, lane: u32) -> (Endpoint, Endpoint) {
        let (a, b) = UnixStream::pair().unwrap();
        let faulty = Endpoint::Uds(a).with_faults(Arc::new(plan), 1, lane);
        (faulty, Endpoint::Uds(b))
    }

    #[test]
    fn torn_writes_still_deliver_via_write_all() {
        let (mut tx, mut rx) = pair_with(
            WireFaults {
                seed: 7,
                torn: 1.0,
                ..WireFaults::default()
            },
            1,
        );
        let msg = [0xabu8; 4096];
        let writer = std::thread::spawn(move || {
            tx.write_all(&msg).unwrap();
            tx
        });
        let mut got = [0u8; 4096];
        rx.read_exact(&mut got).unwrap();
        let tx = writer.join().unwrap();
        assert_eq!(got, msg);
        match &tx {
            Endpoint::Faulty(l) => assert!(l.state.injected(WireFault::TornWrite) > 0),
            _ => unreachable!(),
        }
    }

    #[test]
    fn lane_kill_fires_at_threshold_and_peer_sees_eof() {
        let (mut tx, mut rx) = pair_with(
            WireFaults {
                seed: 7,
                lane_kill: Some((2, 1024)),
                ..WireFaults::default()
            },
            2,
        );
        let chunk = [0u8; 512];
        tx.write_all(&chunk).unwrap();
        tx.write_all(&chunk).unwrap();
        let err = tx.write_all(&chunk).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        // Drain what made it through, then observe the shutdown.
        let mut sink = Vec::new();
        rx.read_to_end(&mut sink).unwrap();
        assert_eq!(sink.len(), 1024);
    }

    #[test]
    fn lane_kill_ignores_other_lanes() {
        let (mut tx, _rx) = pair_with(
            WireFaults {
                seed: 7,
                lane_kill: Some((2, 0)),
                ..WireFaults::default()
            },
            1,
        );
        tx.write_all(&[1u8; 4096]).unwrap();
    }

    #[test]
    fn half_open_swallows_writes_silently() {
        let (mut tx, mut rx) = pair_with(
            WireFaults {
                seed: 7,
                half_open: Some((0, 256)),
                ..WireFaults::default()
            },
            0,
        );
        tx.write_all(&[9u8; 256]).unwrap();
        tx.write_all(&[9u8; 256]).unwrap(); // swallowed, still Ok
        drop(tx);
        let mut sink = Vec::new();
        rx.read_to_end(&mut sink).unwrap();
        assert_eq!(sink.len(), 256, "only pre-threshold bytes arrive");
    }

    #[test]
    fn decisions_are_seed_deterministic() {
        let run = |seed| {
            let (a, _b) = UnixStream::pair().unwrap();
            let ep = Endpoint::Uds(a).with_faults(
                Arc::new(WireFaults {
                    seed,
                    torn: 0.5,
                    ..WireFaults::default()
                }),
                3,
                1,
            );
            let mut ep = ep;
            let mut pattern = Vec::new();
            for _ in 0..64 {
                pattern.push(ep.write(&[0u8; 64]).unwrap());
            }
            pattern
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn garbage_flips_exactly_one_bit() {
        let (mut tx, mut rx) = pair_with(
            WireFaults {
                seed: 11,
                garbage: 1.0,
                ..WireFaults::default()
            },
            1,
        );
        let msg = [0u8; 128];
        tx.write_all(&msg).unwrap();
        drop(tx);
        let mut got = Vec::new();
        rx.read_to_end(&mut got).unwrap();
        assert_eq!(got.len(), 128);
        let flipped: u32 = got.iter().map(|b| b.count_ones()).sum();
        assert!(flipped >= 1, "at least one bit flipped");
    }

    #[test]
    fn observer_sees_injections() {
        use std::sync::atomic::AtomicUsize;
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        let (mut tx, _rx) = pair_with(
            WireFaults {
                seed: 5,
                torn: 1.0,
                on_fault: Some(Arc::new(move |f, peer, lane| {
                    assert_eq!(f, WireFault::TornWrite);
                    assert_eq!((peer, lane), (1, 1));
                    h.fetch_add(1, Ordering::Relaxed);
                })),
                ..WireFaults::default()
            },
            1,
        );
        let _ = tx.write(&[0u8; 64]).unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }
}
