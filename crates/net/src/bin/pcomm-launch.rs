//! `pcomm-launch` — run a pcomm program as N rank processes over a real
//! wire, the way `mpirun` runs an MPI program.
//!
//! ```text
//! pcomm-launch -n 2 ./target/release/examples/pingpong
//! pcomm-launch -n 4 --backend tcp -- ./my-program --its --own --flags
//! ```
//!
//! Every rank is a full copy of the program with `PCOMM_NET_RANK`,
//! `PCOMM_NET_RANKS`, `PCOMM_NET_DIR` and `PCOMM_NET_BACKEND` set; a
//! `Universe::run` with a matching rank count joins the socket mesh
//! instead of spawning threads. The launcher waits for all ranks and
//! exits with the first non-zero rank exit code.

use std::path::PathBuf;
use std::process::exit;

use pcomm_net::launch::{launch_ranks, unique_rendezvous_dir};
use pcomm_net::mesh::Backend;

fn usage() -> ! {
    eprintln!(
        "usage: pcomm-launch [-n RANKS] [--backend uds|tcp] [--dir PATH] [--] PROGRAM [ARGS...]"
    );
    exit(64);
}

fn main() {
    let mut args = std::env::args().skip(1).peekable();
    let mut n_ranks = 2usize;
    let mut backend = Backend::Uds;
    let mut dir: Option<PathBuf> = None;
    let mut argv: Vec<String> = Vec::new();

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-n" | "--ranks" => {
                let v = args.next().unwrap_or_else(|| usage());
                n_ranks = v.parse().unwrap_or_else(|_| usage());
                if n_ranks == 0 {
                    usage();
                }
            }
            "--backend" => {
                let v = args.next().unwrap_or_else(|| usage());
                backend = Backend::parse(&v).unwrap_or_else(|| usage());
            }
            "--dir" => {
                dir = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())));
            }
            "--" => {
                argv.extend(args);
                break;
            }
            "-h" | "--help" => usage(),
            _ => {
                argv.push(arg);
                argv.extend(args);
                break;
            }
        }
    }
    if argv.is_empty() {
        usage();
    }

    let (dir, owned) = match dir {
        Some(d) => (d, false),
        None => match unique_rendezvous_dir() {
            Ok(d) => (d, true),
            Err(e) => {
                eprintln!("pcomm-launch: cannot create rendezvous dir: {e}");
                exit(1);
            }
        },
    };

    let code = match launch_ranks(&argv, n_ranks, backend, &dir) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("pcomm-launch: failed to launch ranks: {e}");
            1
        }
    };
    if owned {
        let _ = std::fs::remove_dir_all(&dir);
    }
    exit(code);
}
