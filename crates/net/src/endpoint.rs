//! Backend-agnostic stream endpoints: Unix domain sockets or TCP
//! loopback, behind one enum so the progress engine never matches on
//! the backend.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::faults::{FaultyLink, FaultyState, WireFaults};

/// One connected, bidirectional byte stream to a peer rank.
#[derive(Debug)]
pub enum Endpoint {
    /// Unix domain socket (the default backend).
    Uds(UnixStream),
    /// TCP loopback socket.
    Tcp(TcpStream),
    /// A wrapped endpoint injecting seeded wire faults (chaos runs
    /// only). See [`crate::faults`].
    Faulty(Box<FaultyLink>),
}

impl Endpoint {
    /// Wrap this endpoint in a seeded wire-fault injector for `(peer,
    /// lane)`. Clones made afterwards share one fault ledger, so the
    /// reader and writer halves of a lane count bytes together. A
    /// no-op (returns `self`) when the plan has no wire faults.
    pub fn with_faults(self, plan: Arc<WireFaults>, peer: u32, lane: u32) -> Endpoint {
        if !plan.any() || matches!(self, Endpoint::Faulty(_)) {
            return self;
        }
        Endpoint::Faulty(Box::new(FaultyLink {
            inner: self,
            plan,
            peer,
            lane,
            state: Arc::new(FaultyState::default()),
        }))
    }

    /// Clone the underlying socket handle (shared file description), so
    /// a reader thread and a writer thread can own the stream
    /// independently.
    pub fn try_clone(&self) -> io::Result<Endpoint> {
        Ok(match self {
            Endpoint::Uds(s) => Endpoint::Uds(s.try_clone()?),
            Endpoint::Tcp(s) => Endpoint::Tcp(s.try_clone()?),
            Endpoint::Faulty(l) => Endpoint::Faulty(Box::new(l.clone_shared()?)),
        })
    }

    /// Shut down both directions; a blocked `read` on any clone returns
    /// immediately. Errors are ignored — the socket may already be gone.
    pub fn shutdown(&self) {
        let _ = match self {
            Endpoint::Uds(s) => s.shutdown(Shutdown::Both),
            Endpoint::Tcp(s) => s.shutdown(Shutdown::Both),
            Endpoint::Faulty(l) => {
                l.inner.shutdown();
                Ok(())
            }
        };
    }

    /// The raw OS file descriptor of a Unix-domain endpoint (`None` for
    /// TCP). Used by the ipc fabric's bootstrap to pass the shared
    /// segment's memfd over the already-established mesh with
    /// `SCM_RIGHTS`.
    pub fn raw_fd(&self) -> Option<i32> {
        match self {
            Endpoint::Uds(s) => Some(std::os::fd::AsRawFd::as_raw_fd(s)),
            Endpoint::Tcp(_) => None,
            Endpoint::Faulty(l) => l.inner.raw_fd(),
        }
    }

    /// Set or clear the read timeout.
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        match self {
            Endpoint::Uds(s) => s.set_read_timeout(dur),
            Endpoint::Tcp(s) => s.set_read_timeout(dur),
            Endpoint::Faulty(l) => l.inner.set_read_timeout(dur),
        }
    }

    fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            Endpoint::Uds(s) => s.set_nonblocking(nb),
            Endpoint::Tcp(s) => s.set_nonblocking(nb),
            Endpoint::Faulty(l) => l.inner.set_nonblocking(nb),
        }
    }

    /// Disable Nagle on TCP endpoints so small frames (eager pingpong,
    /// CTS handshakes) are not held back waiting for an ACK; a no-op on
    /// UDS, which has no coalescing to disable.
    pub fn set_nodelay(&self) -> io::Result<()> {
        match self {
            Endpoint::Uds(_) => Ok(()),
            Endpoint::Tcp(s) => s.set_nodelay(true),
            Endpoint::Faulty(l) => l.inner.set_nodelay(),
        }
    }

    /// Whether TCP_NODELAY is set (`true` for UDS, which never delays).
    pub fn nodelay(&self) -> io::Result<bool> {
        match self {
            Endpoint::Uds(_) => Ok(true),
            Endpoint::Tcp(s) => s.nodelay(),
            Endpoint::Faulty(l) => l.inner.nodelay(),
        }
    }
}

impl Read for Endpoint {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Endpoint::Uds(s) => s.read(buf),
            Endpoint::Tcp(s) => s.read(buf),
            Endpoint::Faulty(l) => l.faulty_read(buf),
        }
    }
}

impl Write for Endpoint {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Endpoint::Uds(s) => s.write(buf),
            Endpoint::Tcp(s) => s.write(buf),
            Endpoint::Faulty(l) => l.faulty_write(buf),
        }
    }

    // Forward explicitly: the trait's default implementation writes only
    // the first non-empty slice, which would turn a writer's batched
    // frame submission back into one syscall per frame. The faulty
    // wrapper deliberately *keeps* the one-slice default (via `write`)
    // so torn-write faults also exercise the vectored callers' partial
    // handling.
    fn write_vectored(&mut self, bufs: &[io::IoSlice<'_>]) -> io::Result<usize> {
        match self {
            Endpoint::Uds(s) => s.write_vectored(bufs),
            Endpoint::Tcp(s) => s.write_vectored(bufs),
            Endpoint::Faulty(_) => {
                let buf = bufs
                    .iter()
                    .find(|b| !b.is_empty())
                    .map(|b| &b[..])
                    .unwrap_or(&[]);
                self.write(buf)
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Endpoint::Uds(s) => s.flush(),
            Endpoint::Tcp(s) => s.flush(),
            Endpoint::Faulty(l) => l.inner.flush(),
        }
    }
}

/// A listening socket accepting connections from peer ranks.
#[derive(Debug)]
pub enum Listener {
    /// Unix domain socket listener.
    Uds(UnixListener),
    /// TCP loopback listener.
    Tcp(TcpListener),
}

impl Listener {
    /// The bound TCP port (TCP backend only).
    pub fn tcp_port(&self) -> Option<u16> {
        match self {
            Listener::Uds(_) => None,
            Listener::Tcp(l) => l.local_addr().ok().map(|a: SocketAddr| a.port()),
        }
    }

    /// Accept one connection, polling until `deadline`. The returned
    /// endpoint is in blocking mode with TCP_NODELAY set.
    pub fn accept_deadline(&self, deadline: Instant) -> io::Result<Endpoint> {
        // The listener is non-blocking (set at bind time): poll with a
        // short sleep so a missing peer turns into a typed error instead
        // of a hang.
        loop {
            let got = match self {
                Listener::Uds(l) => l.accept().map(|(s, _)| Endpoint::Uds(s)),
                Listener::Tcp(l) => l.accept().map(|(s, _)| Endpoint::Tcp(s)),
            };
            match got {
                Ok(ep) => {
                    // Accepted sockets do not reliably inherit the
                    // listener's non-blocking mode; force blocking.
                    ep.set_nonblocking(false)?;
                    ep.set_nodelay()?;
                    return Ok(ep);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "net: timed out waiting for a peer rank to connect",
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// Retry `connect` until it succeeds or `deadline` passes; retries on
/// the errors a not-yet-listening peer produces.
pub(crate) fn connect_retry(
    mut connect: impl FnMut() -> io::Result<Endpoint>,
    deadline: Instant,
    what: &str,
) -> io::Result<Endpoint> {
    loop {
        match connect() {
            Ok(ep) => return Ok(ep),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::NotFound
                        | io::ErrorKind::ConnectionRefused
                        | io::ErrorKind::ConnectionReset
                        | io::ErrorKind::AddrNotAvailable
                        | io::ErrorKind::WouldBlock
                ) =>
            {
                if Instant::now() >= deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        format!("net: timed out connecting to {what}: {e}"),
                    ));
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodelay_is_set_on_both_tcp_sides() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let port = listener.local_addr().unwrap().port();
        let l = Listener::Tcp(listener);
        let connecting = std::thread::spawn(move || {
            let s = TcpStream::connect(("127.0.0.1", port)).unwrap();
            let ep = Endpoint::Tcp(s);
            ep.set_nodelay().unwrap();
            ep
        });
        let accepted = l
            .accept_deadline(Instant::now() + Duration::from_secs(5))
            .unwrap();
        let connected = connecting.join().unwrap();
        assert!(accepted.nodelay().unwrap(), "accept side");
        assert!(connected.nodelay().unwrap(), "connect side");
    }

    #[test]
    fn nodelay_is_a_noop_on_uds() {
        let (a, _b) = UnixStream::pair().unwrap();
        let ep = Endpoint::Uds(a);
        ep.set_nodelay().unwrap();
        assert!(ep.nodelay().unwrap());
    }
}
