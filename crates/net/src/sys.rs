//! Raw Linux syscall wrappers for the same-host ipc fabric.
//!
//! The workspace is std-only and offline, so the process-shared memory
//! fabric cannot lean on `libc`: the handful of kernel entry points it
//! needs — anonymous memory files, shared mappings, cross-process
//! futexes, and `SCM_RIGHTS` fd passing — are issued directly with
//! `std::arch::asm!` on the two supported Linux targets (x86_64 and
//! aarch64). Everywhere else [`supported`] reports `false` and the
//! transport layer stays on sockets, so none of these wrappers is ever
//! reached off-platform.
//!
//! Why raw syscalls are sound here (see also DESIGN.md §15):
//!
//! * Every wrapper is a thin, audited translation of one documented
//!   kernel ABI entry; no wrapper touches errno, signals, or any libc
//!   state, so they cannot conflict with std's own syscall usage.
//! * The asm blocks follow the kernel calling convention exactly
//!   (x86_64: `syscall`, args in rdi/rsi/rdx/r10/r8/r9, rcx/r11
//!   clobbered; aarch64: `svc 0`, nr in x8, args in x0..x5) and mark
//!   every register the kernel may clobber.
//! * Errors come back as `-errno` in the return register; the wrappers
//!   convert them to `io::Error` instead of leaking raw integers.
//!
//! Every wrapper carries a `// SYSCALL:` marker naming the kernel
//! interface and why it is needed; `safety_lint` enforces the marker on
//! any `asm!` site in the workspace.

use std::io;

/// Whether the raw-syscall ipc fabric can run on this build target.
/// Off-target the transport layer falls back to sockets before any
/// wrapper below is reachable.
pub const fn supported() -> bool {
    cfg!(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))
}

/// `FUTEX_WAIT` without `FUTEX_PRIVATE_FLAG`: the futex words live in a
/// memory segment shared between rank *processes*, so the kernel must
/// hash them by physical page, not per-mm.
const FUTEX_WAIT: usize = 0;
/// `FUTEX_WAKE`, shared for the same reason as [`FUTEX_WAIT`].
const FUTEX_WAKE: usize = 1;

/// `PROT_READ | PROT_WRITE` for [`mmap`].
const PROT_RW: usize = 0x1 | 0x2;
/// `MAP_SHARED`: writes must be visible to every process mapping the
/// segment.
const MAP_SHARED: usize = 0x01;

/// `struct timespec` as the kernel expects it on both supported targets.
#[repr(C)]
struct Timespec {
    tv_sec: i64,
    tv_nsec: i64,
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod nr {
    pub const MEMFD_CREATE: usize = 319;
    pub const FTRUNCATE: usize = 77;
    pub const MMAP: usize = 9;
    pub const MUNMAP: usize = 11;
    pub const CLOSE: usize = 3;
    pub const FUTEX: usize = 202;
    pub const SENDMSG: usize = 46;
    pub const RECVMSG: usize = 47;
}

#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
mod nr {
    pub const MEMFD_CREATE: usize = 279;
    pub const FTRUNCATE: usize = 46;
    pub const MMAP: usize = 222;
    pub const MUNMAP: usize = 215;
    pub const CLOSE: usize = 57;
    pub const FUTEX: usize = 98;
    pub const SENDMSG: usize = 211;
    pub const RECVMSG: usize = 212;
}

/// Issue one syscall with up to six arguments and return the raw kernel
/// result (`-errno` on failure). The single funnel keeps the asm in one
/// audited place; every public wrapper goes through it.
///
/// # Safety
/// The caller must pass arguments that are valid for the named syscall
/// (live pointers with correct lengths, owned fds); the kernel trusts
/// them as-is.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
unsafe fn syscall6(
    n: usize,
    a1: usize,
    a2: usize,
    a3: usize,
    a4: usize,
    a5: usize,
    a6: usize,
) -> isize {
    let ret: isize;
    // SAFETY: register constraints match the kernel calling convention;
    // the caller guarantees the arguments are valid for syscall `n`.
    unsafe {
        // SYSCALL: the one asm funnel every wrapper in this module uses
        // — x86_64 `syscall` instruction, args per the kernel ABI,
        // rcx/r11 clobbered by the instruction itself.
        std::arch::asm!(
            "syscall",
            inlateout("rax") n as isize => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            in("r10") a4,
            in("r8") a5,
            in("r9") a6,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    ret
}

/// See the x86_64 [`syscall6`]; aarch64 uses `svc 0` with the number in
/// `x8` and arguments in `x0..x5`.
///
/// # Safety
/// Same contract as the x86_64 variant.
#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
unsafe fn syscall6(
    n: usize,
    a1: usize,
    a2: usize,
    a3: usize,
    a4: usize,
    a5: usize,
    a6: usize,
) -> isize {
    let ret: isize;
    // SAFETY: register constraints match the kernel calling convention;
    // the caller guarantees the arguments are valid for syscall `n`.
    unsafe {
        // SYSCALL: the one asm funnel every wrapper in this module uses
        // — aarch64 `svc 0`, number in x8, args in x0..x5 per the
        // kernel ABI.
        std::arch::asm!(
            "svc 0",
            in("x8") n,
            inlateout("x0") a1 => ret,
            in("x1") a2,
            in("x2") a3,
            in("x3") a4,
            in("x4") a5,
            in("x5") a6,
            options(nostack),
        );
    }
    ret
}

/// Unsupported-target stub: never reached ([`supported`] gates every
/// caller), present so the module typechecks everywhere.
///
/// # Safety
/// Trivially safe — it only returns an error code.
#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
// SAFETY: trivially safe stub — returns ENOSYS without touching its arguments.
unsafe fn syscall6(
    _n: usize,
    _a1: usize,
    _a2: usize,
    _a3: usize,
    _a4: usize,
    _a5: usize,
    _a6: usize,
) -> isize {
    -38 // -ENOSYS
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod nr {
    pub const MEMFD_CREATE: usize = 0;
    pub const FTRUNCATE: usize = 0;
    pub const MMAP: usize = 0;
    pub const MUNMAP: usize = 0;
    pub const CLOSE: usize = 0;
    pub const FUTEX: usize = 0;
    pub const SENDMSG: usize = 0;
    pub const RECVMSG: usize = 0;
}

/// Convert a raw kernel return into `io::Result`.
fn check(ret: isize) -> io::Result<usize> {
    if ret < 0 {
        Err(io::Error::from_raw_os_error(-ret as i32))
    } else {
        Ok(ret as usize)
    }
}

/// `memfd_create(2)`: an anonymous, fd-addressable memory file — the
/// backing object of the shared segment, passed to the peer ranks over
/// the UDS bootstrap with [`send_fd`].
pub fn memfd_create(name: &str) -> io::Result<i32> {
    let mut buf = [0u8; 32];
    let n = name.len().min(buf.len() - 1);
    buf[..n].copy_from_slice(&name.as_bytes()[..n]);
    // SYSCALL: memfd_create(name, 0) — no libc wrapper in std.
    // SAFETY: `buf` is a live NUL-terminated buffer for the duration of
    // the call; flags 0 requests a plain sealable-less memfd.
    let ret = unsafe { syscall6(nr::MEMFD_CREATE, buf.as_ptr() as usize, 0, 0, 0, 0, 0) };
    check(ret).map(|fd| fd as i32)
}

/// `ftruncate(2)`: size the fresh memfd to the full segment length
/// (sparse — pages materialise on first touch).
pub fn ftruncate(fd: i32, len: usize) -> io::Result<()> {
    // SYSCALL: ftruncate(fd, len) on the segment memfd.
    // SAFETY: no pointers; the fd is owned by the caller.
    let ret = unsafe { syscall6(nr::FTRUNCATE, fd as usize, len, 0, 0, 0, 0) };
    check(ret).map(|_| ())
}

/// `mmap(2)` with `PROT_READ|PROT_WRITE, MAP_SHARED`: map the segment
/// into this process. Each rank gets a different base address, which is
/// why the segment layout speaks only in offsets.
pub fn mmap_shared(fd: i32, len: usize) -> io::Result<*mut u8> {
    // SYSCALL: mmap(NULL, len, PROT_RW, MAP_SHARED, fd, 0).
    // SAFETY: NULL hint lets the kernel pick a free range; the fd is a
    // live memfd of at least `len` bytes (sized by `ftruncate` above).
    let ret = unsafe { syscall6(nr::MMAP, 0, len, PROT_RW, MAP_SHARED, fd as usize, 0) };
    check(ret).map(|addr| addr as *mut u8)
}

/// `munmap(2)`: drop the mapping at segment teardown.
///
/// # Safety
/// `addr..addr+len` must be exactly one live mapping returned by
/// [`mmap_shared`], with no remaining references into it.
pub unsafe fn munmap(addr: *mut u8, len: usize) -> io::Result<()> {
    // SYSCALL: munmap(addr, len) — releases the segment mapping.
    // SAFETY: forwarded to the caller: the range is one whole mapping
    // this process owns and no longer reads or writes.
    let ret = unsafe { syscall6(nr::MUNMAP, addr as usize, len, 0, 0, 0, 0) };
    check(ret).map(|_| ())
}

/// `close(2)`: release the memfd once mapped (the mapping keeps the
/// memory alive).
pub fn close(fd: i32) -> io::Result<()> {
    // SYSCALL: close(fd) on the segment memfd after mmap.
    // SAFETY: no pointers; the caller owns the fd and drops it here.
    let ret = unsafe { syscall6(nr::CLOSE, fd as usize, 0, 0, 0, 0, 0) };
    check(ret).map(|_| ())
}

/// `futex(FUTEX_WAIT)` on a *process-shared* word: sleep while
/// `*word == expect`, up to `timeout_ns` (relative). Returns `Ok(true)`
/// when woken (or the value changed), `Ok(false)` on timeout. `EINTR`
/// and `EAGAIN` (value already changed) both report as woken — callers
/// re-check shared state in a loop anyway.
pub fn futex_wait(
    word: &std::sync::atomic::AtomicU32,
    expect: u32,
    timeout_ns: u64,
) -> io::Result<bool> {
    let ts = Timespec {
        tv_sec: (timeout_ns / 1_000_000_000) as i64,
        tv_nsec: (timeout_ns % 1_000_000_000) as i64,
    };
    // SYSCALL: futex(word, FUTEX_WAIT, expect, &timeout) — the shared
    // (non-PRIVATE) form, because waiter and waker are different
    // processes mapping the same physical page.
    // SAFETY: `word` and `ts` are live for the duration of the call;
    // FUTEX_WAIT only reads the word and sleeps.
    let ret = unsafe {
        syscall6(
            nr::FUTEX,
            word as *const _ as usize,
            FUTEX_WAIT,
            expect as usize,
            &ts as *const Timespec as usize,
            0,
            0,
        )
    };
    match check(ret) {
        Ok(_) => Ok(true),
        Err(e) => match e.raw_os_error() {
            Some(110) => Ok(false),         // ETIMEDOUT
            Some(11) | Some(4) => Ok(true), // EAGAIN (value changed) / EINTR
            _ => Err(e),
        },
    }
}

/// `futex(FUTEX_WAKE)` on a process-shared word: wake up to `n`
/// sleepers. Returns how many were woken.
pub fn futex_wake(word: &std::sync::atomic::AtomicU32, n: u32) -> io::Result<usize> {
    // SYSCALL: futex(word, FUTEX_WAKE, n) — shared form, see
    // `futex_wait`.
    // SAFETY: `word` is a live shared futex word; FUTEX_WAKE reads
    // nothing through it, it only scans the kernel wait queue.
    let ret = unsafe {
        syscall6(
            nr::FUTEX,
            word as *const _ as usize,
            FUTEX_WAKE,
            n as usize,
            0,
            0,
            0,
        )
    };
    check(ret)
}

/// `SOL_SOCKET` for the `SCM_RIGHTS` control message.
const SOL_SOCKET: i32 = 1;
/// `SCM_RIGHTS`: the control-message type that transfers fds.
const SCM_RIGHTS: i32 = 1;

/// `struct iovec` as the kernel expects it.
#[repr(C)]
struct Iovec {
    base: *const u8,
    len: usize,
}

/// `struct msghdr` as the kernel expects it on both supported targets.
#[repr(C)]
struct Msghdr {
    name: usize,
    namelen: u32,
    _pad0: u32,
    iov: *const Iovec,
    iovlen: usize,
    control: *const u8,
    controllen: usize,
    flags: i32,
    _pad1: u32,
}

/// One-fd `SCM_RIGHTS` control buffer: `cmsghdr` (16 bytes on LP64)
/// plus the fd, padded to alignment.
#[repr(C, align(8))]
struct CmsgOneFd {
    len: usize,
    level: i32,
    typ: i32,
    fd: i32,
    _pad: i32,
}

/// `sendmsg(2)` with a one-byte payload and the segment fd attached as
/// `SCM_RIGHTS` — how rank 0 hands the memfd to each peer over the
/// already-established UDS bootstrap stream.
pub fn send_fd(sock_fd: i32, fd: i32, tag: u8) -> io::Result<()> {
    let byte = [tag];
    let iov = Iovec {
        base: byte.as_ptr(),
        len: 1,
    };
    let cmsg = CmsgOneFd {
        len: 20, // CMSG_LEN(4): 16-byte header + one fd
        level: SOL_SOCKET,
        typ: SCM_RIGHTS,
        fd,
        _pad: 0,
    };
    let msg = Msghdr {
        name: 0,
        namelen: 0,
        _pad0: 0,
        iov: &iov,
        iovlen: 1,
        control: &cmsg as *const CmsgOneFd as *const u8,
        controllen: std::mem::size_of::<CmsgOneFd>(),
        flags: 0,
        _pad1: 0,
    };
    // SYSCALL: sendmsg(sock, &msg, 0) carrying one SCM_RIGHTS fd — std
    // has no fd-passing API.
    // SAFETY: `byte`, `iov`, `cmsg` and `msg` all outlive the call; the
    // layouts above match the kernel's LP64 msghdr/cmsghdr ABI.
    let ret = unsafe {
        syscall6(
            nr::SENDMSG,
            sock_fd as usize,
            &msg as *const Msghdr as usize,
            0,
            0,
            0,
            0,
        )
    };
    check(ret).and_then(|n| {
        if n == 1 {
            Ok(())
        } else {
            Err(io::Error::new(
                io::ErrorKind::WriteZero,
                "ipc: sendmsg wrote no payload byte",
            ))
        }
    })
}

/// `recvmsg(2)` counterpart of [`send_fd`]: returns the received fd and
/// the one-byte tag.
pub fn recv_fd(sock_fd: i32) -> io::Result<(i32, u8)> {
    let mut byte = [0u8; 1];
    let iov = Iovec {
        base: byte.as_mut_ptr(),
        len: 1,
    };
    let mut cmsg = CmsgOneFd {
        len: 0,
        level: 0,
        typ: 0,
        fd: -1,
        _pad: 0,
    };
    let msg = Msghdr {
        name: 0,
        namelen: 0,
        _pad0: 0,
        iov: &iov,
        iovlen: 1,
        control: &mut cmsg as *mut CmsgOneFd as *const u8,
        controllen: std::mem::size_of::<CmsgOneFd>(),
        flags: 0,
        _pad1: 0,
    };
    // SYSCALL: recvmsg(sock, &msg, 0) expecting one SCM_RIGHTS fd.
    // SAFETY: same lifetime/layout argument as `send_fd`; the kernel
    // writes the fd into `cmsg` and the tag byte into `byte`.
    let ret = unsafe {
        syscall6(
            nr::RECVMSG,
            sock_fd as usize,
            &msg as *const Msghdr as usize,
            0,
            0,
            0,
            0,
        )
    };
    let n = check(ret)?;
    if n != 1 || cmsg.typ != SCM_RIGHTS || cmsg.fd < 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "ipc: expected one SCM_RIGHTS fd with a tag byte, got {n} bytes \
                 (cmsg type {}, fd {})",
                cmsg.typ, cmsg.fd
            ),
        ));
    }
    Ok((cmsg.fd, byte[0]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn memfd_map_write_read_roundtrip() {
        if !supported() {
            return;
        }
        let fd = memfd_create("pcomm-sys-test").unwrap();
        ftruncate(fd, 8192).unwrap();
        let base = mmap_shared(fd, 8192).unwrap();
        close(fd).unwrap();
        // SAFETY: `base` is a fresh 8 KiB private test mapping.
        unsafe {
            base.add(4096).write(0xa5);
            assert_eq!(base.add(4096).read(), 0xa5);
            munmap(base, 8192).unwrap();
        }
    }

    #[test]
    fn futex_wait_times_out_and_wakes() {
        if !supported() {
            return;
        }
        let word = AtomicU32::new(0);
        // Value mismatch: returns immediately as "woken".
        assert!(futex_wait(&word, 1, 1_000_000).unwrap());
        // Value match: sleeps until the 2 ms timeout.
        assert!(!futex_wait(&word, 0, 2_000_000).unwrap());
        // Nobody is sleeping: wake reports 0.
        assert_eq!(futex_wake(&word, 1).unwrap(), 0);
    }

    #[test]
    fn scm_rights_passes_a_real_fd() {
        if !supported() {
            return;
        }
        use std::io::{Read, Seek, Write};
        use std::os::unix::io::{AsRawFd, FromRawFd};
        use std::os::unix::net::UnixStream;
        let (a, b) = UnixStream::pair().unwrap();
        let fd = memfd_create("pcomm-scm-test").unwrap();
        ftruncate(fd, 16).unwrap();
        send_fd(a.as_raw_fd(), fd, 7).unwrap();
        close(fd).unwrap();
        let (got, tag) = recv_fd(b.as_raw_fd()).unwrap();
        assert_eq!(tag, 7);
        // SAFETY: `got` is a fresh fd the kernel just installed for us.
        let mut f = unsafe { std::fs::File::from_raw_fd(got) };
        f.write_all(b"hello").unwrap();
        f.seek(std::io::SeekFrom::Start(0)).unwrap();
        let mut s = String::new();
        f.read_to_string(&mut s).unwrap();
        assert!(s.starts_with("hello"));
    }
}
