//! Full-mesh connection establishment between the rank processes of one
//! universe.
//!
//! Every rank binds a listener named after the universe (`u<seq>.r<rank>`
//! in the shared rendezvous directory; TCP publishes a `.port` file
//! written temp-then-rename so readers never see a partial write). For
//! each pair the lower rank connects to the higher rank's listener and
//! sends a [`Frame::Hello`] carrying its rank, the writer lane the
//! connection will carry, and the universe sequence number; the acceptor
//! uses the hello to identify the peer/lane and to reject cross-universe
//! connections. A pair may be joined by several lanes (`PCOMM_NET_LANES`,
//! the VCI analogue): lane 0 carries all ordered traffic, higher lanes
//! carry only order-independent `PartData` ranges. Connects never wait
//! on accepts (the OS listen backlog decouples them), so establishment
//! cannot deadlock; every blocking step carries a deadline so a missing
//! peer becomes a typed error, not a hang.

use std::io::{self, Write};
use std::net::TcpListener;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use crate::endpoint::{connect_retry, Endpoint, Listener};
use crate::frame::Frame;

/// How long establishment waits for peers before giving up.
pub const ESTABLISH_TIMEOUT: Duration = Duration::from_secs(10);

/// Which socket family carries the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Unix domain sockets (default).
    Uds,
    /// TCP over 127.0.0.1.
    Tcp,
}

impl Backend {
    /// Parse the `PCOMM_NET_BACKEND` value.
    pub fn parse(s: &str) -> Option<Backend> {
        match s.trim().to_ascii_lowercase().as_str() {
            "" | "uds" | "unix" => Some(Backend::Uds),
            "tcp" => Some(Backend::Tcp),
            _ => None,
        }
    }

    /// Canonical name (`uds` / `tcp`).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Uds => "uds",
            Backend::Tcp => "tcp",
        }
    }
}

/// Everything needed to wire one rank into a universe's mesh.
#[derive(Debug, Clone)]
pub struct MeshConfig {
    /// This process's rank.
    pub rank: usize,
    /// Total ranks in the universe.
    pub n_ranks: usize,
    /// Shared rendezvous directory all ranks can reach.
    pub dir: PathBuf,
    /// Socket backend.
    pub backend: Backend,
    /// Per-process multiproc universe sequence number; all ranks run the
    /// same program (SPMD), so their counters agree.
    pub seq: u64,
    /// Writer lanes per peer pair (≥ 1). All ranks must agree (SPMD).
    pub lanes: usize,
}

/// The established mesh: one stream per (peer, lane); `None` at `rank`.
#[derive(Debug)]
pub struct Mesh {
    /// This process's rank.
    pub rank: usize,
    /// Total ranks.
    pub n_ranks: usize,
    /// Writer lanes per pair.
    pub lanes: usize,
    /// `peers[r][lane]` is the stream to rank `r` on `lane`; the outer
    /// slot is `None` for self.
    pub peers: Vec<Option<Vec<Endpoint>>>,
}

fn sock_path(dir: &Path, seq: u64, rank: usize) -> PathBuf {
    dir.join(format!("u{seq}.r{rank}"))
}

fn port_path(dir: &Path, seq: u64, rank: usize) -> PathBuf {
    dir.join(format!("u{seq}.r{rank}.port"))
}

/// Rendezvous name for a lane-0 *reconnect* between one pair. The
/// original per-rank listeners and their artifacts are gone by the time
/// a lane dies (removed at the end of [`establish`]), so recovery uses
/// a fresh pair-scoped name that cannot collide with them.
fn reconnect_path(dir: &Path, seq: u64, lo: usize, hi: usize) -> PathBuf {
    dir.join(format!("u{seq}.r{lo}p{hi}.rc"))
}

fn bind(cfg: &MeshConfig) -> io::Result<Listener> {
    match cfg.backend {
        Backend::Uds => {
            let path = sock_path(&cfg.dir, cfg.seq, cfg.rank);
            // A stale socket from a crashed earlier run with the same
            // name would make bind fail; the name is per-universe, so
            // removing it is safe.
            let _ = std::fs::remove_file(&path);
            let l = UnixListener::bind(&path)?;
            l.set_nonblocking(true)?;
            Ok(Listener::Uds(l))
        }
        Backend::Tcp => {
            let l = TcpListener::bind("127.0.0.1:0")?;
            l.set_nonblocking(true)?;
            let port = l.local_addr()?.port();
            // Publish the port temp-then-rename so a reader never sees
            // a partially written file.
            let tmp = port_path(&cfg.dir, cfg.seq, cfg.rank).with_extension("port.tmp");
            std::fs::write(&tmp, port.to_string())?;
            std::fs::rename(&tmp, port_path(&cfg.dir, cfg.seq, cfg.rank))?;
            Ok(Listener::Tcp(l))
        }
    }
}

fn connect_to(cfg: &MeshConfig, peer: usize, deadline: Instant) -> io::Result<Endpoint> {
    let what = format!("rank {peer} (universe {})", cfg.seq);
    let ep = match cfg.backend {
        Backend::Uds => {
            let path = sock_path(&cfg.dir, cfg.seq, peer);
            connect_retry(
                || UnixStream::connect(&path).map(Endpoint::Uds),
                deadline,
                &what,
            )?
        }
        Backend::Tcp => {
            let pfile = port_path(&cfg.dir, cfg.seq, peer);
            connect_retry(
                || {
                    let port: u16 = std::fs::read_to_string(&pfile)?
                        .trim()
                        .parse()
                        .map_err(|_| io::Error::new(io::ErrorKind::NotFound, "bad port file"))?;
                    let s = std::net::TcpStream::connect(("127.0.0.1", port))?;
                    Ok(Endpoint::Tcp(s))
                },
                deadline,
                &what,
            )?
        }
    };
    ep.set_nodelay()?;
    Ok(ep)
}

/// Read the opening hello from an accepted connection, bounded by
/// `deadline`. Returns `(rank, lane, seq)`.
fn read_hello(ep: &mut Endpoint, deadline: Instant) -> io::Result<(u16, u16, u64)> {
    let left = deadline
        .checked_duration_since(Instant::now())
        .unwrap_or(Duration::from_millis(1));
    ep.set_read_timeout(Some(left))?;
    let frame = Frame::read_from(ep)?;
    ep.set_read_timeout(None)?;
    match frame {
        Frame::Hello { rank, lane, seq } => Ok((rank, lane, seq)),
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("net: expected Hello, got {}", other.name()),
        )),
    }
}

/// Establish the full mesh for this rank. Returns once `lanes` streams
/// to every peer exist; all streams are blocking.
pub fn establish(cfg: &MeshConfig) -> io::Result<Mesh> {
    assert!(cfg.rank < cfg.n_ranks, "rank out of range");
    assert!(cfg.lanes >= 1, "at least one lane");
    let deadline = Instant::now() + ESTABLISH_TIMEOUT;
    let listener = bind(cfg)?;
    let mut peers: Vec<Option<Vec<Endpoint>>> = (0..cfg.n_ranks).map(|_| None).collect();

    // Outbound first: connect() only needs the peer's listener to be
    // bound (the backlog queues us), never its accept loop — so doing
    // all connects before any accept cannot deadlock.
    for (peer, slot) in peers.iter_mut().enumerate().skip(cfg.rank + 1) {
        let mut lanes = Vec::with_capacity(cfg.lanes);
        for lane in 0..cfg.lanes {
            let mut ep = connect_to(cfg, peer, deadline)?;
            Frame::Hello {
                rank: cfg.rank as u16,
                lane: lane as u16,
                seq: cfg.seq,
            }
            .write_to(&mut ep)?;
            ep.flush()?;
            lanes.push(ep);
        }
        *slot = Some(lanes);
    }

    // Then accept `lanes` connections per lower rank; the hello tells
    // us who and which lane it is (accept order is arbitrary).
    let mut accepted: Vec<Vec<Option<Endpoint>>> = (0..cfg.rank)
        .map(|_| (0..cfg.lanes).map(|_| None).collect())
        .collect();
    for _ in 0..cfg.rank * cfg.lanes {
        let mut ep = listener.accept_deadline(deadline)?;
        let (peer, lane, seq) = read_hello(&mut ep, deadline)?;
        if seq != cfg.seq {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "net: universe mismatch: peer rank {peer} is in universe {seq}, \
                     this process is in universe {} — the rank processes have \
                     diverged (non-SPMD main?)",
                    cfg.seq
                ),
            ));
        }
        let (peer, lane) = (peer as usize, lane as usize);
        if peer >= cfg.rank || lane >= cfg.lanes || accepted[peer][lane].is_some() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "net: unexpected or duplicate connection from rank {peer} lane {lane} \
                     (expected {} lanes from ranks below {})",
                    cfg.lanes, cfg.rank
                ),
            ));
        }
        accepted[peer][lane] = Some(ep);
    }
    for (peer, lanes) in accepted.into_iter().enumerate() {
        peers[peer] = Some(
            lanes
                .into_iter()
                // PANIC: the accept loop above runs until every
                // expected (peer, lane) slot is filled, erroring on
                // duplicates — no slot can still be None here.
                .map(|ep| ep.expect("all lanes accepted"))
                .collect(),
        );
    }

    // Everyone who needed our listener has connected; drop the
    // rendezvous artifacts.
    match cfg.backend {
        Backend::Uds => {
            let _ = std::fs::remove_file(sock_path(&cfg.dir, cfg.seq, cfg.rank));
        }
        Backend::Tcp => {
            let _ = std::fs::remove_file(port_path(&cfg.dir, cfg.seq, cfg.rank));
        }
    }

    Ok(Mesh {
        rank: cfg.rank,
        n_ranks: cfg.n_ranks,
        lanes: cfg.lanes,
        peers,
    })
}

/// Re-establish the lane-0 stream between this rank and `peer` after
/// the original connection died. Role assignment is deterministic: the
/// lower rank of the pair listens on a fresh pair-scoped rendezvous
/// name, the higher rank connects (both sides call this one function).
/// Hellos are exchanged in *both* directions so each side proves who it
/// is and that it still belongs to universe `cfg.seq`. Every blocking
/// step is bounded by `deadline`, so a peer that died for real turns
/// into a typed error, never a hang.
pub fn reconnect_pair(cfg: &MeshConfig, peer: usize, deadline: Instant) -> io::Result<Endpoint> {
    assert!(peer != cfg.rank && peer < cfg.n_ranks, "peer out of range");
    let (lo, hi) = (cfg.rank.min(peer), cfg.rank.max(peer));
    let path = reconnect_path(&cfg.dir, cfg.seq, lo, hi);
    let hello = Frame::Hello {
        rank: cfg.rank as u16,
        lane: 0,
        seq: cfg.seq,
    };
    let expect = |got: (u16, u16, u64)| -> io::Result<()> {
        let (rank, lane, seq) = got;
        if rank as usize != peer || lane != 0 || seq != cfg.seq {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "net: reconnect hello mismatch: got rank {rank} lane {lane} \
                     universe {seq}, expected rank {peer} lane 0 universe {}",
                    cfg.seq
                ),
            ));
        }
        Ok(())
    };
    if cfg.rank == lo {
        // Listener role. Bind a fresh pair-scoped listener, wait for
        // the peer, validate, answer with our own hello.
        let listener = match cfg.backend {
            Backend::Uds => {
                let _ = std::fs::remove_file(&path);
                let l = UnixListener::bind(&path)?;
                l.set_nonblocking(true)?;
                Listener::Uds(l)
            }
            Backend::Tcp => {
                let l = TcpListener::bind("127.0.0.1:0")?;
                l.set_nonblocking(true)?;
                let port = l.local_addr()?.port();
                let pfile = path.with_extension("rc.port");
                let tmp = path.with_extension("rc.port.tmp");
                std::fs::write(&tmp, port.to_string())?;
                std::fs::rename(&tmp, &pfile)?;
                Listener::Tcp(l)
            }
        };
        let result = (|| {
            let mut ep = listener.accept_deadline(deadline)?;
            expect(read_hello(&mut ep, deadline)?)?;
            hello.write_to(&mut ep)?;
            ep.flush()?;
            Ok(ep)
        })();
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(path.with_extension("rc.port"));
        result
    } else {
        // Connector role: the listener side may take a moment to bind,
        // so retry on not-yet-there errors until the deadline.
        let what = format!("rank {peer} (lane-0 reconnect, universe {})", cfg.seq);
        let mut ep = match cfg.backend {
            Backend::Uds => connect_retry(
                || UnixStream::connect(&path).map(Endpoint::Uds),
                deadline,
                &what,
            )?,
            Backend::Tcp => {
                let pfile = path.with_extension("rc.port");
                connect_retry(
                    || {
                        let port: u16 =
                            std::fs::read_to_string(&pfile)?
                                .trim()
                                .parse()
                                .map_err(|_| {
                                    io::Error::new(
                                        io::ErrorKind::NotFound,
                                        "bad reconnect port file",
                                    )
                                })?;
                        let s = std::net::TcpStream::connect(("127.0.0.1", port))?;
                        Ok(Endpoint::Tcp(s))
                    },
                    deadline,
                    &what,
                )?
            }
        };
        ep.set_nodelay()?;
        hello.write_to(&mut ep)?;
        ep.flush()?;
        expect(read_hello(&mut ep, deadline)?)?;
        Ok(ep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    fn mesh_roundtrip(backend: Backend, lanes: usize) {
        let dir = crate::launch::unique_rendezvous_dir().unwrap();
        let n = 3;
        let mut handles = Vec::new();
        for rank in 0..n {
            let cfg = MeshConfig {
                rank,
                n_ranks: n,
                dir: dir.clone(),
                backend,
                seq: 0,
                lanes,
            };
            handles.push(std::thread::spawn(move || {
                let mut mesh = establish(&cfg).unwrap();
                assert_eq!(mesh.lanes, lanes);
                // Everyone sends (rank, lane) on every lane of every
                // peer, then reads the identifying pair back.
                for peer in 0..n {
                    if peer == rank {
                        continue;
                    }
                    let eps = mesh.peers[peer].as_mut().unwrap();
                    assert_eq!(eps.len(), lanes);
                    for (lane, ep) in eps.iter_mut().enumerate() {
                        ep.write_all(&[rank as u8, lane as u8]).unwrap();
                        ep.flush().unwrap();
                    }
                }
                for peer in 0..n {
                    if peer == rank {
                        continue;
                    }
                    let eps = mesh.peers[peer].as_mut().unwrap();
                    for (lane, ep) in eps.iter_mut().enumerate() {
                        let mut b = [0u8; 2];
                        ep.read_exact(&mut b).unwrap();
                        assert_eq!(
                            (b[0] as usize, b[1] as usize),
                            (peer, lane),
                            "byte pair identifies the peer stream and lane"
                        );
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn uds_mesh_connects_all_pairs() {
        mesh_roundtrip(Backend::Uds, 1);
    }

    #[test]
    fn tcp_mesh_connects_all_pairs() {
        mesh_roundtrip(Backend::Tcp, 1);
    }

    #[test]
    fn uds_mesh_connects_multi_lane() {
        mesh_roundtrip(Backend::Uds, 3);
    }

    #[test]
    fn tcp_mesh_connects_multi_lane() {
        mesh_roundtrip(Backend::Tcp, 2);
    }

    fn reconnect_roundtrip(backend: Backend) {
        let dir = crate::launch::unique_rendezvous_dir().unwrap();
        let mut handles = Vec::new();
        for rank in 0..2 {
            let cfg = MeshConfig {
                rank,
                n_ranks: 2,
                dir: dir.clone(),
                backend,
                seq: 3,
                lanes: 1,
            };
            handles.push(std::thread::spawn(move || {
                let deadline = Instant::now() + Duration::from_secs(5);
                let mut ep = reconnect_pair(&cfg, 1 - rank, deadline).unwrap();
                ep.write_all(&[rank as u8]).unwrap();
                let mut b = [0u8; 1];
                ep.read_exact(&mut b).unwrap();
                assert_eq!(b[0] as usize, 1 - rank);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn uds_reconnect_pair_rejoins_and_validates() {
        reconnect_roundtrip(Backend::Uds);
    }

    #[test]
    fn tcp_reconnect_pair_rejoins_and_validates() {
        reconnect_roundtrip(Backend::Tcp);
    }

    #[test]
    fn backend_parsing() {
        assert_eq!(Backend::parse("uds"), Some(Backend::Uds));
        assert_eq!(Backend::parse("unix"), Some(Backend::Uds));
        assert_eq!(Backend::parse("TCP"), Some(Backend::Tcp));
        assert_eq!(Backend::parse(""), Some(Backend::Uds));
        assert_eq!(Backend::parse("infiniband"), None);
    }
}
