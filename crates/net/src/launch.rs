//! The environment contract between a launcher and the rank processes,
//! mirroring how `mpirun` tells each process who it is.
//!
//! A launcher (the `pcomm-launch` binary, `Universe::run_multiprocess`,
//! or a test harness) starts N copies of the same program with:
//!
//! * `PCOMM_NET_RANK` — this process's rank, `0..n`;
//! * `PCOMM_NET_RANKS` — the total rank count N;
//! * `PCOMM_NET_DIR` — a shared rendezvous directory;
//! * `PCOMM_NET_BACKEND` — `uds` (default) or `tcp`.
//!
//! A `Universe::run` whose rank count matches `PCOMM_NET_RANKS` then
//! joins the mesh as rank `PCOMM_NET_RANK` instead of spawning threads.

use std::io;
use std::path::PathBuf;
use std::process::Command;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::mesh::Backend;

/// Env var: this process's rank.
pub const ENV_RANK: &str = "PCOMM_NET_RANK";
/// Env var: total rank count.
pub const ENV_RANKS: &str = "PCOMM_NET_RANKS";
/// Env var: shared rendezvous directory.
pub const ENV_DIR: &str = "PCOMM_NET_DIR";
/// Env var: socket backend (`uds` / `tcp`).
pub const ENV_BACKEND: &str = "PCOMM_NET_BACKEND";
/// Env var: partition-stream aggregation threshold in bytes (the
/// paper's `MPIR_CVAR_PART_AGGR_SIZE` analogue).
pub const ENV_AGGR: &str = "PCOMM_NET_AGGR";
/// Env var: writer lanes per peer pair (the VCI analogue).
pub const ENV_LANES: &str = "PCOMM_NET_LANES";
/// Env var: heartbeat interval in milliseconds on lane 0. Unset or `0`
/// disables heartbeats (the default — benches measure the wire, not
/// the liveness probes). When set, a peer silent for ~2× this interval
/// is declared dead with a typed `PeerPanicked` error.
pub const ENV_HB: &str = "PCOMM_NET_HB_MS";
/// Env var: inter-process fabric — `socket` (default: the UDS/TCP
/// stream transport) or `ipc` (same-host process-shared memory rings;
/// requires the `uds` backend and a platform [`crate::sys::supported`]
/// reports usable, otherwise falls back to sockets with a note).
pub const ENV_FABRIC: &str = "PCOMM_NET_FABRIC";
/// Env var: ipc descriptor-ring capacity per directed channel, in
/// slots.
pub const ENV_IPC_SLOTS: &str = "PCOMM_NET_IPC_SLOTS";
/// Env var: ipc FIFO payload-slab capacity per directed channel, bytes.
pub const ENV_IPC_SLAB: &str = "PCOMM_NET_IPC_SLAB";
/// Env var: ipc partition-arena capacity per directed channel, bytes.
pub const ENV_IPC_ARENA: &str = "PCOMM_NET_IPC_ARENA";

/// Default partition-stream aggregation threshold.
pub const DEFAULT_AGGR: usize = 256 * 1024;
/// Default writer lanes per peer pair: one ordered lane plus one
/// data-streaming lane.
pub const DEFAULT_LANES: usize = 2;
/// Upper bound on lanes; beyond this the fd and thread cost outweighs
/// any parallelism on a loopback transport.
pub const MAX_LANES: usize = 8;
/// Default ipc ring capacity (slots per directed channel).
pub const DEFAULT_IPC_SLOTS: usize = 128;
/// Default ipc FIFO slab capacity per directed channel.
pub const DEFAULT_IPC_SLAB: usize = 1 << 20;
/// Default ipc partition arena per directed channel.
pub const DEFAULT_IPC_ARENA: usize = 32 << 20;

/// Which inter-process fabric carries the rank mesh.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FabricKind {
    /// The UDS/TCP stream transport with reader/writer threads.
    Socket,
    /// Same-host process-shared memory rings with futex doorbells.
    Ipc,
}

/// The `PCOMM_NET_FABRIC` selection. Unknown values degrade to
/// [`FabricKind::Socket`] with a note, same policy as the other knobs.
pub fn fabric_from_env() -> FabricKind {
    match std::env::var(ENV_FABRIC) {
        Ok(s) => match s.trim() {
            "ipc" => FabricKind::Ipc,
            "" | "socket" => FabricKind::Socket,
            other => {
                eprintln!("pcomm-net: ignoring unknown {ENV_FABRIC}={other:?}, using socket");
                FabricKind::Socket
            }
        },
        Err(_) => FabricKind::Socket,
    }
}

/// The ipc segment geometry from the environment: ring slots clamped to
/// at least 2, slab to at least 4 KiB (a smaller slab could not hold
/// one spill chunk). All ranks read the same SPMD environment, so the
/// geometry agrees — and the segment header double-checks at attach.
pub fn ipc_params_from_env() -> (usize, usize, usize) {
    let slots = env_usize(ENV_IPC_SLOTS, DEFAULT_IPC_SLOTS).max(2);
    let slab = env_usize(ENV_IPC_SLAB, DEFAULT_IPC_SLAB).max(4096);
    let arena = env_usize(ENV_IPC_ARENA, DEFAULT_IPC_ARENA);
    (slots, slab, arena)
}

/// Parse a positive decimal env var, falling back to `default` when the
/// variable is unset or malformed (a typo should degrade, not crash —
/// same policy as [`MultiprocEnv::from_env`]).
fn env_usize(name: &str, default: usize) -> usize {
    match std::env::var(name) {
        Ok(s) => match s.trim().parse::<usize>() {
            Ok(v) if v >= 1 => v,
            _ => {
                eprintln!("pcomm-net: ignoring malformed {name}={s:?}, using {default}");
                default
            }
        },
        Err(_) => default,
    }
}

/// The `PCOMM_NET_AGGR` aggregation threshold in bytes.
pub fn aggr_from_env() -> usize {
    env_usize(ENV_AGGR, DEFAULT_AGGR)
}

/// The `PCOMM_NET_LANES` writer-lane count, clamped to `1..=MAX_LANES`.
/// All ranks read the same environment (SPMD), so the mesh agrees.
pub fn lanes_from_env() -> usize {
    env_usize(ENV_LANES, DEFAULT_LANES).min(MAX_LANES)
}

/// The `PCOMM_NET_HB_MS` heartbeat interval. `None` (heartbeats off)
/// when unset, `0`, or malformed — a typo degrades, not crashes.
pub fn hb_ms_from_env() -> Option<u64> {
    match std::env::var(ENV_HB) {
        Ok(s) => match s.trim().parse::<u64>() {
            Ok(0) => None,
            Ok(v) => Some(v),
            Err(_) => {
                eprintln!("pcomm-net: ignoring malformed {ENV_HB}={s:?}, heartbeats stay off");
                None
            }
        },
        Err(_) => None,
    }
}

/// The decoded multiprocess environment of a rank process.
#[derive(Debug, Clone)]
pub struct MultiprocEnv {
    /// This process's rank.
    pub rank: usize,
    /// Total ranks.
    pub n_ranks: usize,
    /// Shared rendezvous directory.
    pub dir: PathBuf,
    /// Socket backend.
    pub backend: Backend,
}

impl MultiprocEnv {
    /// Decode the `PCOMM_NET_*` environment. `None` when the process
    /// was not launched as a rank (any required variable missing).
    /// Malformed values are reported on stderr and treated as absent,
    /// so a typo degrades to an in-process run instead of a crash.
    pub fn from_env() -> Option<MultiprocEnv> {
        let rank = std::env::var(ENV_RANK).ok()?;
        let ranks = std::env::var(ENV_RANKS).ok()?;
        let dir = std::env::var(ENV_DIR).ok()?;
        let backend = std::env::var(ENV_BACKEND).unwrap_or_default();
        let parsed = (|| {
            let rank: usize = rank.parse().ok()?;
            let n_ranks: usize = ranks.parse().ok()?;
            let backend = Backend::parse(&backend)?;
            if n_ranks == 0 || rank >= n_ranks {
                return None;
            }
            Some(MultiprocEnv {
                rank,
                n_ranks,
                dir: PathBuf::from(dir),
                backend,
            })
        })();
        if parsed.is_none() {
            eprintln!(
                "pcomm-net: ignoring malformed PCOMM_NET_* environment \
                 (rank={rank:?}, ranks={ranks:?}, backend={backend:?})"
            );
        }
        parsed
    }

    /// Set the rank environment on a child command, overriding `rank`.
    pub fn apply_to(&self, cmd: &mut Command, rank: usize) {
        cmd.env(ENV_RANK, rank.to_string())
            .env(ENV_RANKS, self.n_ranks.to_string())
            .env(ENV_DIR, &self.dir)
            .env(ENV_BACKEND, self.backend.name());
    }
}

/// Create a fresh, unique rendezvous directory under the system temp
/// dir.
pub fn unique_rendezvous_dir() -> io::Result<PathBuf> {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    // ORDERING: nonce allocator — uniqueness within the process is all
    // the directory name needs.
    let nonce = COUNTER.fetch_add(1, Ordering::Relaxed);
    let stamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos())
        .unwrap_or(0);
    let dir = std::env::temp_dir().join(format!(
        "pcomm-net-{}-{}-{}",
        std::process::id(),
        nonce,
        stamp
    ));
    std::fs::create_dir_all(&dir)?;
    Ok(dir)
}

/// Spawn `n_ranks` copies of `argv` (program + args) with the rank
/// environment set, wait for all of them, and return the first
/// non-zero exit code (0 when every rank succeeded).
///
/// Ranks that die without an exit code (killed by a signal) count as
/// exit code 101. The rendezvous `dir` is created if missing; the
/// caller owns its lifetime.
pub fn launch_ranks(
    argv: &[String],
    n_ranks: usize,
    backend: Backend,
    dir: &PathBuf,
) -> io::Result<i32> {
    assert!(!argv.is_empty(), "launch_ranks needs a program to run");
    assert!(n_ranks >= 1, "launch_ranks needs at least one rank");
    std::fs::create_dir_all(dir)?;
    let env = MultiprocEnv {
        rank: 0,
        n_ranks,
        dir: dir.clone(),
        backend,
    };
    let mut children = Vec::with_capacity(n_ranks);
    for rank in 0..n_ranks {
        let mut cmd = Command::new(&argv[0]);
        cmd.args(&argv[1..]);
        env.apply_to(&mut cmd, rank);
        children.push((rank, cmd.spawn()?));
    }
    let mut first_bad = 0i32;
    let mut bad_rank = None;
    for (rank, mut child) in children {
        let status = child.wait()?;
        let code = status.code().unwrap_or(101);
        if code != 0 && first_bad == 0 {
            first_bad = code;
            bad_rank = Some(rank);
        }
    }
    if let Some(rank) = bad_rank {
        eprintln!("pcomm-launch: rank {rank} exited with code {first_bad}");
    }
    Ok(first_bad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_to_sets_all_vars() {
        let env = MultiprocEnv {
            rank: 0,
            n_ranks: 4,
            dir: PathBuf::from("/tmp/x"),
            backend: Backend::Tcp,
        };
        let mut cmd = Command::new("true");
        env.apply_to(&mut cmd, 2);
        let vars: Vec<(String, String)> = cmd
            .get_envs()
            .filter_map(|(k, v)| {
                Some((
                    k.to_string_lossy().into_owned(),
                    v?.to_string_lossy().into_owned(),
                ))
            })
            .collect();
        assert!(vars.contains(&(ENV_RANK.into(), "2".into())));
        assert!(vars.contains(&(ENV_RANKS.into(), "4".into())));
        assert!(vars.contains(&(ENV_DIR.into(), "/tmp/x".into())));
        assert!(vars.contains(&(ENV_BACKEND.into(), "tcp".into())));
    }

    #[test]
    fn knob_defaults_when_unset() {
        // No in-process test mutates these vars (children get them via
        // Command env), so the defaults are observable here.
        assert_eq!(aggr_from_env(), DEFAULT_AGGR);
        assert_eq!(lanes_from_env(), DEFAULT_LANES);
    }

    #[test]
    fn unique_dirs_do_not_collide() {
        let a = unique_rendezvous_dir().unwrap();
        let b = unique_rendezvous_dir().unwrap();
        assert_ne!(a, b);
        let _ = std::fs::remove_dir_all(&a);
        let _ = std::fs::remove_dir_all(&b);
    }

    #[test]
    fn launch_ranks_propagates_failure() {
        let dir = unique_rendezvous_dir().unwrap();
        // `false` exits 1 in every rank; the first failure wins.
        let code = launch_ranks(&["false".to_string()], 2, Backend::Uds, &dir).unwrap();
        assert_eq!(code, 1);
        let code = launch_ranks(&["true".to_string()], 2, Backend::Uds, &dir).unwrap();
        assert_eq!(code, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
