//! The versioned wire protocol.
//!
//! Every frame on a socket is `u32` little-endian body length followed
//! by the body: one version byte, one opcode byte, then the opcode's
//! fields in little-endian order (variable-length payloads run to the
//! end of the body). The protocol is symmetric — both sides of a
//! connection may send any frame at any time after the opening
//! [`Frame::Hello`].
//!
//! | opcode | frame            | fields                                     |
//! |--------|------------------|--------------------------------------------|
//! | 1      | `Hello`          | rank:u16, lane:u16, seq:u64                |
//! | 2      | `Eager`          | shard:u16, ctx:u64, tag:i64, payload       |
//! | 3      | `Rts`            | shard:u16, ctx:u64, tag:i64, len:u64, rdv_id:u64 |
//! | 4      | `Cts`            | rdv_id:u64                                 |
//! | 5      | `RdvData`        | rdv_id:u64, payload                        |
//! | 6      | `BarrierArrive`  | gen:u64                                    |
//! | 7      | `BarrierRelease` | gen:u64                                    |
//! | 8      | `Abort`          | kind:u8, a:u64, b:u64, tag:i64, attempts:u64, detail |
//! | 9      | `Bye`            | —                                          |
//! | 10     | `WinAnnounce`    | win_ctx:u64, len:u64                       |
//! | 11     | `Put`            | win_ctx:u64, offset:u64, payload           |
//! | 12     | `GetReq`         | win_ctx:u64, offset:u64, len:u64, token:u64 |
//! | 13     | `GetResp`        | token:u64, payload                         |
//! | 14     | `PartRts`        | ctx:u64, total_len:u64, rdv_id:u64         |
//! | 15     | `PartCts`        | rdv_id:u64                                 |
//! | 16     | `PartData`       | rdv_id:u64, offset:u64, payload            |
//! | 17     | `Heartbeat`      | seq:u64                                    |
//! | 18     | `StreamResync`   | rdv_id:u64, received:u64, missing ranges   |
//!
//! Opcodes 14–16 carry the partition-granular streaming protocol: a
//! `PartRts` announces a whole partitioned-send buffer for a given
//! communicator context, the receiver answers `PartCts` once its
//! destination is pinned, and each `PartData` commits one byte range
//! (an aggregated run of ready partitions) at an explicit offset.
//! Because every `PartData` names its own offset, data frames are
//! order-independent and may travel on any writer lane.
//!
//! Opcodes 17–18 serve liveness and recovery: `Heartbeat` frames keep
//! lane 0 audibly alive when `PCOMM_NET_HB_MS` is set, and after a
//! lane-0 reconnect each receiver reports, per open inbound stream,
//! which byte ranges it is still missing so the sender can replay
//! exactly those (offset-addressed commits are idempotent, so replaying
//! a range that did arrive is harmless).

use std::io::{self, Read, Write};

/// Protocol version carried in every frame body. Version 2 added the
/// `lane` field to `Hello` and the partitioned streaming frames
/// (`PartRts`/`PartCts`/`PartData`).
pub const WIRE_VERSION: u8 = 2;

/// Upper bound on a frame body; larger lengths are treated as stream
/// corruption rather than an allocation request.
pub const MAX_FRAME_BODY: usize = 1 << 30;

/// [`Frame::Abort`] kind: a message was dropped on every retry
/// (`a` = src rank, `b` = dst rank, plus `tag` and `attempts`).
pub const ABORT_MESSAGE_LOST: u8 = 1;
/// [`Frame::Abort`] kind: a rank panicked (`a` = rank, `detail` = message).
pub const ABORT_PEER_PANICKED: u8 = 2;
/// [`Frame::Abort`] kind: API misuse attributed to a rank (`a` = rank).
pub const ABORT_MISUSE_RANK: u8 = 3;
/// [`Frame::Abort`] kind: API misuse with no attributable rank.
pub const ABORT_MISUSE: u8 = 4;

/// Wire opcodes, public so the offline auditor (`pcomm-audit`) can
/// reason about frame kinds without re-deriving the numbering. The
/// values are part of the wire format and must never be renumbered.
pub mod op {
    /// Connection handshake ([`Frame::Hello`](super::Frame::Hello)).
    pub const HELLO: u8 = 1;
    /// Buffered eager message.
    pub const EAGER: u8 = 2;
    /// Rendezvous ready-to-send.
    pub const RTS: u8 = 3;
    /// Rendezvous clear-to-send.
    pub const CTS: u8 = 4;
    /// Rendezvous payload.
    pub const RDV_DATA: u8 = 5;
    /// Barrier arrival (rank → coordinator).
    pub const BARRIER_ARRIVE: u8 = 6;
    /// Barrier release (coordinator → rank).
    pub const BARRIER_RELEASE: u8 = 7;
    /// Peer abort carrying a typed error.
    pub const ABORT: u8 = 8;
    /// Clean shutdown.
    pub const BYE: u8 = 9;
    /// RMA window announcement.
    pub const WIN_ANNOUNCE: u8 = 10;
    /// RMA put.
    pub const PUT: u8 = 11;
    /// RMA get request.
    pub const GET_REQ: u8 = 12;
    /// RMA get response.
    pub const GET_RESP: u8 = 13;
    /// Partitioned-stream ready-to-send.
    pub const PART_RTS: u8 = 14;
    /// Partitioned-stream clear-to-send.
    pub const PART_CTS: u8 = 15;
    /// Partitioned-stream data chunk.
    pub const PART_DATA: u8 = 16;
    /// Liveness heartbeat.
    pub const HEARTBEAT: u8 = 17;
    /// Post-failover stream resynchronisation.
    pub const STREAM_RESYNC: u8 = 18;

    /// Human-readable opcode name for audit findings; `"op<N>"` is
    /// never returned for valid wire traffic.
    pub fn name(op: u8) -> &'static str {
        match op {
            HELLO => "Hello",
            EAGER => "Eager",
            RTS => "Rts",
            CTS => "Cts",
            RDV_DATA => "RdvData",
            BARRIER_ARRIVE => "BarrierArrive",
            BARRIER_RELEASE => "BarrierRelease",
            ABORT => "Abort",
            BYE => "Bye",
            WIN_ANNOUNCE => "WinAnnounce",
            PUT => "Put",
            GET_REQ => "GetReq",
            GET_RESP => "GetResp",
            PART_RTS => "PartRts",
            PART_CTS => "PartCts",
            PART_DATA => "PartData",
            HEARTBEAT => "Heartbeat",
            STREAM_RESYNC => "StreamResync",
            _ => "op?",
        }
    }
}

const OP_HELLO: u8 = op::HELLO;
const OP_EAGER: u8 = op::EAGER;
const OP_RTS: u8 = op::RTS;
const OP_CTS: u8 = op::CTS;
const OP_RDV_DATA: u8 = op::RDV_DATA;
const OP_BARRIER_ARRIVE: u8 = op::BARRIER_ARRIVE;
const OP_BARRIER_RELEASE: u8 = op::BARRIER_RELEASE;
const OP_ABORT: u8 = op::ABORT;
const OP_BYE: u8 = op::BYE;
const OP_WIN_ANNOUNCE: u8 = op::WIN_ANNOUNCE;
const OP_PUT: u8 = op::PUT;
const OP_GET_REQ: u8 = op::GET_REQ;
const OP_GET_RESP: u8 = op::GET_RESP;
const OP_PART_RTS: u8 = op::PART_RTS;
const OP_PART_CTS: u8 = op::PART_CTS;
const OP_PART_DATA: u8 = op::PART_DATA;
const OP_HEARTBEAT: u8 = op::HEARTBEAT;
const OP_STREAM_RESYNC: u8 = op::STREAM_RESYNC;

/// Upper bound on the number of missing ranges one [`Frame::StreamResync`]
/// may carry; a decoded count beyond this is treated as corruption.
pub const MAX_RESYNC_RANGES: usize = 4096;

/// One decoded wire frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// First frame on every connection: who is connecting, on which
    /// writer lane, for which universe (the per-process multiproc
    /// universe sequence number).
    Hello {
        /// Rank of the connecting process.
        rank: u16,
        /// Writer lane this connection carries (0 = primary).
        lane: u16,
        /// Universe sequence number both sides must agree on.
        seq: u64,
    },
    /// A fully buffered eager message.
    Eager {
        /// Match shard the receiver must deliver into.
        shard: u16,
        /// Communicator context id.
        ctx: u64,
        /// Message tag.
        tag: i64,
        /// The message bytes.
        payload: Vec<u8>,
    },
    /// Rendezvous ready-to-send: the sender has `len` bytes pinned under
    /// `rdv_id` and waits for a [`Frame::Cts`].
    Rts {
        /// Match shard the receiver must deliver into.
        shard: u16,
        /// Communicator context id.
        ctx: u64,
        /// Message tag.
        tag: i64,
        /// Payload length in bytes.
        len: u64,
        /// Sender-chosen rendezvous id, echoed by `Cts`/`RdvData`.
        rdv_id: u64,
    },
    /// Rendezvous clear-to-send: the receiver has a matching posted
    /// buffer for `rdv_id`.
    Cts {
        /// The rendezvous id from the RTS.
        rdv_id: u64,
    },
    /// The rendezvous payload, sent after `Cts`.
    RdvData {
        /// The rendezvous id from the RTS.
        rdv_id: u64,
        /// The message bytes.
        payload: Vec<u8>,
    },
    /// A rank reached barrier generation `gen` (sent to the coordinator).
    BarrierArrive {
        /// Barrier generation number.
        gen: u64,
    },
    /// The coordinator releases barrier generation `gen`.
    BarrierRelease {
        /// Barrier generation number.
        gen: u64,
    },
    /// A peer aborted its universe; carries an encoded `PcommError`
    /// (see the `ABORT_*` kinds — the field meaning depends on `kind`).
    Abort {
        /// One of the `ABORT_*` constants.
        kind: u8,
        /// First numeric field (e.g. source or panicking rank).
        a: u64,
        /// Second numeric field (e.g. destination rank).
        b: u64,
        /// Message tag, where applicable.
        tag: i64,
        /// Delivery attempts, where applicable.
        attempts: u64,
        /// Human-readable detail (panic message, misuse description).
        detail: String,
    },
    /// Clean shutdown: no further frames follow from this peer.
    Bye,
    /// A window target announces an exposed region to its origin.
    WinAnnounce {
        /// Window context id (agreed by SPMD allocation order).
        win_ctx: u64,
        /// Window length in bytes.
        len: u64,
    },
    /// One-sided put into a remote window.
    Put {
        /// Window context id.
        win_ctx: u64,
        /// Byte offset into the window.
        offset: u64,
        /// The bytes to store.
        payload: Vec<u8>,
    },
    /// One-sided get request; the target answers with [`Frame::GetResp`].
    GetReq {
        /// Window context id.
        win_ctx: u64,
        /// Byte offset into the window.
        offset: u64,
        /// Bytes requested.
        len: u64,
        /// Origin-chosen token echoed by the response.
        token: u64,
    },
    /// Reply to a [`Frame::GetReq`].
    GetResp {
        /// The token from the request.
        token: u64,
        /// The window bytes read.
        payload: Vec<u8>,
    },
    /// Partitioned-stream ready-to-send: the sender has `total_len`
    /// bytes pinned for the partitioned pair on context `ctx` and will
    /// stream ranges under `rdv_id` once a [`Frame::PartCts`] arrives.
    PartRts {
        /// Partitioned communicator context id (pairs sender/receiver).
        ctx: u64,
        /// Whole-buffer length in bytes.
        total_len: u64,
        /// Sender-chosen stream id, echoed by `PartCts`/`PartData`.
        rdv_id: u64,
    },
    /// Partitioned-stream clear-to-send: the receiver has pinned its
    /// whole destination buffer for `rdv_id`.
    PartCts {
        /// The stream id from the PartRts.
        rdv_id: u64,
    },
    /// One committed byte range of a partitioned stream. Offsets are
    /// explicit, so `PartData` frames are order-independent and may be
    /// carried by any writer lane.
    PartData {
        /// The stream id from the PartRts.
        rdv_id: u64,
        /// Byte offset of this range in the destination buffer.
        offset: u64,
        /// The range bytes.
        payload: Vec<u8>,
    },
    /// Liveness probe on lane 0. Carries a sender-local sequence number
    /// for diagnostics; receipt of *any* frame counts as life, the
    /// heartbeat just guarantees a bounded silence interval.
    Heartbeat {
        /// Monotonic per-peer heartbeat counter.
        seq: u64,
    },
    /// After a lane-0 reconnect, the receiver of stream `rdv_id`
    /// reports how much it has committed and which byte ranges are
    /// still missing, so the sender replays exactly those.
    StreamResync {
        /// The stream id from the PartRts.
        rdv_id: u64,
        /// Total bytes committed so far (diagnostics).
        received: u64,
        /// Byte ranges `(offset, len)` not yet committed.
        missing: Vec<(u64, u64)>,
    },
}

fn corrupt(what: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("net: {}", what.into()))
}

/// Frame body encoder writing into a caller-owned buffer so writers can
/// reuse one scratch allocation across frames.
struct Enc<'a> {
    buf: &'a mut Vec<u8>,
}

impl<'a> Enc<'a> {
    fn new(buf: &'a mut Vec<u8>, op: u8) -> Enc<'a> {
        // Reserve the 4-byte length prefix up front; patched in finish().
        buf.clear();
        buf.extend_from_slice(&[0u8; 4]);
        buf.push(WIRE_VERSION);
        buf.push(op);
        Enc { buf }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    fn finish(self) {
        let body = (self.buf.len() - 4) as u32;
        self.buf[..4].copy_from_slice(&body.to_le_bytes());
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.at + n > self.buf.len() {
            return Err(corrupt("truncated frame body"));
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> io::Result<u16> {
        // PANIC: `take(2)` either errs or returns exactly 2 bytes.
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> io::Result<u64> {
        // PANIC: `take(8)` either errs or returns exactly 8 bytes.
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> io::Result<i64> {
        // PANIC: `take(8)` either errs or returns exactly 8 bytes.
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn rest_slice(&mut self) -> &'a [u8] {
        let s = &self.buf[self.at..];
        self.at = self.buf.len();
        s
    }

    fn rest(&mut self) -> Vec<u8> {
        self.rest_slice().to_vec()
    }
}

/// Check the version byte of a frame body and return the opcode byte
/// without decoding the fields. Used by readers to route hot frames
/// (`PartData`) to a zero-extra-copy fast path.
pub fn body_opcode(body: &[u8]) -> io::Result<u8> {
    let mut d = Dec { buf: body, at: 0 };
    let version = d.u8()?;
    if version != WIRE_VERSION {
        return Err(corrupt(format!(
            "wire version mismatch: got {version}, expected {WIRE_VERSION}"
        )));
    }
    d.u8()
}

/// True if `op` (from [`body_opcode`]) is a `PartData` frame.
pub fn is_part_data(op: u8) -> bool {
    op == OP_PART_DATA
}

/// Validate a version byte read straight off the wire (readers that
/// split the header from the body check it before anything else).
pub fn check_version(version: u8) -> io::Result<()> {
    if version != WIRE_VERSION {
        return Err(corrupt(format!(
            "wire version mismatch: got {version}, expected {WIRE_VERSION}"
        )));
    }
    Ok(())
}

/// `PartData` body bytes before the payload: version, opcode, `rdv_id`,
/// `offset`.
pub const PART_DATA_BODY_HDR: usize = 2 + 16;

/// Encode a `PartData` frame *header* — length prefix through `offset`,
/// everything except the payload — into `out`. A writer follows it with
/// the payload bytes themselves (one vectored write straight from the
/// pinned source buffer), producing exactly the bytes
/// `Frame::PartData { .. }.encode_into(..)` would.
pub fn encode_part_data_header(rdv_id: u64, offset: u64, payload_len: usize, out: &mut Vec<u8>) {
    out.clear();
    out.extend_from_slice(&part_data_header(rdv_id, offset, payload_len));
}

/// Body bytes of an `RdvData` frame before the payload: version, op,
/// rdv id.
pub const RDV_DATA_BODY_HDR: usize = 2 + 8;

/// Encode an `RdvData` frame *header* — length prefix through the rdv
/// id, everything except the payload — into `out`. A writer follows it
/// with the payload bytes themselves (one vectored write straight from
/// the pinned rendezvous source), producing exactly the bytes
/// `Frame::RdvData { .. }.encode_into(..)` would.
pub fn encode_rdv_data_header(rdv_id: u64, payload_len: usize, out: &mut Vec<u8>) {
    out.clear();
    let body = (RDV_DATA_BODY_HDR + payload_len) as u32;
    out.extend_from_slice(&body.to_le_bytes());
    out.push(WIRE_VERSION);
    out.push(OP_RDV_DATA);
    out.extend_from_slice(&rdv_id.to_le_bytes());
}

/// Stack-allocated form of [`encode_part_data_header`], for writers
/// that assemble vectored batches without touching the heap.
pub fn part_data_header(
    rdv_id: u64,
    offset: u64,
    payload_len: usize,
) -> [u8; 4 + PART_DATA_BODY_HDR] {
    let mut out = [0u8; 4 + PART_DATA_BODY_HDR];
    let body = (PART_DATA_BODY_HDR + payload_len) as u32;
    out[..4].copy_from_slice(&body.to_le_bytes());
    out[4] = WIRE_VERSION;
    out[5] = OP_PART_DATA;
    out[6..14].copy_from_slice(&rdv_id.to_le_bytes());
    out[14..22].copy_from_slice(&offset.to_le_bytes());
    out
}

/// Decode a `PartData` body in place: returns `(rdv_id, offset,
/// payload)` with the payload borrowed from `body`, so a reader can
/// commit the range straight out of its receive buffer without the
/// intermediate `Vec` a full [`Frame::decode`] would allocate.
pub fn decode_part_data(body: &[u8]) -> io::Result<(u64, u64, &[u8])> {
    let op = body_opcode(body)?;
    if op != OP_PART_DATA {
        return Err(corrupt(format!("expected PartData, got opcode {op}")));
    }
    let mut d = Dec { buf: body, at: 2 };
    let rdv_id = d.u64()?;
    let offset = d.u64()?;
    Ok((rdv_id, offset, d.rest_slice()))
}

impl Frame {
    /// Short name of the frame's opcode (diagnostics).
    pub fn name(&self) -> &'static str {
        match self {
            Frame::Hello { .. } => "Hello",
            Frame::Eager { .. } => "Eager",
            Frame::Rts { .. } => "Rts",
            Frame::Cts { .. } => "Cts",
            Frame::RdvData { .. } => "RdvData",
            Frame::BarrierArrive { .. } => "BarrierArrive",
            Frame::BarrierRelease { .. } => "BarrierRelease",
            Frame::Abort { .. } => "Abort",
            Frame::Bye => "Bye",
            Frame::WinAnnounce { .. } => "WinAnnounce",
            Frame::Put { .. } => "Put",
            Frame::GetReq { .. } => "GetReq",
            Frame::GetResp { .. } => "GetResp",
            Frame::PartRts { .. } => "PartRts",
            Frame::PartCts { .. } => "PartCts",
            Frame::PartData { .. } => "PartData",
            Frame::Heartbeat { .. } => "Heartbeat",
            Frame::StreamResync { .. } => "StreamResync",
        }
    }

    /// The frame's wire opcode (one of the [`op`] constants).
    pub fn op(&self) -> u8 {
        match self {
            Frame::Hello { .. } => op::HELLO,
            Frame::Eager { .. } => op::EAGER,
            Frame::Rts { .. } => op::RTS,
            Frame::Cts { .. } => op::CTS,
            Frame::RdvData { .. } => op::RDV_DATA,
            Frame::BarrierArrive { .. } => op::BARRIER_ARRIVE,
            Frame::BarrierRelease { .. } => op::BARRIER_RELEASE,
            Frame::Abort { .. } => op::ABORT,
            Frame::Bye => op::BYE,
            Frame::WinAnnounce { .. } => op::WIN_ANNOUNCE,
            Frame::Put { .. } => op::PUT,
            Frame::GetReq { .. } => op::GET_REQ,
            Frame::GetResp { .. } => op::GET_RESP,
            Frame::PartRts { .. } => op::PART_RTS,
            Frame::PartCts { .. } => op::PART_CTS,
            Frame::PartData { .. } => op::PART_DATA,
            Frame::Heartbeat { .. } => op::HEARTBEAT,
            Frame::StreamResync { .. } => op::STREAM_RESYNC,
        }
    }

    /// Encode the frame, including its 4-byte length prefix.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        self.encode_into(&mut out);
        out
    }

    /// Encode the frame (length prefix + body) into `out`, clearing it
    /// first. Reusing one scratch buffer across calls amortises the
    /// allocation that a fresh [`Frame::encode`] pays per frame.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Frame::Hello { rank, lane, seq } => {
                let mut e = Enc::new(out, OP_HELLO);
                e.u16(*rank);
                e.u16(*lane);
                e.u64(*seq);
                e.finish()
            }
            Frame::Eager {
                shard,
                ctx,
                tag,
                payload,
            } => {
                let mut e = Enc::new(out, OP_EAGER);
                e.u16(*shard);
                e.u64(*ctx);
                e.i64(*tag);
                e.bytes(payload);
                e.finish()
            }
            Frame::Rts {
                shard,
                ctx,
                tag,
                len,
                rdv_id,
            } => {
                let mut e = Enc::new(out, OP_RTS);
                e.u16(*shard);
                e.u64(*ctx);
                e.i64(*tag);
                e.u64(*len);
                e.u64(*rdv_id);
                e.finish()
            }
            Frame::Cts { rdv_id } => {
                let mut e = Enc::new(out, OP_CTS);
                e.u64(*rdv_id);
                e.finish()
            }
            Frame::RdvData { rdv_id, payload } => {
                let mut e = Enc::new(out, OP_RDV_DATA);
                e.u64(*rdv_id);
                e.bytes(payload);
                e.finish()
            }
            Frame::BarrierArrive { gen } => {
                let mut e = Enc::new(out, OP_BARRIER_ARRIVE);
                e.u64(*gen);
                e.finish()
            }
            Frame::BarrierRelease { gen } => {
                let mut e = Enc::new(out, OP_BARRIER_RELEASE);
                e.u64(*gen);
                e.finish()
            }
            Frame::Abort {
                kind,
                a,
                b,
                tag,
                attempts,
                detail,
            } => {
                let mut e = Enc::new(out, OP_ABORT);
                e.u8(*kind);
                e.u64(*a);
                e.u64(*b);
                e.i64(*tag);
                e.u64(*attempts);
                e.bytes(detail.as_bytes());
                e.finish()
            }
            Frame::Bye => Enc::new(out, OP_BYE).finish(),
            Frame::WinAnnounce { win_ctx, len } => {
                let mut e = Enc::new(out, OP_WIN_ANNOUNCE);
                e.u64(*win_ctx);
                e.u64(*len);
                e.finish()
            }
            Frame::Put {
                win_ctx,
                offset,
                payload,
            } => {
                let mut e = Enc::new(out, OP_PUT);
                e.u64(*win_ctx);
                e.u64(*offset);
                e.bytes(payload);
                e.finish()
            }
            Frame::GetReq {
                win_ctx,
                offset,
                len,
                token,
            } => {
                let mut e = Enc::new(out, OP_GET_REQ);
                e.u64(*win_ctx);
                e.u64(*offset);
                e.u64(*len);
                e.u64(*token);
                e.finish()
            }
            Frame::GetResp { token, payload } => {
                let mut e = Enc::new(out, OP_GET_RESP);
                e.u64(*token);
                e.bytes(payload);
                e.finish()
            }
            Frame::PartRts {
                ctx,
                total_len,
                rdv_id,
            } => {
                let mut e = Enc::new(out, OP_PART_RTS);
                e.u64(*ctx);
                e.u64(*total_len);
                e.u64(*rdv_id);
                e.finish()
            }
            Frame::PartCts { rdv_id } => {
                let mut e = Enc::new(out, OP_PART_CTS);
                e.u64(*rdv_id);
                e.finish()
            }
            Frame::PartData {
                rdv_id,
                offset,
                payload,
            } => {
                let mut e = Enc::new(out, OP_PART_DATA);
                e.u64(*rdv_id);
                e.u64(*offset);
                e.bytes(payload);
                e.finish()
            }
            Frame::Heartbeat { seq } => {
                let mut e = Enc::new(out, OP_HEARTBEAT);
                e.u64(*seq);
                e.finish()
            }
            Frame::StreamResync {
                rdv_id,
                received,
                missing,
            } => {
                let mut e = Enc::new(out, OP_STREAM_RESYNC);
                e.u64(*rdv_id);
                e.u64(*received);
                debug_assert!(missing.len() <= MAX_RESYNC_RANGES);
                e.u16(missing.len().min(MAX_RESYNC_RANGES) as u16);
                for &(off, len) in missing.iter().take(MAX_RESYNC_RANGES) {
                    e.u64(off);
                    e.u64(len);
                }
                e.finish()
            }
        }
    }

    /// Decode one frame body (without the length prefix).
    pub fn decode(body: &[u8]) -> io::Result<Frame> {
        let mut d = Dec { buf: body, at: 0 };
        let version = d.u8()?;
        if version != WIRE_VERSION {
            return Err(corrupt(format!(
                "wire version mismatch: got {version}, expected {WIRE_VERSION}"
            )));
        }
        let op = d.u8()?;
        let frame = match op {
            OP_HELLO => Frame::Hello {
                rank: d.u16()?,
                lane: d.u16()?,
                seq: d.u64()?,
            },
            OP_EAGER => Frame::Eager {
                shard: d.u16()?,
                ctx: d.u64()?,
                tag: d.i64()?,
                payload: d.rest(),
            },
            OP_RTS => Frame::Rts {
                shard: d.u16()?,
                ctx: d.u64()?,
                tag: d.i64()?,
                len: d.u64()?,
                rdv_id: d.u64()?,
            },
            OP_CTS => Frame::Cts { rdv_id: d.u64()? },
            OP_RDV_DATA => Frame::RdvData {
                rdv_id: d.u64()?,
                payload: d.rest(),
            },
            OP_BARRIER_ARRIVE => Frame::BarrierArrive { gen: d.u64()? },
            OP_BARRIER_RELEASE => Frame::BarrierRelease { gen: d.u64()? },
            OP_ABORT => Frame::Abort {
                kind: d.u8()?,
                a: d.u64()?,
                b: d.u64()?,
                tag: d.i64()?,
                attempts: d.u64()?,
                detail: String::from_utf8_lossy(&d.rest()).into_owned(),
            },
            OP_BYE => Frame::Bye,
            OP_WIN_ANNOUNCE => Frame::WinAnnounce {
                win_ctx: d.u64()?,
                len: d.u64()?,
            },
            OP_PUT => Frame::Put {
                win_ctx: d.u64()?,
                offset: d.u64()?,
                payload: d.rest(),
            },
            OP_GET_REQ => Frame::GetReq {
                win_ctx: d.u64()?,
                offset: d.u64()?,
                len: d.u64()?,
                token: d.u64()?,
            },
            OP_GET_RESP => Frame::GetResp {
                token: d.u64()?,
                payload: d.rest(),
            },
            OP_PART_RTS => Frame::PartRts {
                ctx: d.u64()?,
                total_len: d.u64()?,
                rdv_id: d.u64()?,
            },
            OP_PART_CTS => Frame::PartCts { rdv_id: d.u64()? },
            OP_PART_DATA => Frame::PartData {
                rdv_id: d.u64()?,
                offset: d.u64()?,
                payload: d.rest(),
            },
            OP_HEARTBEAT => Frame::Heartbeat { seq: d.u64()? },
            OP_STREAM_RESYNC => {
                let rdv_id = d.u64()?;
                let received = d.u64()?;
                let count = d.u16()? as usize;
                if count > MAX_RESYNC_RANGES {
                    return Err(corrupt(format!("implausible resync range count {count}")));
                }
                // Sized by bytes actually present, not the claimed
                // count, so a lying count cannot reserve memory.
                let mut missing = Vec::new();
                for _ in 0..count {
                    missing.push((d.u64()?, d.u64()?));
                }
                Frame::StreamResync {
                    rdv_id,
                    received,
                    missing,
                }
            }
            other => return Err(corrupt(format!("unknown opcode {other}"))),
        };
        Ok(frame)
    }

    /// Write the frame to a stream (length prefix + body).
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(&self.encode())
    }

    /// Read one frame from a stream. `Err(UnexpectedEof)` with an empty
    /// prefix means the peer closed the connection cleanly at a frame
    /// boundary.
    pub fn read_from(r: &mut impl Read) -> io::Result<Frame> {
        let mut prefix = [0u8; 4];
        r.read_exact(&mut prefix)?;
        let len = u32::from_le_bytes(prefix) as usize;
        if !(2..=MAX_FRAME_BODY).contains(&len) {
            return Err(corrupt(format!("implausible frame length {len}")));
        }
        let body = read_body(r, len)?;
        Frame::decode(&body)
    }
}

/// Allocation step for frame bodies read off the wire.
const BODY_ALLOC_STEP: usize = 1 << 20;

/// Read a `len`-byte frame body without trusting `len` for the initial
/// allocation: grow in [`BODY_ALLOC_STEP`] increments as bytes actually
/// arrive, so a corrupted or hostile length prefix costs at most one
/// step of memory before the stream runs dry (a typed error), never an
/// up-front gigabyte-sized allocation.
fn read_body(r: &mut impl Read, len: usize) -> io::Result<Vec<u8>> {
    let mut body = vec![0u8; len.min(BODY_ALLOC_STEP)];
    r.read_exact(&mut body)?;
    while body.len() < len {
        let at = body.len();
        let step = (len - at).min(BODY_ALLOC_STEP);
        body.resize(at + step, 0);
        r.read_exact(&mut body[at..])?;
    }
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(f: Frame) {
        let enc = f.encode();
        let body_len = u32::from_le_bytes(enc[..4].try_into().unwrap()) as usize;
        assert_eq!(body_len, enc.len() - 4, "length prefix covers the body");
        let dec = Frame::decode(&enc[4..]).unwrap();
        assert_eq!(dec, f);
        // And through the stream API.
        let mut cursor = std::io::Cursor::new(&enc);
        assert_eq!(Frame::read_from(&mut cursor).unwrap(), f);
        // encode_into with a dirty scratch buffer agrees with encode.
        let mut scratch = vec![0xAAu8; 7];
        f.encode_into(&mut scratch);
        assert_eq!(scratch, enc, "scratch reuse matches fresh encode");
    }

    #[test]
    fn all_frames_roundtrip() {
        roundtrip(Frame::Hello {
            rank: 3,
            lane: 1,
            seq: 7,
        });
        roundtrip(Frame::Eager {
            shard: 2,
            ctx: 99,
            tag: -11,
            payload: vec![1, 2, 3],
        });
        roundtrip(Frame::Rts {
            shard: 0,
            ctx: 1,
            tag: 5,
            len: 1 << 20,
            rdv_id: 42,
        });
        roundtrip(Frame::Cts { rdv_id: 42 });
        roundtrip(Frame::RdvData {
            rdv_id: 42,
            payload: vec![9; 128],
        });
        roundtrip(Frame::BarrierArrive { gen: 8 });
        roundtrip(Frame::BarrierRelease { gen: 8 });
        roundtrip(Frame::Abort {
            kind: ABORT_MESSAGE_LOST,
            a: 0,
            b: 1,
            tag: 5,
            attempts: 3,
            detail: String::new(),
        });
        roundtrip(Frame::Abort {
            kind: ABORT_PEER_PANICKED,
            a: 1,
            b: 0,
            tag: 0,
            attempts: 0,
            detail: "index out of bounds".into(),
        });
        roundtrip(Frame::Bye);
        roundtrip(Frame::WinAnnounce {
            win_ctx: 1 << 18,
            len: 4096,
        });
        roundtrip(Frame::Put {
            win_ctx: 1 << 18,
            offset: 64,
            payload: vec![7; 64],
        });
        roundtrip(Frame::GetReq {
            win_ctx: 1 << 18,
            offset: 0,
            len: 64,
            token: 5,
        });
        roundtrip(Frame::GetResp {
            token: 5,
            payload: vec![1; 64],
        });
        roundtrip(Frame::PartRts {
            ctx: 1 << 17,
            total_len: 1 << 20,
            rdv_id: 77,
        });
        roundtrip(Frame::PartCts { rdv_id: 77 });
        roundtrip(Frame::PartData {
            rdv_id: 77,
            offset: 1 << 16,
            payload: vec![5; 256],
        });
        roundtrip(Frame::Heartbeat { seq: 999 });
        roundtrip(Frame::StreamResync {
            rdv_id: 77,
            received: 1 << 19,
            missing: vec![(0, 4096), (1 << 19, 65536)],
        });
        roundtrip(Frame::StreamResync {
            rdv_id: 1,
            received: 0,
            missing: Vec::new(),
        });
    }

    #[test]
    fn empty_payload_roundtrips() {
        roundtrip(Frame::Eager {
            shard: 0,
            ctx: 0,
            tag: -1,
            payload: Vec::new(),
        });
        roundtrip(Frame::PartData {
            rdv_id: 1,
            offset: 0,
            payload: Vec::new(),
        });
    }

    #[test]
    fn part_data_fast_path_matches_decode() {
        let f = Frame::PartData {
            rdv_id: 9,
            offset: 4096,
            payload: vec![0xCD; 33],
        };
        let enc = f.encode();
        let body = &enc[4..];
        assert!(is_part_data(body_opcode(body).unwrap()));
        let (rdv_id, offset, payload) = decode_part_data(body).unwrap();
        assert_eq!((rdv_id, offset), (9, 4096));
        assert_eq!(payload, &[0xCD; 33][..]);
        // Non-PartData bodies are refused by the fast path.
        let cts = Frame::Cts { rdv_id: 9 }.encode();
        assert!(!is_part_data(body_opcode(&cts[4..]).unwrap()));
        assert!(decode_part_data(&cts[4..]).is_err());
    }

    #[test]
    fn split_header_encoding_matches_the_full_frame() {
        let payload = vec![0x5A; 57];
        let full = Frame::PartData {
            rdv_id: 77,
            offset: 1 << 20,
            payload: payload.clone(),
        }
        .encode();
        let mut split = Vec::new();
        encode_part_data_header(77, 1 << 20, payload.len(), &mut split);
        assert_eq!(split.len(), 4 + PART_DATA_BODY_HDR);
        split.extend_from_slice(&payload);
        assert_eq!(split, full);
        check_version(split[4]).unwrap();
        assert!(check_version(WIRE_VERSION + 1).is_err());
    }

    #[test]
    fn split_rdv_header_encoding_matches_the_full_frame() {
        let payload = vec![0xA7; 143];
        let full = Frame::RdvData {
            rdv_id: 91,
            payload: payload.clone(),
        }
        .encode();
        let mut split = Vec::new();
        encode_rdv_data_header(91, payload.len(), &mut split);
        assert_eq!(split.len(), 4 + RDV_DATA_BODY_HDR);
        split.extend_from_slice(&payload);
        assert_eq!(split, full);
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut enc = Frame::Bye.encode();
        enc[4] = WIRE_VERSION + 1;
        assert!(Frame::decode(&enc[4..]).is_err());
        assert!(body_opcode(&enc[4..]).is_err());
    }

    #[test]
    fn unknown_opcode_is_rejected() {
        let body = [WIRE_VERSION, 200];
        assert!(Frame::decode(&body).is_err());
    }

    #[test]
    fn truncated_body_is_rejected() {
        let enc = Frame::Cts { rdv_id: 1 }.encode();
        assert!(Frame::decode(&enc[4..enc.len() - 2]).is_err());
        let part = Frame::PartData {
            rdv_id: 1,
            offset: 8,
            payload: Vec::new(),
        }
        .encode();
        // PartData's fixed header is 16 bytes after version+opcode;
        // anything shorter is rejected by both decode paths.
        assert!(Frame::decode(&part[4..part.len() - 2]).is_err());
        assert!(decode_part_data(&part[4..part.len() - 2]).is_err());
    }

    #[test]
    fn implausible_length_is_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut cursor = std::io::Cursor::new(&bytes);
        assert!(Frame::read_from(&mut cursor).is_err());
    }

    #[test]
    fn lying_length_prefix_fails_without_oversized_allocation() {
        // A prefix claiming MAX_FRAME_BODY over a nearly-empty stream
        // must fail with a typed error after at most one alloc step,
        // not allocate a gigabyte up front.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(MAX_FRAME_BODY as u32).to_le_bytes());
        bytes.extend_from_slice(&[WIRE_VERSION, OP_BYE]);
        let mut cursor = std::io::Cursor::new(&bytes);
        let err = Frame::read_from(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn resync_range_count_lies_are_rejected() {
        // Body claims u16::MAX ranges but carries none.
        let mut body = vec![WIRE_VERSION, OP_STREAM_RESYNC];
        body.extend_from_slice(&7u64.to_le_bytes());
        body.extend_from_slice(&0u64.to_le_bytes());
        body.extend_from_slice(&(u16::MAX).to_le_bytes());
        let err = Frame::decode(&body).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
