//! The versioned wire protocol.
//!
//! Every frame on a socket is `u32` little-endian body length followed
//! by the body: one version byte, one opcode byte, then the opcode's
//! fields in little-endian order (variable-length payloads run to the
//! end of the body). The protocol is symmetric — both sides of a
//! connection may send any frame at any time after the opening
//! [`Frame::Hello`].
//!
//! | opcode | frame            | fields                                     |
//! |--------|------------------|--------------------------------------------|
//! | 1      | `Hello`          | rank:u16, seq:u64                          |
//! | 2      | `Eager`          | shard:u16, ctx:u64, tag:i64, payload       |
//! | 3      | `Rts`            | shard:u16, ctx:u64, tag:i64, len:u64, rdv_id:u64 |
//! | 4      | `Cts`            | rdv_id:u64                                 |
//! | 5      | `RdvData`        | rdv_id:u64, payload                        |
//! | 6      | `BarrierArrive`  | gen:u64                                    |
//! | 7      | `BarrierRelease` | gen:u64                                    |
//! | 8      | `Abort`          | kind:u8, a:u64, b:u64, tag:i64, attempts:u64, detail |
//! | 9      | `Bye`            | —                                          |
//! | 10     | `WinAnnounce`    | win_ctx:u64, len:u64                       |
//! | 11     | `Put`            | win_ctx:u64, offset:u64, payload           |
//! | 12     | `GetReq`         | win_ctx:u64, offset:u64, len:u64, token:u64 |
//! | 13     | `GetResp`        | token:u64, payload                         |

use std::io::{self, Read, Write};

/// Protocol version carried in every frame body.
pub const WIRE_VERSION: u8 = 1;

/// Upper bound on a frame body; larger lengths are treated as stream
/// corruption rather than an allocation request.
pub const MAX_FRAME_BODY: usize = 1 << 30;

/// [`Frame::Abort`] kind: a message was dropped on every retry
/// (`a` = src rank, `b` = dst rank, plus `tag` and `attempts`).
pub const ABORT_MESSAGE_LOST: u8 = 1;
/// [`Frame::Abort`] kind: a rank panicked (`a` = rank, `detail` = message).
pub const ABORT_PEER_PANICKED: u8 = 2;
/// [`Frame::Abort`] kind: API misuse attributed to a rank (`a` = rank).
pub const ABORT_MISUSE_RANK: u8 = 3;
/// [`Frame::Abort`] kind: API misuse with no attributable rank.
pub const ABORT_MISUSE: u8 = 4;

const OP_HELLO: u8 = 1;
const OP_EAGER: u8 = 2;
const OP_RTS: u8 = 3;
const OP_CTS: u8 = 4;
const OP_RDV_DATA: u8 = 5;
const OP_BARRIER_ARRIVE: u8 = 6;
const OP_BARRIER_RELEASE: u8 = 7;
const OP_ABORT: u8 = 8;
const OP_BYE: u8 = 9;
const OP_WIN_ANNOUNCE: u8 = 10;
const OP_PUT: u8 = 11;
const OP_GET_REQ: u8 = 12;
const OP_GET_RESP: u8 = 13;

/// One decoded wire frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// First frame on every connection: who is connecting, for which
    /// universe (the per-process multiproc universe sequence number).
    Hello {
        /// Rank of the connecting process.
        rank: u16,
        /// Universe sequence number both sides must agree on.
        seq: u64,
    },
    /// A fully buffered eager message.
    Eager {
        /// Match shard the receiver must deliver into.
        shard: u16,
        /// Communicator context id.
        ctx: u64,
        /// Message tag.
        tag: i64,
        /// The message bytes.
        payload: Vec<u8>,
    },
    /// Rendezvous ready-to-send: the sender has `len` bytes pinned under
    /// `rdv_id` and waits for a [`Frame::Cts`].
    Rts {
        /// Match shard the receiver must deliver into.
        shard: u16,
        /// Communicator context id.
        ctx: u64,
        /// Message tag.
        tag: i64,
        /// Payload length in bytes.
        len: u64,
        /// Sender-chosen rendezvous id, echoed by `Cts`/`RdvData`.
        rdv_id: u64,
    },
    /// Rendezvous clear-to-send: the receiver has a matching posted
    /// buffer for `rdv_id`.
    Cts {
        /// The rendezvous id from the RTS.
        rdv_id: u64,
    },
    /// The rendezvous payload, sent after `Cts`.
    RdvData {
        /// The rendezvous id from the RTS.
        rdv_id: u64,
        /// The message bytes.
        payload: Vec<u8>,
    },
    /// A rank reached barrier generation `gen` (sent to the coordinator).
    BarrierArrive {
        /// Barrier generation number.
        gen: u64,
    },
    /// The coordinator releases barrier generation `gen`.
    BarrierRelease {
        /// Barrier generation number.
        gen: u64,
    },
    /// A peer aborted its universe; carries an encoded `PcommError`
    /// (see the `ABORT_*` kinds — the field meaning depends on `kind`).
    Abort {
        /// One of the `ABORT_*` constants.
        kind: u8,
        /// First numeric field (e.g. source or panicking rank).
        a: u64,
        /// Second numeric field (e.g. destination rank).
        b: u64,
        /// Message tag, where applicable.
        tag: i64,
        /// Delivery attempts, where applicable.
        attempts: u64,
        /// Human-readable detail (panic message, misuse description).
        detail: String,
    },
    /// Clean shutdown: no further frames follow from this peer.
    Bye,
    /// A window target announces an exposed region to its origin.
    WinAnnounce {
        /// Window context id (agreed by SPMD allocation order).
        win_ctx: u64,
        /// Window length in bytes.
        len: u64,
    },
    /// One-sided put into a remote window.
    Put {
        /// Window context id.
        win_ctx: u64,
        /// Byte offset into the window.
        offset: u64,
        /// The bytes to store.
        payload: Vec<u8>,
    },
    /// One-sided get request; the target answers with [`Frame::GetResp`].
    GetReq {
        /// Window context id.
        win_ctx: u64,
        /// Byte offset into the window.
        offset: u64,
        /// Bytes requested.
        len: u64,
        /// Origin-chosen token echoed by the response.
        token: u64,
    },
    /// Reply to a [`Frame::GetReq`].
    GetResp {
        /// The token from the request.
        token: u64,
        /// The window bytes read.
        payload: Vec<u8>,
    },
}

fn corrupt(what: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("net: {}", what.into()))
}

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new(op: u8) -> Enc {
        // Reserve the 4-byte length prefix up front; patched in finish().
        let mut buf = Vec::with_capacity(32);
        buf.extend_from_slice(&[0u8; 4]);
        buf.push(WIRE_VERSION);
        buf.push(op);
        Enc { buf }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    fn finish(mut self) -> Vec<u8> {
        let body = (self.buf.len() - 4) as u32;
        self.buf[..4].copy_from_slice(&body.to_le_bytes());
        self.buf
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.at + n > self.buf.len() {
            return Err(corrupt("truncated frame body"));
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> io::Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> io::Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn rest(&mut self) -> Vec<u8> {
        let s = self.buf[self.at..].to_vec();
        self.at = self.buf.len();
        s
    }
}

impl Frame {
    /// Short name of the frame's opcode (diagnostics).
    pub fn name(&self) -> &'static str {
        match self {
            Frame::Hello { .. } => "Hello",
            Frame::Eager { .. } => "Eager",
            Frame::Rts { .. } => "Rts",
            Frame::Cts { .. } => "Cts",
            Frame::RdvData { .. } => "RdvData",
            Frame::BarrierArrive { .. } => "BarrierArrive",
            Frame::BarrierRelease { .. } => "BarrierRelease",
            Frame::Abort { .. } => "Abort",
            Frame::Bye => "Bye",
            Frame::WinAnnounce { .. } => "WinAnnounce",
            Frame::Put { .. } => "Put",
            Frame::GetReq { .. } => "GetReq",
            Frame::GetResp { .. } => "GetResp",
        }
    }

    /// Encode the frame, including its 4-byte length prefix.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Frame::Hello { rank, seq } => {
                let mut e = Enc::new(OP_HELLO);
                e.u16(*rank);
                e.u64(*seq);
                e.finish()
            }
            Frame::Eager {
                shard,
                ctx,
                tag,
                payload,
            } => {
                let mut e = Enc::new(OP_EAGER);
                e.u16(*shard);
                e.u64(*ctx);
                e.i64(*tag);
                e.bytes(payload);
                e.finish()
            }
            Frame::Rts {
                shard,
                ctx,
                tag,
                len,
                rdv_id,
            } => {
                let mut e = Enc::new(OP_RTS);
                e.u16(*shard);
                e.u64(*ctx);
                e.i64(*tag);
                e.u64(*len);
                e.u64(*rdv_id);
                e.finish()
            }
            Frame::Cts { rdv_id } => {
                let mut e = Enc::new(OP_CTS);
                e.u64(*rdv_id);
                e.finish()
            }
            Frame::RdvData { rdv_id, payload } => {
                let mut e = Enc::new(OP_RDV_DATA);
                e.u64(*rdv_id);
                e.bytes(payload);
                e.finish()
            }
            Frame::BarrierArrive { gen } => {
                let mut e = Enc::new(OP_BARRIER_ARRIVE);
                e.u64(*gen);
                e.finish()
            }
            Frame::BarrierRelease { gen } => {
                let mut e = Enc::new(OP_BARRIER_RELEASE);
                e.u64(*gen);
                e.finish()
            }
            Frame::Abort {
                kind,
                a,
                b,
                tag,
                attempts,
                detail,
            } => {
                let mut e = Enc::new(OP_ABORT);
                e.u8(*kind);
                e.u64(*a);
                e.u64(*b);
                e.i64(*tag);
                e.u64(*attempts);
                e.bytes(detail.as_bytes());
                e.finish()
            }
            Frame::Bye => Enc::new(OP_BYE).finish(),
            Frame::WinAnnounce { win_ctx, len } => {
                let mut e = Enc::new(OP_WIN_ANNOUNCE);
                e.u64(*win_ctx);
                e.u64(*len);
                e.finish()
            }
            Frame::Put {
                win_ctx,
                offset,
                payload,
            } => {
                let mut e = Enc::new(OP_PUT);
                e.u64(*win_ctx);
                e.u64(*offset);
                e.bytes(payload);
                e.finish()
            }
            Frame::GetReq {
                win_ctx,
                offset,
                len,
                token,
            } => {
                let mut e = Enc::new(OP_GET_REQ);
                e.u64(*win_ctx);
                e.u64(*offset);
                e.u64(*len);
                e.u64(*token);
                e.finish()
            }
            Frame::GetResp { token, payload } => {
                let mut e = Enc::new(OP_GET_RESP);
                e.u64(*token);
                e.bytes(payload);
                e.finish()
            }
        }
    }

    /// Decode one frame body (without the length prefix).
    pub fn decode(body: &[u8]) -> io::Result<Frame> {
        let mut d = Dec { buf: body, at: 0 };
        let version = d.u8()?;
        if version != WIRE_VERSION {
            return Err(corrupt(format!(
                "wire version mismatch: got {version}, expected {WIRE_VERSION}"
            )));
        }
        let op = d.u8()?;
        let frame = match op {
            OP_HELLO => Frame::Hello {
                rank: d.u16()?,
                seq: d.u64()?,
            },
            OP_EAGER => Frame::Eager {
                shard: d.u16()?,
                ctx: d.u64()?,
                tag: d.i64()?,
                payload: d.rest(),
            },
            OP_RTS => Frame::Rts {
                shard: d.u16()?,
                ctx: d.u64()?,
                tag: d.i64()?,
                len: d.u64()?,
                rdv_id: d.u64()?,
            },
            OP_CTS => Frame::Cts { rdv_id: d.u64()? },
            OP_RDV_DATA => Frame::RdvData {
                rdv_id: d.u64()?,
                payload: d.rest(),
            },
            OP_BARRIER_ARRIVE => Frame::BarrierArrive { gen: d.u64()? },
            OP_BARRIER_RELEASE => Frame::BarrierRelease { gen: d.u64()? },
            OP_ABORT => Frame::Abort {
                kind: d.u8()?,
                a: d.u64()?,
                b: d.u64()?,
                tag: d.i64()?,
                attempts: d.u64()?,
                detail: String::from_utf8_lossy(&d.rest()).into_owned(),
            },
            OP_BYE => Frame::Bye,
            OP_WIN_ANNOUNCE => Frame::WinAnnounce {
                win_ctx: d.u64()?,
                len: d.u64()?,
            },
            OP_PUT => Frame::Put {
                win_ctx: d.u64()?,
                offset: d.u64()?,
                payload: d.rest(),
            },
            OP_GET_REQ => Frame::GetReq {
                win_ctx: d.u64()?,
                offset: d.u64()?,
                len: d.u64()?,
                token: d.u64()?,
            },
            OP_GET_RESP => Frame::GetResp {
                token: d.u64()?,
                payload: d.rest(),
            },
            other => return Err(corrupt(format!("unknown opcode {other}"))),
        };
        Ok(frame)
    }

    /// Write the frame to a stream (length prefix + body).
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(&self.encode())
    }

    /// Read one frame from a stream. `Err(UnexpectedEof)` with an empty
    /// prefix means the peer closed the connection cleanly at a frame
    /// boundary.
    pub fn read_from(r: &mut impl Read) -> io::Result<Frame> {
        let mut prefix = [0u8; 4];
        r.read_exact(&mut prefix)?;
        let len = u32::from_le_bytes(prefix) as usize;
        if !(2..=MAX_FRAME_BODY).contains(&len) {
            return Err(corrupt(format!("implausible frame length {len}")));
        }
        let mut body = vec![0u8; len];
        r.read_exact(&mut body)?;
        Frame::decode(&body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(f: Frame) {
        let enc = f.encode();
        let body_len = u32::from_le_bytes(enc[..4].try_into().unwrap()) as usize;
        assert_eq!(body_len, enc.len() - 4, "length prefix covers the body");
        let dec = Frame::decode(&enc[4..]).unwrap();
        assert_eq!(dec, f);
        // And through the stream API.
        let mut cursor = std::io::Cursor::new(&enc);
        assert_eq!(Frame::read_from(&mut cursor).unwrap(), f);
    }

    #[test]
    fn all_frames_roundtrip() {
        roundtrip(Frame::Hello { rank: 3, seq: 7 });
        roundtrip(Frame::Eager {
            shard: 2,
            ctx: 99,
            tag: -11,
            payload: vec![1, 2, 3],
        });
        roundtrip(Frame::Rts {
            shard: 0,
            ctx: 1,
            tag: 5,
            len: 1 << 20,
            rdv_id: 42,
        });
        roundtrip(Frame::Cts { rdv_id: 42 });
        roundtrip(Frame::RdvData {
            rdv_id: 42,
            payload: vec![9; 128],
        });
        roundtrip(Frame::BarrierArrive { gen: 8 });
        roundtrip(Frame::BarrierRelease { gen: 8 });
        roundtrip(Frame::Abort {
            kind: ABORT_MESSAGE_LOST,
            a: 0,
            b: 1,
            tag: 5,
            attempts: 3,
            detail: String::new(),
        });
        roundtrip(Frame::Abort {
            kind: ABORT_PEER_PANICKED,
            a: 1,
            b: 0,
            tag: 0,
            attempts: 0,
            detail: "index out of bounds".into(),
        });
        roundtrip(Frame::Bye);
        roundtrip(Frame::WinAnnounce {
            win_ctx: 1 << 18,
            len: 4096,
        });
        roundtrip(Frame::Put {
            win_ctx: 1 << 18,
            offset: 64,
            payload: vec![7; 64],
        });
        roundtrip(Frame::GetReq {
            win_ctx: 1 << 18,
            offset: 0,
            len: 64,
            token: 5,
        });
        roundtrip(Frame::GetResp {
            token: 5,
            payload: vec![1; 64],
        });
    }

    #[test]
    fn empty_payload_roundtrips() {
        roundtrip(Frame::Eager {
            shard: 0,
            ctx: 0,
            tag: -1,
            payload: Vec::new(),
        });
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut enc = Frame::Bye.encode();
        enc[4] = WIRE_VERSION + 1;
        assert!(Frame::decode(&enc[4..]).is_err());
    }

    #[test]
    fn unknown_opcode_is_rejected() {
        let body = [WIRE_VERSION, 200];
        assert!(Frame::decode(&body).is_err());
    }

    #[test]
    fn truncated_body_is_rejected() {
        let enc = Frame::Cts { rdv_id: 1 }.encode();
        assert!(Frame::decode(&enc[4..enc.len() - 2]).is_err());
    }

    #[test]
    fn implausible_length_is_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut cursor = std::io::Cursor::new(&bytes);
        assert!(Frame::read_from(&mut cursor).is_err());
    }
}
