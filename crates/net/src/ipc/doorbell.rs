//! Futex doorbells: the only blocking primitive in the ipc fabric.
//!
//! A doorbell is a pair of process-shared words — a monotonic *bell*
//! counter and a *sleepers* count. The waiter side drains its work,
//! snapshots the bell ([`Doorbell::seq`]), drains again, and only then
//! parks in [`Doorbell::wait`]; the notifier bumps the bell and issues
//! a `FUTEX_WAKE` **only when someone is actually asleep** — which is
//! what makes the steady state zero-syscall: a spinning (yielding)
//! receiver never costs the sender a kernel entry.
//!
//! The snapshot/recheck protocol closes the classic lost-wakeup race
//! the same way glibc condvars do: if the bell moved between the
//! snapshot and the park, `FUTEX_WAIT` bounces with `EAGAIN`; if the
//! sleeper registered before the ring, the notifier sees
//! `sleepers > 0` and wakes. Waits are additionally bounded by the
//! caller's slice (≤ a few ms), so even a theoretically lost wake only
//! costs one slice, never liveness.

use crate::sys;
use std::io;
use std::sync::atomic::{AtomicU32, Ordering};

/// A bell/sleepers word pair somewhere in the shared segment.
pub struct Doorbell<'a> {
    bell: &'a AtomicU32,
    sleepers: &'a AtomicU32,
}

impl<'a> Doorbell<'a> {
    /// Wrap a bell/sleepers pair (segment layout picks the words).
    pub fn new(bell: &'a AtomicU32, sleepers: &'a AtomicU32) -> Self {
        Doorbell { bell, sleepers }
    }

    /// Snapshot the bell. Drain once more after taking this and pass it
    /// to [`Doorbell::wait`] — any ring after the snapshot makes the
    /// wait return immediately.
    pub fn seq(&self) -> u32 {
        self.bell.load(Ordering::Acquire)
    }

    /// Ring the bell: make pending work visible, then wake sleepers —
    /// skipping the `futex_wake` syscall entirely when nobody is
    /// parked (the common, spinning-receiver case).
    pub fn ring(&self) -> io::Result<()> {
        self.bell.fetch_add(1, Ordering::AcqRel);
        if self.sleepers.load(Ordering::Acquire) > 0 {
            sys::futex_wake(self.bell, u32::MAX)?;
        }
        Ok(())
    }

    /// Park until the bell moves past `seen` or `timeout_ns` elapses.
    /// Returns `Ok(true)` if (probably) rung, `Ok(false)` on timeout;
    /// callers re-drain in a loop either way.
    pub fn wait(&self, seen: u32, timeout_ns: u64) -> io::Result<bool> {
        self.sleepers.fetch_add(1, Ordering::AcqRel);
        let woken = sys::futex_wait(self.bell, seen, timeout_ns);
        self.sleepers.fetch_sub(1, Ordering::AcqRel);
        woken
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_wakes_waiter_across_threads() {
        if !sys::supported() {
            return;
        }
        let bell = AtomicU32::new(0);
        let sleepers = AtomicU32::new(0);
        std::thread::scope(|s| {
            let waiter = s.spawn(|| {
                let db = Doorbell::new(&bell, &sleepers);
                let seen = db.seq();
                db.wait(seen, 2_000_000_000).unwrap()
            });
            let db = Doorbell::new(&bell, &sleepers);
            while sleepers.load(Ordering::Acquire) == 0 {
                std::thread::yield_now();
            }
            db.ring().unwrap();
            assert!(waiter.join().unwrap());
        });
    }

    #[test]
    fn stale_snapshot_returns_immediately() {
        if !sys::supported() {
            return;
        }
        let bell = AtomicU32::new(0);
        let sleepers = AtomicU32::new(0);
        let db = Doorbell::new(&bell, &sleepers);
        let seen = db.seq();
        db.ring().unwrap();
        // Bell moved after the snapshot: wait must not block.
        assert!(db.wait(seen, 5_000_000_000).unwrap());
    }
}
