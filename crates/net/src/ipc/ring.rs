//! The lock-free SPSC descriptor ring of one directed channel.
//!
//! Each directed rank pair owns a fixed array of 1 KiB slots: a
//! 32-byte descriptor header plus up to [`INLINE_MAX`] bytes of
//! bcopy-style inline payload. Larger payloads live in the channel's
//! FIFO slab ([`super::slab`]) and the slot carries their cursor;
//! zero-copy partition commits carry only an arena offset — the bytes
//! are already in receiver-visible memory by the time the descriptor
//! is published.
//!
//! Protocol: the producer fully writes a slot, then publishes it with a
//! Release store of the *head* cursor; the consumer Acquire-loads the
//! head, processes `tail..head` strictly in order, then Release-stores
//! the *tail*, which both recycles the slots and releases any FIFO
//! bytes they referenced. Cursors are monotonic `u32`s compared with
//! `wrapping_sub`, so full (`head - tail == slots`) and empty
//! (`head == tail`) never alias. Exactly one process produces and one
//! consumes per channel; each side serialises its own threads
//! externally (the transport holds a mutex per direction).

use super::doorbell::Doorbell;
use super::slab;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Stride of one ring slot (descriptor header + inline payload).
pub const SLOT_BYTES: usize = 1024;
/// Descriptor header bytes at the start of each slot.
pub const SLOT_HDR_BYTES: usize = 32;
/// Largest payload that ships inline in a slot.
pub const INLINE_MAX: usize = SLOT_BYTES - SLOT_HDR_BYTES;
/// Bytes reserved for the ring's shared cursor header.
pub const RING_HDR_BYTES: usize = 128;

/// Slot kind: a complete wire frame, encoded bytes inline.
pub const K_FRAME: u16 = 1;
/// Slot kind: a complete wire frame, encoded bytes in the FIFO slab at
/// cursor `c`.
pub const K_SLAB: u16 = 2;
/// Slot kind: zero-copy partition commit — `a` = rdv id, `b` = offset
/// of the committed range inside the *receiver's* destination, `len`
/// bytes already written to the advertised arena range. No payload.
pub const K_PART: u16 = 3;
/// Slot kind: partition data without an arena grant — `a` = rdv id,
/// `b` = destination offset, bytes in the FIFO slab at cursor `c`.
pub const K_PARTF: u16 = 4;
/// Slot kind: partition clear-to-send — `a` = rdv id, `b` = arena
/// offset granted to the sender (`u64::MAX` = no grant, use
/// [`K_PARTF`]). No payload.
pub const K_PART_CTS: u16 = 5;
/// Slot kind: one chunk of a rendezvous payload — `a` = rdv id, `b` =
/// byte offset of the chunk inside the message, `parts` = 1 on the
/// final chunk. Bytes in the FIFO slab at cursor `c`.
pub const K_RDV: u16 = 6;

/// The descriptor fields of one slot (everything but the payload).
/// Field meaning is kind-specific; see the `K_*` docs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlotDesc {
    /// Slot kind (`K_*`).
    pub kind: u16,
    /// Partition count hint for `K_PART`/`K_PARTF` commits.
    pub parts: u16,
    /// First kind-specific word (typically an rdv/stream id).
    pub a: u64,
    /// Second kind-specific word (typically a byte offset).
    pub b: u64,
    /// Third kind-specific word: the FIFO cursor for slab kinds (set
    /// by the push itself — callers leave it 0); free for inline and
    /// payload-less kinds (`K_PART` carries the range length here).
    pub c: u64,
}

/// Push failure: no ring slot or no FIFO span free. Pure backpressure —
/// retry after the consumer advances (see `Channel::space_doorbell`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Full;

/// One directed channel's shared-memory view: cursor header, slot
/// array, FIFO slab and partition arena. Cheap to copy; all methods
/// take `&self` and rely on the SPSC protocol for exclusivity.
#[derive(Clone, Copy)]
pub struct Channel {
    base: *mut u8,
    slots: u32,
    fifo_bytes: u64,
    arena_bytes: u64,
}

// SAFETY: `Channel` is a typed window onto MAP_SHARED segment memory;
// every shared location it touches is either an atomic cursor or a
// payload range ordered by the Release/Acquire cursor protocol
// documented in the module header.
unsafe impl Send for Channel {}
// SAFETY: see `Send`.
unsafe impl Sync for Channel {}

impl Channel {
    /// Wrap the channel region at `base` (see `Segment::channel` for
    /// the layout math that sizes it).
    ///
    /// # Safety
    /// `base` must point at a channel region of at least
    /// `RING_HDR_BYTES + slots * SLOT_BYTES + fifo_bytes + arena_bytes`
    /// bytes inside a live shared mapping that outlives the `Channel`.
    pub unsafe fn new(base: *mut u8, slots: u32, fifo_bytes: u64, arena_bytes: u64) -> Channel {
        debug_assert!(slots.is_power_of_two() || slots > 0);
        Channel {
            base,
            slots,
            fifo_bytes,
            arena_bytes,
        }
    }

    fn word32(&self, off: usize) -> &AtomicU32 {
        debug_assert!(off + 4 <= RING_HDR_BYTES);
        // SAFETY: fixed 4-aligned offset inside the ring header; the
        // mapping outlives `self` per the `new` contract.
        unsafe { &*(self.base.add(off) as *const AtomicU32) }
    }

    fn word64(&self, off: usize) -> &AtomicU64 {
        debug_assert!(off + 8 <= RING_HDR_BYTES);
        // SAFETY: as `word32`, 8-aligned fixed offset.
        unsafe { &*(self.base.add(off) as *const AtomicU64) }
    }

    // Producer-owned words on one cache line; consumer-owned on another.
    fn head(&self) -> &AtomicU32 {
        self.word32(0)
    }
    fn fifo_head(&self) -> &AtomicU64 {
        self.word64(8)
    }
    fn tail(&self) -> &AtomicU32 {
        self.word32(64)
    }
    fn fifo_tail(&self) -> &AtomicU64 {
        self.word64(72)
    }

    /// The producer's backpressure doorbell: the consumer rings it as
    /// it frees slots/FIFO bytes; a blocked producer parks on it.
    pub fn space_doorbell(&self) -> Doorbell<'_> {
        Doorbell::new(self.word32(80), self.word32(20))
    }

    fn slot_ptr(&self, idx: u32) -> *mut u8 {
        debug_assert!(idx < self.slots);
        // SAFETY: `idx < slots` keeps this inside the slot array sized
        // by the `new` contract.
        unsafe { self.base.add(RING_HDR_BYTES + idx as usize * SLOT_BYTES) }
    }

    fn fifo_ptr(&self, pos: u64) -> *mut u8 {
        debug_assert!(pos < self.fifo_bytes);
        // SAFETY: `pos < fifo_bytes` keeps this inside the FIFO region
        // that follows the slot array.
        unsafe {
            self.base
                .add(RING_HDR_BYTES + self.slots as usize * SLOT_BYTES + pos as usize)
        }
    }

    /// Arena capacity of this channel.
    pub fn arena_bytes(&self) -> u64 {
        self.arena_bytes
    }

    /// Pointer to arena offset `off` (receiver-granted ranges only).
    ///
    /// # Safety
    /// `off..off + len` of the intended access must lie inside
    /// `0..arena_bytes` and be a range the caller currently owns under
    /// the CTS grant protocol (sender between grant and commit,
    /// receiver otherwise).
    pub unsafe fn arena_ptr(&self, off: u64) -> *mut u8 {
        debug_assert!(off < self.arena_bytes);
        // SAFETY: bound forwarded from the caller's contract.
        unsafe {
            self.base.add(
                RING_HDR_BYTES
                    + self.slots as usize * SLOT_BYTES
                    + self.fifo_bytes as usize
                    + off as usize,
            )
        }
    }

    /// Producer: publish a descriptor with an inline payload
    /// (`payload.len() <= INLINE_MAX`; use [`Self::try_push_slab`]
    /// above that). `desc.c` passes through untouched (payload-less
    /// kinds like `K_PART` carry a length there).
    pub fn try_push(&self, desc: SlotDesc, payload: &[u8]) -> Result<(), Full> {
        assert!(
            payload.len() <= INLINE_MAX,
            "ipc: inline payload over {INLINE_MAX}"
        );
        // ORDERING: head is producer-owned; only this side writes it.
        let head = self.head().load(Ordering::Relaxed);
        let tail = self.tail().load(Ordering::Acquire);
        if head.wrapping_sub(tail) >= self.slots {
            return Err(Full);
        }
        let slot = self.slot_ptr(head % self.slots);
        // SAFETY: the full/empty check above proves the consumer is
        // done with this slot; the write completes before the Release
        // store of head publishes it.
        unsafe {
            write_hdr(
                slot,
                payload.len() as u32,
                desc.kind,
                desc.parts,
                desc.a,
                desc.b,
                desc.c,
            );
            std::ptr::copy_nonoverlapping(
                payload.as_ptr(),
                slot.add(SLOT_HDR_BYTES),
                payload.len(),
            );
        }
        self.head().store(head.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Producer: publish a descriptor whose payload (the concatenation
    /// of `chunks`) goes through the FIFO slab; the slot's `c` is set
    /// to the record's cursor. The record must fit the slab
    /// (`total <= fifo_bytes`) — callers bound their chunk size.
    pub fn try_push_slab(&self, desc: SlotDesc, chunks: &[&[u8]]) -> Result<(), Full> {
        let total: usize = chunks.iter().map(|c| c.len()).sum();
        assert!(
            total > 0 && total as u64 <= self.fifo_bytes,
            "ipc: slab record over fifo capacity"
        );
        // ORDERING: head/fifo_head are producer-owned; only this side
        // writes them.
        let head = self.head().load(Ordering::Relaxed);
        let tail = self.tail().load(Ordering::Acquire);
        if head.wrapping_sub(tail) >= self.slots {
            return Err(Full);
        }
        // ORDERING: fifo_head is producer-owned (see above).
        let fh = self.fifo_head().load(Ordering::Relaxed);
        let ft = self.fifo_tail().load(Ordering::Acquire);
        let Some(span) = slab::fifo_reserve(fh, ft, self.fifo_bytes, total as u64) else {
            return Err(Full);
        };
        let mut at = span.start % self.fifo_bytes;
        for chunk in chunks {
            // SAFETY: `fifo_reserve` guarantees `start..start+total` is
            // contiguous in the ring and unreferenced by the consumer
            // (it is ahead of every published record's release point).
            unsafe {
                std::ptr::copy_nonoverlapping(chunk.as_ptr(), self.fifo_ptr(at), chunk.len());
            }
            at += chunk.len() as u64;
        }
        // ORDERING: fifo_head is only read back by this producer; the
        // consumer learns record positions from slot descriptors.
        self.fifo_head().store(span.head, Ordering::Relaxed);
        let slot = self.slot_ptr(head % self.slots);
        // SAFETY: same slot-exclusivity argument as `try_push`.
        unsafe {
            write_hdr(
                slot,
                total as u32,
                desc.kind,
                desc.parts,
                desc.a,
                desc.b,
                span.start,
            );
        }
        self.head().store(head.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Consumer: pop one descriptor if available, handing `f` the
    /// descriptor and its payload (inline slice, slab slice, or empty
    /// for payload-less kinds). Slot and FIFO bytes are recycled after
    /// `f` returns, and the producer's space doorbell is rung.
    pub fn try_pop(&self, f: impl FnOnce(&SlotDesc, &[u8])) -> std::io::Result<bool> {
        // ORDERING: tail is consumer-owned; only this side writes it.
        let tail = self.tail().load(Ordering::Relaxed);
        let head = self.head().load(Ordering::Acquire);
        if tail == head {
            return Ok(false);
        }
        let slot = self.slot_ptr(tail % self.slots);
        // SAFETY: the Acquire load of head synchronises with the
        // producer's Release publish, so the slot bytes (and any FIFO
        // bytes it references) are fully written and stable until we
        // advance tail.
        let (len, desc) = unsafe { read_hdr(slot) };
        let payload: &[u8] = match desc.kind {
            K_FRAME => {
                // SAFETY: inline payload written before publish (see
                // above); `len <= INLINE_MAX` enforced at push.
                unsafe { std::slice::from_raw_parts(slot.add(SLOT_HDR_BYTES), len as usize) }
            }
            K_SLAB | K_PARTF | K_RDV => {
                // SAFETY: slab record at cursor `c`, contiguous by
                // construction, released only when we advance fifo_tail
                // below.
                unsafe {
                    std::slice::from_raw_parts(
                        self.fifo_ptr(desc.c % self.fifo_bytes),
                        len as usize,
                    )
                }
            }
            _ => &[],
        };
        f(&desc, payload);
        if matches!(desc.kind, K_SLAB | K_PARTF | K_RDV) {
            self.fifo_tail()
                .store(desc.c + len as u64, Ordering::Release);
        }
        self.tail().store(tail.wrapping_add(1), Ordering::Release);
        self.space_doorbell().ring()?;
        Ok(true)
    }

    /// Consumer: whether anything is waiting (no side effects).
    pub fn has_pending(&self) -> bool {
        // ORDERING: advisory peek; the authoritative check is the
        // Acquire load inside `try_pop`.
        self.tail().load(Ordering::Relaxed) != self.head().load(Ordering::Acquire)
    }
}

/// Write a slot descriptor header.
///
/// # Safety
/// `slot` must point at a full [`SLOT_BYTES`] slot the caller owns
/// under the SPSC protocol.
unsafe fn write_hdr(slot: *mut u8, len: u32, kind: u16, parts: u16, a: u64, b: u64, c: u64) {
    // SAFETY: fixed offsets within the owned slot; plain stores are
    // race-free because publication happens via the head cursor.
    unsafe {
        (slot as *mut u32).write(len);
        (slot.add(4) as *mut u16).write(kind);
        (slot.add(6) as *mut u16).write(parts);
        (slot.add(8) as *mut u64).write(a);
        (slot.add(16) as *mut u64).write(b);
        (slot.add(24) as *mut u64).write(c);
    }
}

/// Read a slot descriptor header.
///
/// # Safety
/// `slot` must point at a published slot (between the consumer's
/// Acquire of head and its Release of tail).
unsafe fn read_hdr(slot: *const u8) -> (u32, SlotDesc) {
    // SAFETY: mirrors `write_hdr`; the cursor protocol orders these
    // plain loads after the producer's stores.
    unsafe {
        (
            (slot as *const u32).read(),
            SlotDesc {
                kind: (slot.add(4) as *const u16).read(),
                parts: (slot.add(6) as *const u16).read(),
                a: (slot.add(8) as *const u64).read(),
                b: (slot.add(16) as *const u64).read(),
                c: (slot.add(24) as *const u64).read(),
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipc::{IpcParams, Segment};
    use crate::sys;

    fn chan() -> (Segment, Channel) {
        let params = IpcParams {
            n_ranks: 2,
            ring_slots: 4,
            fifo_bytes: 256,
            arena_bytes: 4096,
        };
        let (seg, fd) = Segment::create(params).unwrap();
        sys::close(fd).unwrap();
        let ch = seg.channel(0, 1);
        (seg, ch)
    }

    #[test]
    fn inline_roundtrip_and_ring_full() {
        if !sys::supported() {
            return;
        }
        let (_seg, ch) = chan();
        for i in 0..4u64 {
            ch.try_push(
                SlotDesc {
                    kind: K_FRAME,
                    parts: 0,
                    a: i,
                    b: i * 2,
                    c: 0,
                },
                &[i as u8; 5],
            )
            .unwrap();
        }
        assert_eq!(
            ch.try_push(
                SlotDesc {
                    kind: K_FRAME,
                    parts: 0,
                    a: 9,
                    b: 0,
                    c: 0
                },
                &[]
            ),
            Err(Full)
        );
        for i in 0..4u64 {
            let popped = ch
                .try_pop(|d, pay| {
                    assert_eq!((d.kind, d.a, d.b), (K_FRAME, i, i * 2));
                    assert_eq!(pay, &[i as u8; 5]);
                })
                .unwrap();
            assert!(popped);
        }
        assert!(!ch.try_pop(|_, _| unreachable!()).unwrap());
    }

    #[test]
    fn slab_records_wrap_and_backpressure() {
        if !sys::supported() {
            return;
        }
        let (_seg, ch) = chan();
        // 100-byte records against a 256-byte FIFO: the third must hit
        // backpressure, and wrap padding must stay invisible.
        let rec = |v: u8| vec![v; 100];
        ch.try_push_slab(
            SlotDesc {
                kind: K_SLAB,
                parts: 0,
                a: 1,
                b: 0,
                c: 0,
            },
            &[&rec(1)],
        )
        .unwrap();
        ch.try_push_slab(
            SlotDesc {
                kind: K_SLAB,
                parts: 0,
                a: 2,
                b: 0,
                c: 0,
            },
            &[&rec(2)],
        )
        .unwrap();
        assert_eq!(
            ch.try_push_slab(
                SlotDesc {
                    kind: K_SLAB,
                    parts: 0,
                    a: 3,
                    b: 0,
                    c: 0
                },
                &[&rec(3)]
            ),
            Err(Full)
        );
        let mut seen = Vec::new();
        while ch.try_pop(|d, pay| seen.push((d.a, pay.to_vec()))).unwrap() {}
        assert_eq!(seen.len(), 2);
        // Freed: the wrap-padded third record now fits, split chunks
        // concatenate, and survives many cycles of reuse.
        for round in 0..20u64 {
            let (a, b) = (rec(7), rec(8));
            ch.try_push_slab(
                SlotDesc {
                    kind: K_SLAB,
                    parts: 0,
                    a: round,
                    b: 0,
                    c: 0,
                },
                &[&a[..40], &a[40..], &b[..]],
            )
            .unwrap();
            let mut got = Vec::new();
            while ch.try_pop(|d, pay| got.push((d.a, pay.to_vec()))).unwrap() {}
            assert_eq!(got.len(), 1);
            assert_eq!(got[0].0, round);
            assert_eq!(&got[0].1[..100], &rec(7)[..]);
            assert_eq!(&got[0].1[100..], &rec(8)[..]);
        }
    }

    #[test]
    fn cross_thread_spsc_stream() {
        if !sys::supported() {
            return;
        }
        let (_seg, ch) = chan();
        const N: u64 = 5000;
        std::thread::scope(|s| {
            let producer = s.spawn(move || {
                for i in 0..N {
                    let body = [i as u8; 32];
                    loop {
                        let r = if i % 3 == 0 {
                            ch.try_push_slab(
                                SlotDesc {
                                    kind: K_SLAB,
                                    parts: 0,
                                    a: i,
                                    b: 0,
                                    c: 0,
                                },
                                &[&body],
                            )
                        } else {
                            ch.try_push(
                                SlotDesc {
                                    kind: K_FRAME,
                                    parts: 0,
                                    a: i,
                                    b: 0,
                                    c: 0,
                                },
                                &body,
                            )
                        };
                        if r.is_ok() {
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
            });
            let mut next = 0u64;
            while next < N {
                let got = ch
                    .try_pop(|d, pay| {
                        assert_eq!(d.a, next);
                        assert_eq!(pay, &[next as u8; 32]);
                    })
                    .unwrap();
                if got {
                    next += 1;
                } else {
                    std::thread::yield_now();
                }
            }
            producer.join().unwrap();
        });
    }
}
