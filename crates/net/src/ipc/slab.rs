//! Payload-slab bookkeeping for the ipc fabric.
//!
//! Two kinds of payload storage hang off each directed channel:
//!
//! * the **FIFO slab** — a byte ring the producer writes variable-size
//!   records into (frames too large for an inline ring slot). Records
//!   are referenced by descriptor slots and consumed — and therefore
//!   released — in ring order, so two monotonic byte cursors fully
//!   describe it. The cursor math lives here ([`fifo_reserve`]);
//! * the **partition arena** — ranges the *receiver* carves out as
//!   zero-copy destinations for partitioned streams and advertises to
//!   the sender by offset. Lifetimes are receiver-controlled (freed
//!   when the `Precv` resets or drops), so the allocator state is
//!   plain process-local memory ([`ArenaAlloc`]); only the bytes are
//!   shared.

/// Outcome of a FIFO reservation: where the record starts (absolute
/// cursor, already past any end-of-ring padding) — the producer copies
/// its bytes at `start % capacity` and publishes `start` in the slot
/// descriptor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FifoSpan {
    /// Absolute start cursor of the record.
    pub start: u64,
    /// New head cursor after the record (`start + len`).
    pub head: u64,
}

/// Reserve `len` contiguous bytes in a FIFO of `capacity` bytes whose
/// producer cursor is `head` and consumer cursor is `tail`. Records
/// never wrap: if the tail of the ring can't hold `len`, the remainder
/// is skipped as padding (the consumer infers it from the published
/// start cursor). Returns `None` when the span wouldn't fit yet —
/// back-pressure, try again after the consumer advances.
pub fn fifo_reserve(head: u64, tail: u64, capacity: u64, len: u64) -> Option<FifoSpan> {
    debug_assert!(len > 0 && len <= capacity);
    let pos = head % capacity;
    let start = if pos + len > capacity {
        head + (capacity - pos)
    } else {
        head
    };
    if start + len - tail > capacity {
        None
    } else {
        Some(FifoSpan {
            start,
            head: start + len,
        })
    }
}

/// First-fit allocator over one channel's partition arena. Entirely
/// process-local to the receiving rank — see the module docs.
pub struct ArenaAlloc {
    /// Free extents `(offset, len)`, sorted by offset, coalesced.
    free: Vec<(u64, u64)>,
    capacity: u64,
}

/// Allocation granularity: keeps concurrently-streamed destinations on
/// distinct cache lines.
const ARENA_ALIGN: u64 = 64;

impl ArenaAlloc {
    /// A fresh allocator over `capacity` bytes (offsets `0..capacity`).
    pub fn new(capacity: u64) -> Self {
        let free = if capacity > 0 {
            vec![(0, capacity)]
        } else {
            Vec::new()
        };
        ArenaAlloc { free, capacity }
    }

    /// Carve out `len` bytes; `None` when no extent fits (the caller
    /// falls back to the FIFO copy path — never an error).
    pub fn alloc(&mut self, len: u64) -> Option<u64> {
        if len == 0 || len > self.capacity {
            return None;
        }
        let need = (len + ARENA_ALIGN - 1) & !(ARENA_ALIGN - 1);
        let i = self.free.iter().position(|&(_, flen)| flen >= need)?;
        let (off, flen) = self.free[i];
        if flen == need {
            self.free.remove(i);
        } else {
            self.free[i] = (off + need, flen - need);
        }
        Some(off)
    }

    /// Return the range handed out for (`off`, `len`) by [`Self::alloc`],
    /// coalescing with neighbours.
    pub fn release(&mut self, off: u64, len: u64) {
        let need = (len + ARENA_ALIGN - 1) & !(ARENA_ALIGN - 1);
        debug_assert!(off + need <= self.capacity);
        let i = self.free.partition_point(|&(foff, _)| foff < off);
        self.free.insert(i, (off, need));
        // Coalesce with the next extent, then the previous one.
        if i + 1 < self.free.len() && self.free[i].0 + self.free[i].1 == self.free[i + 1].0 {
            self.free[i].1 += self.free[i + 1].1;
            self.free.remove(i + 1);
        }
        if i > 0 && self.free[i - 1].0 + self.free[i - 1].1 == self.free[i].0 {
            self.free[i - 1].1 += self.free[i].1;
            self.free.remove(i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_reserve_pads_at_wrap_and_backpressures() {
        // Plenty of room, no wrap.
        assert_eq!(
            fifo_reserve(0, 0, 64, 16),
            Some(FifoSpan { start: 0, head: 16 })
        );
        // Record would straddle the end: skip to the wrap boundary.
        let s = fifo_reserve(56, 40, 64, 16).unwrap();
        assert_eq!(s.start, 64);
        assert_eq!(s.start % 64, 0);
        // Same wrap but the consumer is too far behind: backpressure.
        assert_eq!(fifo_reserve(56, 10, 64, 16), None);
        // Exactly full is allowed.
        assert_eq!(fifo_reserve(64, 0, 64, 64), None);
        assert_eq!(fifo_reserve(64, 64, 64, 64).map(|s| s.start), Some(64));
    }

    #[test]
    fn arena_alloc_release_coalesces() {
        let mut a = ArenaAlloc::new(1024);
        let x = a.alloc(100).unwrap();
        let y = a.alloc(100).unwrap();
        let z = a.alloc(100).unwrap();
        assert_eq!((x, y, z), (0, 128, 256));
        // Exhaustion falls back to None, never panics.
        assert!(a.alloc(2048).is_none());
        a.release(y, 100);
        a.release(x, 100);
        a.release(z, 100);
        // Fully coalesced: a max-size alloc fits again.
        assert_eq!(a.alloc(1024), Some(0));
    }
}
