//! `pcomm-ipc` — the same-host process-shared memory fabric.
//!
//! All ranks of one universe map a single anonymous memory file
//! (`memfd_create` + `mmap(MAP_SHARED)`, see [`crate::sys`]) laid out
//! as:
//!
//! ```text
//! [ header page | rank blocks | channel 0·0 | channel 0·1 | ... ]
//! ```
//!
//! * **header page** — magic/version plus the geometry knobs, so every
//!   rank can validate it mapped the same segment with the same
//!   parameters before touching a byte of it;
//! * **rank blocks** — one 128-byte block per rank holding its
//!   heartbeat word, attach flag and inbound doorbell
//!   (see [`doorbell`]);
//! * **channels** — one region per *directed* rank pair `src → dst`
//!   holding a lock-free SPSC descriptor ring, a FIFO payload slab for
//!   frames too large to inline, and a partition arena that receivers
//!   carve destination buffers out of (see [`ring`] and [`slab`]).
//!
//! Every cross-process reference inside the segment is an **offset** —
//! each rank maps the segment at a different address, so pointers never
//! cross the boundary. All queue positions are monotonic counters
//! (`wrapping_sub` distances), which keeps full/empty disambiguation
//! trivial and makes the state legible to a post-mortem debugger.
//!
//! The segment file descriptor travels from rank 0 to every peer as an
//! `SCM_RIGHTS` control message over the already-established lane-0
//! UDS bootstrap stream ([`send_segment_fd`] / [`recv_segment_fd`]),
//! after which the sockets are dropped — steady state does zero
//! syscalls per message (doorbell futexes fire only when a peer is
//! actually asleep).

pub mod doorbell;
pub mod ring;
pub mod slab;

use crate::sys;
use std::io;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Segment magic: `b"pcommipc"` as a little-endian u64.
pub const SEG_MAGIC: u64 = u64::from_le_bytes(*b"pcommipc");
/// Segment layout version; bumped on any incompatible layout change.
pub const SEG_VERSION: u32 = 1;

/// Size of the validation/geometry header at offset 0.
const HEADER_BYTES: usize = 4096;
/// Stride of one per-rank block (heartbeat + doorbell words).
const RANK_BLOCK_BYTES: usize = 128;

/// Geometry of one segment: everything a rank needs to recompute every
/// offset locally. All ranks must agree on these (the header page
/// carries them for validation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IpcParams {
    /// Number of ranks sharing the segment.
    pub n_ranks: usize,
    /// Descriptor-ring capacity per directed channel, in slots.
    pub ring_slots: u32,
    /// FIFO payload-slab capacity per directed channel, in bytes.
    pub fifo_bytes: u64,
    /// Partition-arena capacity per directed channel, in bytes.
    pub arena_bytes: u64,
}

impl IpcParams {
    /// Byte span of one directed channel, 4 KiB-aligned so channels
    /// start on page boundaries (the segment is sparse; untouched
    /// pages — e.g. the wasted diagonal channels — cost nothing).
    fn channel_stride(&self) -> usize {
        let raw = ring::RING_HDR_BYTES
            + self.ring_slots as usize * ring::SLOT_BYTES
            + self.fifo_bytes as usize
            + self.arena_bytes as usize;
        (raw + 4095) & !4095
    }

    /// Offset of the first channel region.
    fn channels_base(&self) -> usize {
        let raw = HEADER_BYTES + self.n_ranks * RANK_BLOCK_BYTES;
        (raw + 4095) & !4095
    }

    /// Total segment length for this geometry.
    pub fn segment_len(&self) -> usize {
        self.channels_base() + self.n_ranks * self.n_ranks * self.channel_stride()
    }
}

/// One mapped segment: the base address this process sees plus the
/// agreed geometry. Cheap to clone behind an `Arc`; unmapped on drop.
pub struct Segment {
    base: *mut u8,
    len: usize,
    params: IpcParams,
}

// SAFETY: the segment is MAP_SHARED memory accessed only through the
// atomics and raw-byte helpers below; every multi-writer location is an
// atomic, and non-atomic payload ranges are handed out under the SPSC
// ring protocol (one producer process, one consumer process, ordered by
// Release/Acquire on the ring cursors).
unsafe impl Send for Segment {}
// SAFETY: see the `Send` justification — all shared mutation goes
// through atomics or SPSC-ordered payload ranges.
unsafe impl Sync for Segment {}

impl Segment {
    /// Create the segment (rank 0): allocate the memfd, size it, map
    /// it, and write the validation header. Returns the mapping plus
    /// the fd to hand to peers (close it after the handoff).
    pub fn create(params: IpcParams) -> io::Result<(Segment, i32)> {
        let len = params.segment_len();
        let fd = sys::memfd_create("pcomm-ipc-seg")?;
        sys::ftruncate(fd, len)?;
        let base = sys::mmap_shared(fd, len)?;
        let seg = Segment { base, len, params };
        // Geometry stores are Relaxed because the magic is written last
        // with Release — a peer that Acquire-loads the magic is
        // guaranteed to see the fully initialised header.
        seg.header_u32(12)
            .store(params.n_ranks as u32, Ordering::Relaxed); // ORDERING: published by magic
        seg.header_u32(16)
            .store(params.ring_slots, Ordering::Relaxed); // ORDERING: published by magic
        seg.header_u32(20)
            .store(ring::SLOT_BYTES as u32, Ordering::Relaxed); // ORDERING: published by magic
        seg.header_u64(24)
            .store(params.fifo_bytes, Ordering::Relaxed); // ORDERING: published by magic
        seg.header_u64(32)
            .store(params.arena_bytes, Ordering::Relaxed); // ORDERING: published by magic
        seg.header_u32(8).store(SEG_VERSION, Ordering::Relaxed); // ORDERING: published by magic
        seg.header_u64(0).store(SEG_MAGIC, Ordering::Release);
        Ok((seg, fd))
    }

    /// Attach to an existing segment received over the bootstrap
    /// socket: map the fd and validate magic, version and geometry
    /// against what this rank derived from its own environment.
    pub fn attach(fd: i32, params: IpcParams) -> io::Result<Segment> {
        let len = params.segment_len();
        let base = sys::mmap_shared(fd, len)?;
        let seg = Segment { base, len, params };
        if seg.header_u64(0).load(Ordering::Acquire) != SEG_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "ipc: segment magic mismatch",
            ));
        }
        // Relaxed is enough below — the Acquire load of the magic above
        // synchronises with the creator's Release store, which happens
        // after every geometry store.
        let got = (
            seg.header_u32(8).load(Ordering::Relaxed), // ORDERING: ordered by magic Acquire
            seg.header_u32(12).load(Ordering::Relaxed) as usize, // ORDERING: ordered by magic Acquire
            seg.header_u32(16).load(Ordering::Relaxed), // ORDERING: ordered by magic Acquire
            seg.header_u32(20).load(Ordering::Relaxed) as usize, // ORDERING: ordered by magic Acquire
            seg.header_u64(24).load(Ordering::Relaxed), // ORDERING: ordered by magic Acquire
            seg.header_u64(32).load(Ordering::Relaxed), // ORDERING: ordered by magic Acquire
        );
        let want = (
            SEG_VERSION,
            params.n_ranks,
            params.ring_slots,
            ring::SLOT_BYTES,
            params.fifo_bytes,
            params.arena_bytes,
        );
        if got != want {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("ipc: segment geometry mismatch (creator {got:?}, attacher {want:?})"),
            ));
        }
        Ok(seg)
    }

    /// The agreed geometry.
    pub fn params(&self) -> &IpcParams {
        &self.params
    }

    fn header_u32(&self, off: usize) -> &AtomicU32 {
        // SAFETY: `off` is a fixed in-header offset < HEADER_BYTES,
        // 4-aligned; the mapping outlives `self`.
        unsafe { &*(self.base.add(off) as *const AtomicU32) }
    }

    fn header_u64(&self, off: usize) -> &AtomicU64 {
        // SAFETY: as `header_u32`, 8-aligned fixed offset.
        unsafe { &*(self.base.add(off) as *const AtomicU64) }
    }

    fn rank_word_u32(&self, rank: usize, off: usize) -> &AtomicU32 {
        debug_assert!(rank < self.params.n_ranks);
        let at = HEADER_BYTES + rank * RANK_BLOCK_BYTES + off;
        // SAFETY: rank blocks live inside the mapping (layout math in
        // `segment_len`), offsets are fixed and 4-aligned.
        unsafe { &*(self.base.add(at) as *const AtomicU32) }
    }

    /// This rank's heartbeat word: bumped by its progress thread every
    /// tick; peers watch it for staleness to detect silent death.
    pub fn heartbeat(&self, rank: usize) -> &AtomicU64 {
        debug_assert!(rank < self.params.n_ranks);
        let at = HEADER_BYTES + rank * RANK_BLOCK_BYTES;
        // SAFETY: as `rank_word_u32`, 8-aligned block start.
        unsafe { &*(self.base.add(at) as *const AtomicU64) }
    }

    /// Attach flag a rank sets once it has validated the segment.
    pub fn attached(&self, rank: usize) -> &AtomicU32 {
        self.rank_word_u32(rank, 8)
    }

    /// A rank's inbound doorbell (covers all channels targeting it).
    pub fn doorbell(&self, rank: usize) -> doorbell::Doorbell<'_> {
        doorbell::Doorbell::new(self.rank_word_u32(rank, 12), self.rank_word_u32(rank, 16))
    }

    /// The directed channel `src → dst`.
    pub fn channel(&self, src: usize, dst: usize) -> ring::Channel {
        debug_assert!(src < self.params.n_ranks && dst < self.params.n_ranks);
        let k = src * self.params.n_ranks + dst;
        let at = self.params.channels_base() + k * self.params.channel_stride();
        // SAFETY: the channel region lies inside the mapping by the
        // same layout math `segment_len` used to size it.
        unsafe {
            ring::Channel::new(
                self.base.add(at),
                self.params.ring_slots,
                self.params.fifo_bytes,
                self.params.arena_bytes,
            )
        }
    }

    /// Whether `ptr` points into this segment; returns its offset if so
    /// (used to translate receiver buffers into sender-visible arena
    /// offsets for the zero-copy partition path).
    pub fn offset_of(&self, ptr: *const u8) -> Option<usize> {
        let p = ptr as usize;
        let b = self.base as usize;
        if p >= b && p < b + self.len {
            Some(p - b)
        } else {
            None
        }
    }

    /// Raw pointer at a segment offset (for arena payload access).
    ///
    /// # Safety
    /// `off..off + len` for the caller's intended access must lie
    /// inside one channel's payload region, and the caller must hold
    /// the SPSC-protocol right to that range (producer before
    /// publishing, consumer after the Acquire that published it).
    pub unsafe fn ptr_at(&self, off: usize) -> *mut u8 {
        debug_assert!(off < self.len);
        // SAFETY: bound-checked above in debug; contract forwarded to
        // the caller.
        unsafe { self.base.add(off) }
    }
}

impl Drop for Segment {
    fn drop(&mut self) {
        // SAFETY: `base..base+len` is the one mapping `create`/`attach`
        // made; nothing references it after drop.
        let _ = unsafe { sys::munmap(self.base, self.len) };
    }
}

/// Send the segment fd to a peer over a bootstrap socket, tagged with
/// the sender's rank (sanity-checked on the other side).
pub fn send_segment_fd(sock_fd: i32, seg_fd: i32, from_rank: usize) -> io::Result<()> {
    sys::send_fd(sock_fd, seg_fd, from_rank as u8)
}

/// Receive the segment fd from rank 0 over a bootstrap socket; returns
/// the fd (close after attach) and the sender's tag byte.
pub fn recv_segment_fd(sock_fd: i32) -> io::Result<(i32, u8)> {
    sys::recv_fd(sock_fd)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_params() -> IpcParams {
        IpcParams {
            n_ranks: 2,
            ring_slots: 8,
            fifo_bytes: 1 << 16,
            arena_bytes: 1 << 16,
        }
    }

    #[test]
    fn create_then_attach_roundtrip() {
        if !sys::supported() {
            return;
        }
        let (seg, fd) = Segment::create(tiny_params()).unwrap();
        let seg2 = Segment::attach(fd, tiny_params()).unwrap();
        sys::close(fd).unwrap();
        seg.heartbeat(0).store(42, Ordering::Release);
        assert_eq!(seg2.heartbeat(0).load(Ordering::Acquire), 42);
        // Geometry disagreement must be rejected.
        let (_seg3, fd3) = Segment::create(tiny_params()).unwrap();
        let bad = IpcParams {
            ring_slots: 16,
            ..tiny_params()
        };
        assert!(Segment::attach(fd3, bad).is_err());
        sys::close(fd3).unwrap();
    }

    #[test]
    fn channels_are_disjoint() {
        if !sys::supported() {
            return;
        }
        let (seg, fd) = Segment::create(tiny_params()).unwrap();
        sys::close(fd).unwrap();
        let a = seg.channel(0, 1);
        let b = seg.channel(1, 0);
        // Fill a's ring completely; b must stay empty.
        let mut n = 0;
        while a
            .try_push(
                ring::SlotDesc {
                    kind: ring::K_FRAME,
                    parts: 0,
                    a: n,
                    b: 0,
                    c: 0,
                },
                &[1, 2, 3],
            )
            .is_ok()
        {
            n += 1;
        }
        assert_eq!(n, 8);
        assert!(!b.try_pop(|_, _| {}).unwrap());
        let mut seen = 0;
        while a
            .try_pop(|d, pay| {
                assert_eq!(d.a, seen);
                assert_eq!(pay, &[1, 2, 3]);
            })
            .unwrap()
        {
            seen += 1;
        }
        assert_eq!(seen, 8);
    }
}
