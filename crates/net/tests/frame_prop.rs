//! Property sweep over the wire-frame codec: every frame variant —
//! including the partitioned-stream trio (`PartRts`/`PartCts`/
//! `PartData`) — must survive an encode→decode roundtrip bit-exact, and
//! every truncation of a frame's fixed header must be *rejected*, never
//! misparsed. Deliberately not feature-gated: the codec is the process
//! boundary, so it runs in every `cargo test`.

use std::io::Cursor;

use pcomm_net::frame::{self, Frame, MAX_FRAME_BODY, WIRE_VERSION};

/// Deterministic xorshift64* — the sweep is seeded, so a failure
/// reproduces from the printed (seed, variant, round) triple alone.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> XorShift {
        XorShift(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// A u64 biased toward the interesting edges (0, MAX, small).
    fn edgy(&mut self) -> u64 {
        match self.next() % 4 {
            0 => 0,
            1 => u64::MAX,
            2 => self.next() % 1024,
            _ => self.next(),
        }
    }

    fn payload(&mut self) -> Vec<u8> {
        let len = (self.next() % 256) as usize;
        (0..len).map(|_| (self.next() & 0xff) as u8).collect()
    }

    fn ascii(&mut self) -> String {
        let len = (self.next() % 48) as usize;
        (0..len)
            .map(|_| char::from(b' ' + (self.next() % 94) as u8))
            .collect()
    }
}

const N_VARIANTS: usize = 18;

/// One random instance of variant `v` (0..N_VARIANTS).
fn gen_frame(rng: &mut XorShift, v: usize) -> Frame {
    match v {
        0 => Frame::Hello {
            rank: rng.edgy() as u16,
            lane: rng.edgy() as u16,
            seq: rng.edgy(),
        },
        1 => Frame::Eager {
            shard: rng.edgy() as u16,
            ctx: rng.edgy(),
            tag: rng.edgy() as i64,
            payload: rng.payload(),
        },
        2 => Frame::Rts {
            shard: rng.edgy() as u16,
            ctx: rng.edgy(),
            tag: rng.edgy() as i64,
            len: rng.edgy(),
            rdv_id: rng.edgy(),
        },
        3 => Frame::Cts { rdv_id: rng.edgy() },
        4 => Frame::RdvData {
            rdv_id: rng.edgy(),
            payload: rng.payload(),
        },
        5 => Frame::BarrierArrive { gen: rng.edgy() },
        6 => Frame::BarrierRelease { gen: rng.edgy() },
        7 => Frame::Abort {
            kind: (rng.next() % 5) as u8,
            a: rng.edgy(),
            b: rng.edgy(),
            tag: rng.edgy() as i64,
            attempts: rng.edgy(),
            detail: rng.ascii(),
        },
        8 => Frame::Bye,
        9 => Frame::WinAnnounce {
            win_ctx: rng.edgy(),
            len: rng.edgy(),
        },
        10 => Frame::Put {
            win_ctx: rng.edgy(),
            offset: rng.edgy(),
            payload: rng.payload(),
        },
        11 => Frame::GetReq {
            win_ctx: rng.edgy(),
            offset: rng.edgy(),
            len: rng.edgy(),
            token: rng.edgy(),
        },
        12 => Frame::GetResp {
            token: rng.edgy(),
            payload: rng.payload(),
        },
        13 => Frame::PartRts {
            ctx: rng.edgy(),
            total_len: rng.edgy(),
            rdv_id: rng.edgy(),
        },
        14 => Frame::PartCts { rdv_id: rng.edgy() },
        15 => Frame::PartData {
            rdv_id: rng.edgy(),
            offset: rng.edgy(),
            payload: rng.payload(),
        },
        16 => Frame::Heartbeat { seq: rng.edgy() },
        17 => Frame::StreamResync {
            rdv_id: rng.edgy(),
            received: rng.edgy(),
            missing: {
                let n = (rng.next() % 5) as usize;
                (0..n).map(|_| (rng.edgy(), rng.edgy())).collect()
            },
        },
        _ => unreachable!("variant index out of range"),
    }
}

/// Bytes of fixed (non-payload) fields after the version+opcode pair.
/// Any body shorter than `2 + fixed` must be rejected by the decoder.
fn fixed_field_bytes(f: &Frame) -> usize {
    match f {
        Frame::Hello { .. } => 2 + 2 + 8,
        Frame::Eager { .. } => 2 + 8 + 8,
        Frame::Rts { .. } => 2 + 8 + 8 + 8 + 8,
        Frame::Cts { .. } => 8,
        Frame::RdvData { .. } => 8,
        Frame::BarrierArrive { .. } | Frame::BarrierRelease { .. } => 8,
        Frame::Abort { .. } => 1 + 8 + 8 + 8 + 8,
        Frame::Bye => 0,
        Frame::WinAnnounce { .. } => 8 + 8,
        Frame::Put { .. } => 8 + 8,
        Frame::GetReq { .. } => 8 + 8 + 8 + 8,
        Frame::GetResp { .. } => 8,
        Frame::PartRts { .. } => 8 + 8 + 8,
        Frame::PartCts { .. } => 8,
        Frame::PartData { .. } => 8 + 8,
        Frame::Heartbeat { .. } => 8,
        Frame::StreamResync { .. } => 8 + 8 + 2,
    }
}

const SEED: u64 = 0x9e37_79b9_7f4a_7c15;
const ROUNDS: usize = 64;

#[test]
fn every_variant_roundtrips_bit_exact() {
    let mut rng = XorShift::new(SEED);
    for round in 0..ROUNDS {
        for v in 0..N_VARIANTS {
            let f = gen_frame(&mut rng, v);
            let buf = f.encode();
            let body_len = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
            assert_eq!(
                body_len,
                buf.len() - 4,
                "length prefix covers the body ({} round {round})",
                f.name()
            );
            assert!(body_len <= MAX_FRAME_BODY);
            let back = Frame::decode(&buf[4..])
                .unwrap_or_else(|e| panic!("{} round {round}: decode failed: {e}", f.name()));
            assert_eq!(back, f, "roundtrip ({} round {round})", f.name());

            // The stream path (length prefix + body) must agree.
            let streamed = Frame::read_from(&mut Cursor::new(&buf))
                .unwrap_or_else(|e| panic!("{} round {round}: read_from failed: {e}", f.name()));
            assert_eq!(
                streamed,
                f,
                "read_from roundtrip ({} round {round})",
                f.name()
            );
        }
    }
}

#[test]
fn truncated_fixed_fields_are_rejected_not_misparsed() {
    let mut rng = XorShift::new(SEED ^ 0xdead_beef);
    for round in 0..ROUNDS {
        for v in 0..N_VARIANTS {
            let f = gen_frame(&mut rng, v);
            let body = &f.encode()[4..];
            // Cutting into version or opcode: always rejected.
            for cut in 0..2.min(body.len()) {
                assert!(
                    Frame::decode(&body[..cut]).is_err(),
                    "{} round {round}: {cut}-byte body must not decode",
                    f.name()
                );
            }
            // Cutting anywhere inside the fixed fields: always rejected.
            let fixed_end = 2 + fixed_field_bytes(&f);
            for cut in 2..fixed_end {
                assert!(
                    Frame::decode(&body[..cut]).is_err(),
                    "{} round {round}: truncation at {cut}/{fixed_end} must be rejected",
                    f.name()
                );
            }
        }
    }
}

#[test]
fn truncated_streams_and_bad_headers_are_rejected() {
    let mut rng = XorShift::new(SEED ^ 0x5eed);
    for v in 0..N_VARIANTS {
        let f = gen_frame(&mut rng, v);
        let buf = f.encode();

        // A stream that ends mid-frame is an error, not a short frame.
        for cut in [1usize, 3, buf.len() - 1] {
            assert!(
                Frame::read_from(&mut Cursor::new(&buf[..cut])).is_err(),
                "{}: stream cut at {cut} must error",
                f.name()
            );
        }

        // A foreign wire version is rejected before any field parse.
        let mut wrong_ver = buf.clone();
        wrong_ver[4] = WIRE_VERSION + 1;
        assert!(
            Frame::decode(&wrong_ver[4..]).is_err(),
            "{}: wire version {} must be rejected",
            f.name(),
            WIRE_VERSION + 1
        );
    }

    // Unknown opcodes and implausible lengths are rejected too.
    assert!(
        Frame::decode(&[WIRE_VERSION, 250]).is_err(),
        "unknown opcode"
    );
    let huge = ((MAX_FRAME_BODY + 1) as u32).to_le_bytes();
    assert!(
        Frame::read_from(&mut Cursor::new(&huge)).is_err(),
        "over-limit frame length"
    );
    assert!(
        Frame::read_from(&mut Cursor::new(&1u32.to_le_bytes())).is_err(),
        "sub-minimum frame length"
    );
}

#[test]
fn seeded_corruption_sweep_never_panics_and_never_over_allocates() {
    // Decode hardening: random byte flips over every frame variant, and
    // length-prefix lies over the stream API, must come back as a clean
    // typed error (or a different-but-valid frame — a flip can land in a
    // payload byte), never a panic and never an allocation sized by the
    // lie instead of by the bytes that actually arrived.
    let mut rng = XorShift::new(SEED ^ 0xc0de);
    for round in 0..ROUNDS {
        for v in 0..N_VARIANTS {
            let f = gen_frame(&mut rng, v);
            let buf = f.encode();

            // 1) Byte flips in the body.
            let n_flips = 1 + (rng.next() % 3) as usize;
            let mut mutated = buf[4..].to_vec();
            for _ in 0..n_flips {
                let at = (rng.next() as usize) % mutated.len();
                mutated[at] ^= 1 << (rng.next() % 8);
            }
            let outcome = std::panic::catch_unwind(|| Frame::decode(&mutated).map(|_| ()));
            assert!(
                outcome.is_ok(),
                "{} round {round}: decode of flipped body panicked",
                f.name()
            );

            // 2) Length-prefix lies over the stream API: claim more
            // bytes than follow. Must be UnexpectedEof/InvalidData, not
            // a panic, and must not allocate the claimed length before
            // the stream proves it has the bytes.
            let mut lying = buf.clone();
            let claim = match rng.next() % 3 {
                0 => MAX_FRAME_BODY as u32,
                1 => (buf.len() as u32).saturating_mul(1000).max(8),
                _ => (buf.len() - 4 + 1 + (rng.next() % 4096) as usize) as u32,
            };
            lying[..4].copy_from_slice(&claim.to_le_bytes());
            let outcome =
                std::panic::catch_unwind(|| Frame::read_from(&mut Cursor::new(&lying)).map(|_| ()));
            match outcome {
                Ok(res) => assert!(
                    res.is_err(),
                    "{} round {round}: lying prefix ({claim} bytes claimed, {} present) \
                     must not decode",
                    f.name(),
                    lying.len() - 4
                ),
                Err(_) => panic!("{} round {round}: lying prefix panicked", f.name()),
            }

            // 3) Truncated stream with an honest prefix: typed error.
            if buf.len() > 5 {
                let cut = 4 + 1 + (rng.next() as usize) % (buf.len() - 5);
                assert!(
                    Frame::read_from(&mut Cursor::new(&buf[..cut])).is_err(),
                    "{} round {round}: truncated stream must error",
                    f.name()
                );
            }
        }
    }
}

#[test]
fn part_data_fast_header_agrees_with_the_frame_codec() {
    let mut rng = XorShift::new(SEED ^ 0x7a57);
    for round in 0..ROUNDS {
        let rdv_id = rng.edgy();
        let offset = rng.edgy();
        let payload = rng.payload();

        // The writer's zero-copy path: stack header + pinned payload.
        let hdr = frame::part_data_header(rdv_id, offset, payload.len());
        let mut wire = hdr.to_vec();
        wire.extend_from_slice(&payload);

        // The generic codec must read it back as the same PartData.
        let back = Frame::read_from(&mut Cursor::new(&wire)).expect("fast header decodes");
        assert_eq!(
            back,
            Frame::PartData {
                rdv_id,
                offset,
                payload: payload.clone()
            },
            "round {round}: fast-path header disagrees with the codec"
        );

        // And the receiver's zero-copy peek must agree field-for-field.
        let (id2, off2, pay2) = frame::decode_part_data(&wire[4..]).expect("decode_part_data");
        assert_eq!((id2, off2, pay2), (rdv_id, offset, &payload[..]));
    }
}
