//! `pcomm-workloads` — compute/delay workload generators for the pipelined
//! communication benchmarks.
//!
//! The paper's benchmark (Fig. 3) interposes *compute* between `start` and
//! `pready`: threads work on their partitions and mark them ready as they
//! finish. This crate turns the Appendix-A compute model into concrete
//! per-partition *ready times*:
//!
//! * [`DelaySchedule::Immediate`] — all partitions ready at once
//!   (Figs. 4–7: "all the partitions are ready immediately");
//! * [`DelaySchedule::LastPartitionGamma`] — the last partition is delayed
//!   by `γ·S_part` (Fig. 8's controlled early-bird experiment);
//! * [`DelaySchedule::GaussianCompute`] — per-partition compute time
//!   `µ·S·N(1, (ε+δ)/2)` accumulated per thread (Appendix A, eq. 7).

#![warn(missing_docs)]

use pcomm_perfmodel::DelayModel;
use pcomm_prng::{Normal, Xoshiro256pp};
use pcomm_simcore::Dur;

/// Partition→thread assignment used throughout: partition `p` belongs to
/// thread `p % n_threads` (the round-robin attribution the improved MPICH
/// implementation assumes, paper §3.2.2).
pub fn thread_of_partition(p: usize, n_threads: usize) -> usize {
    p % n_threads
}

/// The partitions of thread `t`, in the order the thread processes them.
pub fn partitions_of_thread(t: usize, n_threads: usize, theta: usize) -> Vec<usize> {
    (0..theta).map(|j| t + j * n_threads).collect()
}

/// How partition ready times are generated for one iteration.
#[derive(Debug, Clone)]
pub enum DelaySchedule {
    /// Every partition ready at compute start.
    Immediate,
    /// All partitions ready immediately except the last, delayed by
    /// `γ · S_part` (γ in s/B).
    LastPartitionGamma {
        /// Delay rate γ in seconds per byte.
        gamma_s_per_b: f64,
    },
    /// Appendix-A Gaussian compute: partition compute time is
    /// `µ·S·N(1, σ)` (clamped at 0), accumulated in processing order on
    /// each thread.
    GaussianCompute {
        /// The delay model providing µ and σ.
        model: DelayModel,
    },
}

impl DelaySchedule {
    /// Ready time of every partition (indexed by partition id), measured
    /// from the start of the compute phase.
    ///
    /// `n_threads × theta` partitions of `part_bytes` each; `rng` drives
    /// the Gaussian variant (deterministic per seed).
    pub fn ready_times(
        &self,
        n_threads: usize,
        theta: usize,
        part_bytes: usize,
        rng: &mut Xoshiro256pp,
    ) -> Vec<Dur> {
        assert!(n_threads >= 1 && theta >= 1, "need threads and partitions");
        let n_parts = n_threads * theta;
        match self {
            DelaySchedule::Immediate => vec![Dur::ZERO; n_parts],
            DelaySchedule::LastPartitionGamma { gamma_s_per_b } => {
                assert!(*gamma_s_per_b >= 0.0, "γ must be non-negative");
                let mut v = vec![Dur::ZERO; n_parts];
                v[n_parts - 1] = Dur::from_secs_f64(gamma_s_per_b * part_bytes as f64);
                v
            }
            DelaySchedule::GaussianCompute { model } => {
                let mut v = vec![Dur::ZERO; n_parts];
                let mut dist = Normal::new(1.0, model.noise.sigma());
                for t in 0..n_threads {
                    let mut elapsed = 0.0f64;
                    for p in partitions_of_thread(t, n_threads, theta) {
                        let factor = dist.sample_clamped_min(rng, 0.0);
                        elapsed += model.mu * part_bytes as f64 * factor;
                        v[p] = Dur::from_secs_f64(elapsed);
                    }
                }
                v
            }
        }
    }

    /// The maximum ready time — the delay `D` the benchmark subtracts from
    /// the measured time-to-solution (the compute is not being measured).
    pub fn max_delay(
        &self,
        n_threads: usize,
        theta: usize,
        part_bytes: usize,
        rng: &mut Xoshiro256pp,
    ) -> Dur {
        self.ready_times(n_threads, theta, part_bytes, rng)
            .into_iter()
            .max()
            .unwrap_or(Dur::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcomm_perfmodel::{ComputeProfile, NoiseModel};

    fn rng() -> Xoshiro256pp {
        Xoshiro256pp::seed_from_u64(42)
    }

    #[test]
    fn partition_thread_mapping_round_robin() {
        assert_eq!(thread_of_partition(0, 4), 0);
        assert_eq!(thread_of_partition(5, 4), 1);
        assert_eq!(partitions_of_thread(1, 4, 3), vec![1, 5, 9]);
        // Every partition appears exactly once across threads.
        let mut seen = [false; 12];
        for t in 0..4 {
            for p in partitions_of_thread(t, 4, 3) {
                assert!(!seen[p], "partition {p} assigned twice");
                seen[p] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn immediate_is_all_zero() {
        let v = DelaySchedule::Immediate.ready_times(8, 4, 1024, &mut rng());
        assert_eq!(v.len(), 32);
        assert!(v.iter().all(|&d| d == Dur::ZERO));
    }

    #[test]
    fn last_partition_gamma_delay() {
        // γ = 100 µs/MB = 1e-10 s/B, S = 1 MB → D = 100 µs.
        let sched = DelaySchedule::LastPartitionGamma {
            gamma_s_per_b: 1e-10,
        };
        let v = sched.ready_times(4, 1, 1_000_000, &mut rng());
        assert_eq!(v[0], Dur::ZERO);
        assert_eq!(v[1], Dur::ZERO);
        assert_eq!(v[2], Dur::ZERO);
        assert_eq!(v[3], Dur::from_us(100));
        assert_eq!(
            sched.max_delay(4, 1, 1_000_000, &mut rng()),
            Dur::from_us(100)
        );
    }

    #[test]
    fn gaussian_ready_times_increase_along_thread() {
        let model = DelayModel::new(
            ComputeProfile::fft(),
            NoiseModel {
                epsilon: 0.04,
                delta: 0.0,
            },
        );
        let sched = DelaySchedule::GaussianCompute { model };
        let v = sched.ready_times(4, 8, 65536, &mut rng());
        for t in 0..4 {
            let parts = partitions_of_thread(t, 4, 8);
            for w in parts.windows(2) {
                assert!(v[w[1]] >= v[w[0]], "ready times must be cumulative");
            }
        }
    }

    #[test]
    fn gaussian_mean_close_to_mu_s() {
        let model = DelayModel {
            mu: 1e-9,
            noise: NoiseModel {
                epsilon: 0.04,
                delta: 0.0,
            },
        };
        let sched = DelaySchedule::GaussianCompute { model };
        // θ=1: ready time of each partition ≈ µ·S = 65.536 µs.
        let mut r = rng();
        let mut total = 0.0;
        let n = 200;
        for _ in 0..n {
            let v = sched.ready_times(8, 1, 65536, &mut r);
            total += v.iter().map(|d| d.as_us_f64()).sum::<f64>() / v.len() as f64;
        }
        let mean = total / n as f64;
        assert!((mean - 65.536).abs() < 1.0, "mean ready {mean}");
    }

    #[test]
    fn gaussian_observed_delay_matches_gamma_model() {
        // The spread between first and last ready time should be of the
        // order γ_θ·S from the analytical model (Appendix A validation).
        let model = DelayModel::new(
            ComputeProfile::fft(),
            NoiseModel {
                epsilon: 0.04,
                delta: 0.0,
            },
        );
        let sched = DelaySchedule::GaussianCompute { model };
        let s_part = 1 << 20;
        let theta = 8;
        let mut r = rng();
        let mut spreads = Vec::new();
        for _ in 0..300 {
            let v = sched.ready_times(8, theta, s_part, &mut r);
            let max = v.iter().max().unwrap().as_secs_f64();
            let min_first: f64 = (0..8)
                .map(|t| v[partitions_of_thread(t, 8, theta)[0]].as_secs_f64())
                .fold(f64::INFINITY, f64::min);
            spreads.push(max - (min_first - model.mu * s_part as f64));
        }
        let mean_spread = spreads.iter().sum::<f64>() / spreads.len() as f64;
        let predicted = model.delay(theta as u64, s_part as f64);
        let ratio = mean_spread / predicted;
        // The analytical formula uses expected extremes; Monte-Carlo over 8
        // threads lands in the same ballpark.
        assert!(
            (0.5..2.0).contains(&ratio),
            "spread {mean_spread} vs predicted {predicted} (ratio {ratio})"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let model = DelayModel {
            mu: 1e-9,
            noise: NoiseModel {
                epsilon: 0.1,
                delta: 0.0,
            },
        };
        let sched = DelaySchedule::GaussianCompute { model };
        let a = sched.ready_times(4, 2, 4096, &mut Xoshiro256pp::seed_from_u64(7));
        let b = sched.ready_times(4, 2, 4096, &mut Xoshiro256pp::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_gamma_rejected() {
        let sched = DelaySchedule::LastPartitionGamma {
            gamma_s_per_b: -1.0,
        };
        let _ = sched.ready_times(2, 1, 64, &mut rng());
    }
}
