//! Cross-crate validation: the simulator's measurements must agree with
//! the closed-form model (§2.2) where the model's assumptions hold, and
//! the Appendix-A Monte-Carlo delay matches its analytic rate.

use pcomm::netmodel::MachineConfig;
use pcomm::perfmodel::{
    eta_large, t_bulk, t_pipelined, us_per_mb_to_s_per_b, ComputeProfile, DelayModel, NoiseModel,
};
use pcomm::prng::Xoshiro256pp;
use pcomm::simcore::Dur;
use pcomm::simmpi::scenario::{run_scenario, Approach, Scenario};
use pcomm::workloads::DelaySchedule;

fn mean_us(cfg: &MachineConfig, approach: Approach, sc: &Scenario) -> f64 {
    let times = run_scenario(cfg, 1, 11, approach, sc);
    let xs: Vec<f64> = times[1..].iter().map(|t| t.as_us_f64()).collect();
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Large bandwidth-bound messages: measured bulk time ≈ eq. (2).
#[test]
fn bulk_time_matches_eq2() {
    let cfg = MachineConfig::meluxina_quiet();
    let n_parts = 4u64;
    let part = 8 << 20; // 8 MiB partitions
    let sc = Scenario::immediate(4, 1, part, 4);
    let measured = mean_us(&cfg, Approach::PtpSingle, &sc);
    let model = t_bulk(n_parts, part as f64, cfg.bandwidth) * 1e6;
    let rel = (measured - model).abs() / model;
    assert!(
        rel < 0.05,
        "measured {measured} vs eq.(2) {model} (rel {rel})"
    );
}

/// Pipelined with delay: measured ≈ eq. (3) at large sizes.
#[test]
fn pipelined_time_matches_eq3() {
    let cfg = MachineConfig::meluxina_quiet();
    let part = 8 << 20;
    let gamma = us_per_mb_to_s_per_b(100.0);
    let delay = gamma * part as f64;
    let mut sc = Scenario::immediate(4, 1, part, 4);
    sc.delays[3] = Dur::from_secs_f64(delay);
    let measured = mean_us(&cfg, Approach::PtpPart, &sc);
    let model = t_pipelined(4, part as f64, cfg.bandwidth, delay) * 1e6;
    let rel = (measured - model).abs() / model;
    assert!(
        rel < 0.10,
        "measured {measured} vs eq.(3) {model} (rel {rel})"
    );
}

/// The measured gain converges to eq. (4) from below as size grows.
#[test]
fn gain_converges_to_eq4() {
    let cfg = MachineConfig::meluxina_quiet();
    let gamma = us_per_mb_to_s_per_b(100.0);
    let ideal = eta_large(4, 1, gamma, cfg.bandwidth);
    let gain_at = |part: usize| -> f64 {
        let mut sc = Scenario::immediate(4, 1, part, 4);
        sc.delays[3] = Dur::from_secs_f64(gamma * part as f64);
        mean_us(&cfg, Approach::PtpSingle, &sc) / mean_us(&cfg, Approach::PtpPart, &sc)
    };
    let g1 = gain_at(1 << 20);
    let g16 = gain_at(16 << 20);
    assert!(g16 > g1, "gain must grow with size: {g1} → {g16}");
    assert!(g16 < ideal, "measured gain cannot exceed the ideal");
    assert!(
        ideal - g16 < 0.15,
        "16MiB gain {g16} too far from ideal {ideal}"
    );
}

/// Appendix A: the Monte-Carlo delay of the Gaussian compute schedule
/// scales with θ as the analytic γ_θ predicts.
#[test]
fn monte_carlo_delay_tracks_gamma_growth() {
    let model = DelayModel::new(
        ComputeProfile::fft(),
        NoiseModel {
            epsilon: 0.04,
            delta: 0.0,
        },
    );
    let sched = DelaySchedule::GaussianCompute { model };
    let s_part = 1 << 20;
    let mut rng = Xoshiro256pp::seed_from_u64(99);
    let mean_delay = |theta: usize, rng: &mut Xoshiro256pp| -> f64 {
        let n = 200;
        (0..n)
            .map(|_| {
                let v = sched.ready_times(8, theta, s_part, rng);
                let max = v.iter().max().unwrap().as_secs_f64();
                let min = v.iter().min().unwrap().as_secs_f64();
                max - min
            })
            .sum::<f64>()
            / n as f64
    };
    let d1 = mean_delay(1, &mut rng);
    let d8 = mean_delay(8, &mut rng);
    // γ₈/γ₁ ≈ 177 for the FFT profile; the Monte-Carlo measures the
    // spread between extremes rather than the analytic first/last
    // decomposition, but the strong θ growth must be present.
    assert!(
        d8 / d1 > 20.0,
        "delay must grow strongly with θ: {d1} → {d8}"
    );
}

/// Small-message law (eq. 5): pipelined loses roughly as 1/(Nθ) before
/// contention; with contention it loses even more.
#[test]
fn small_message_penalty_at_least_eq5() {
    let cfg = MachineConfig::meluxina_quiet();
    let sc = Scenario::immediate(8, 1, 64, 4);
    let single = mean_us(&cfg, Approach::PtpSingle, &sc);
    let many = mean_us(&cfg, Approach::PtpMany, &sc);
    let eta = single / many;
    assert!(
        eta < 1.0,
        "small messages: pipelining must lose (η = {eta})"
    );
}
