//! Randomized tests of the workspace's core invariants, driven by the
//! internal PRNG (see `prop_util`). Off by default; enable with
//! `cargo test --features proptests`.

#![cfg(feature = "proptests")]

mod prop_util;

use prop_util::{cases, maybe_usize, u64_in, usize_in};

use pcomm::netmodel::MachineConfig;
use pcomm::perfmodel::{eta_large, sample_sd, student_t_90, ConfidenceInterval};
use pcomm::prng::{Rng64, Xoshiro256pp};
use pcomm::simcore::{Dur, Sim};
use pcomm::simmpi::scenario::{run_scenario, Approach, Scenario};
use pcomm::workloads::{partitions_of_thread, thread_of_partition};

/// The two layout implementations (simulated and real runtime) are the
/// same algorithm — they must agree bit-for-bit.
#[test]
fn layouts_agree_between_crates() {
    cases(64, |rng| {
        let n_send_base = usize_in(rng, 1, 64);
        let mult = usize_in(rng, 1, 6);
        let part_bytes = usize_in(rng, 1, 10_000);
        let aggr = maybe_usize(rng, 1, 100_000);
        let n_send = n_send_base * mult;
        let n_recv = n_send_base;
        let a = pcomm::core::part::negotiate_layout(n_send, n_recv, part_bytes, aggr);
        // simmpi's layout is internal; compare via the public psend_init.
        let sim = Sim::new();
        let world = pcomm::simmpi::World::new(&sim, MachineConfig::meluxina_quiet(), 2, 1, 0);
        let opts = pcomm::simmpi::part::PartOptions {
            aggr_size: aggr,
            path: pcomm::simmpi::part::PartPath::Improved,
            first_iteration_cts: false, // no receiver task in this property
            ..Default::default()
        };
        let ps = pcomm::simmpi::part::psend_init(
            &world.comm_world(0),
            1,
            0,
            n_send,
            part_bytes,
            n_recv,
            opts,
        );
        assert_eq!(a.n_msgs(), ps.layout().n_msgs());
        for (x, y) in a.msgs.iter().zip(ps.layout().msgs.iter()) {
            assert_eq!(x.first_spart, y.first_spart);
            assert_eq!(x.n_sparts, y.n_sparts);
            assert_eq!(x.first_rpart, y.first_rpart);
            assert_eq!(x.n_rparts, y.n_rparts);
            assert_eq!(x.bytes, y.bytes);
        }
    });
}

/// Layout invariants: messages tile the partition ranges exactly, in
/// order, and aggregation never exceeds its bound unless a single base
/// message already does.
#[test]
fn layout_tiles_partitions() {
    cases(64, |rng| {
        let g = usize_in(rng, 1, 48);
        let sparts_per = usize_in(rng, 1, 8);
        let rparts_per = usize_in(rng, 1, 8);
        let part_bytes = usize_in(rng, 1, 4096);
        let aggr = maybe_usize(rng, 1, 65_536);
        let n_send = g * sparts_per;
        let n_recv = g * rparts_per;
        let l = pcomm::core::part::negotiate_layout(n_send, n_recv, part_bytes, aggr);
        // Tiling.
        let mut next_s = 0;
        let mut next_r = 0;
        let mut total = 0;
        for m in &l.msgs {
            assert_eq!(m.first_spart, next_s);
            assert_eq!(m.first_rpart, next_r);
            next_s += m.n_sparts;
            next_r += m.n_rparts;
            total += m.bytes;
            assert_eq!(m.bytes, m.n_sparts * part_bytes);
        }
        assert_eq!(next_s, n_send);
        assert_eq!(next_r, n_recv);
        assert_eq!(total, n_send * part_bytes);
        // Aggregation bound.
        if let Some(limit) = aggr {
            let base_bytes = (n_send / gcd(n_send, n_recv)) * part_bytes;
            for m in &l.msgs {
                assert!(m.bytes <= limit.max(base_bytes));
            }
        }
        // Mapping consistency.
        for p in 0..n_send {
            let m = l.msg_of_spart(p);
            let spec = l.msgs[m];
            assert!(p >= spec.first_spart && p < spec.first_spart + spec.n_sparts);
        }
    });
}

/// Round-robin partition↔thread mapping is a bijection.
#[test]
fn partition_thread_mapping_bijective() {
    cases(64, |rng| {
        let n_threads = usize_in(rng, 1, 32);
        let theta = usize_in(rng, 1, 16);
        let mut seen = vec![false; n_threads * theta];
        for t in 0..n_threads {
            for p in partitions_of_thread(t, n_threads, theta) {
                assert_eq!(thread_of_partition(p, n_threads), t);
                assert!(!seen[p]);
                seen[p] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    });
}

/// The simulator is deterministic: identical inputs give identical
/// per-iteration times, for any strategy and scenario.
#[test]
fn simulator_deterministic() {
    cases(24, |rng| {
        let approach = Approach::ALL[usize_in(rng, 0, Approach::ALL.len())];
        let n_threads = usize_in(rng, 1, 9);
        let theta = usize_in(rng, 1, 4);
        let part_kb = usize_in(rng, 1, 64);
        let seed = rng.next_u64();
        let sc = Scenario::immediate(n_threads, theta, part_kb * 256, 3);
        let cfg = MachineConfig::meluxina();
        let a = run_scenario(&cfg, 2, seed, approach, &sc);
        let b = run_scenario(&cfg, 2, seed, approach, &sc);
        assert_eq!(a, b);
    });
}

/// Gain model sanity: η ≥ 1 whenever there is any delay, η ≤ Nθ, and η
/// is monotone in γ.
#[test]
fn eta_bounds_and_monotonicity() {
    cases(64, |rng| {
        let n = u64_in(rng, 1, 64);
        let theta = u64_in(rng, 1, 16);
        let gamma_a = rng.next_range_f64(0.0, 1e-9);
        let gamma_b = rng.next_range_f64(0.0, 1e-9);
        let beta = 25e9;
        let (lo, hi) = if gamma_a <= gamma_b {
            (gamma_a, gamma_b)
        } else {
            (gamma_b, gamma_a)
        };
        let e_lo = eta_large(n, theta, lo, beta);
        let e_hi = eta_large(n, theta, hi, beta);
        assert!(e_lo >= 1.0 - 1e-12);
        assert!(e_hi <= (n * theta) as f64 + 1e-12);
        assert!(e_hi >= e_lo - 1e-12);
    });
}

/// Student-t CI: the half-width shrinks as 1/√n (fixed variance), and
/// the mean always lies inside the interval.
#[test]
fn ci_behaviour() {
    cases(48, |rng| {
        let seed = rng.next_u64();
        let n_small = usize_in(rng, 8, 40);
        let mut sample_rng = Xoshiro256pp::seed_from_u64(seed);
        let n_large = n_small * 16;
        let sample: Vec<f64> = (0..n_large).map(|_| sample_rng.next_f64() * 10.0).collect();
        let small = ConfidenceInterval::of(&sample[..n_small]);
        let large = ConfidenceInterval::of(&sample);
        if sample_sd(&sample[..n_small]) > 0.1 {
            assert!(large.halfwidth < small.halfwidth * 1.5);
        }
        assert!(large.halfwidth >= 0.0);
        assert!(student_t_90((n_large - 1) as u64) >= 1.6449);
    });
}

/// Virtual-time arithmetic: Dur conversions round-trip within a ps.
#[test]
fn dur_roundtrip() {
    cases(256, |rng| {
        let us = rng.next_range_f64(0.0, 1e6);
        let d = Dur::from_us_f64(us);
        assert!((d.as_us_f64() - us).abs() < 1e-5);
    });
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}
