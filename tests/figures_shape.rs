//! Integration tests: every figure's qualitative *shape* from the paper
//! must hold in the reproduction (quick protocol; the full protocol is
//! exercised by the `figures` binary and recorded in EXPERIMENTS.md).

use pcomm::netmodel::MachineConfig;
use pcomm_bench::figures;
use pcomm_bench::runner::RunOpts;

fn cfg() -> MachineConfig {
    MachineConfig::meluxina()
}

fn opts() -> RunOpts {
    RunOpts::quick()
}

/// Fig. 4: N=1, θ=1 sweep.
#[test]
fn fig4_shape() {
    let fig = figures::fig4(&cfg(), &opts());
    let v = |label: &str, x: usize| fig.value(label, x as f64).unwrap_or(f64::NAN);

    // The legacy AM path is noticeably slower than the improved one at
    // every size (the AM copies).
    for x in [16usize, 4096, 1 << 20, 16 << 20] {
        assert!(
            v("Pt2Pt part - old", x) > v("Pt2Pt part", x),
            "{x}: old {} <= improved {}",
            v("Pt2Pt part - old", x),
            v("Pt2Pt part", x)
        );
    }
    // The improved path matches Pt2Pt single closely.
    for x in [16usize, 1 << 20] {
        let rel = (v("Pt2Pt part", x) - v("Pt2Pt single", x)).abs() / v("Pt2Pt single", x);
        assert!(rel < 0.6, "{x}: improved vs single rel diff {rel}");
    }
    // RMA passive pays extra synchronization at small sizes, and the gap
    // closes above the rendezvous threshold.
    let small_gap = v("RMA single - passive", 16) / v("Pt2Pt single", 16);
    let large_gap = v("RMA single - passive", 16 << 20) / v("Pt2Pt single", 16 << 20);
    assert!(small_gap > 1.5, "RMA small-size gap {small_gap}");
    assert!(large_gap < 1.2, "RMA large-size gap {large_gap}");
    // All approaches approach the 25 GB/s line at 16 MiB (within 2x).
    let theory = v("theory 25 GB/s", 16 << 20);
    for s in [
        "Pt2Pt part",
        "Pt2Pt single",
        "Pt2Pt many",
        "RMA single - active",
    ] {
        let ratio = v(s, 16 << 20) / theory;
        assert!((1.0..2.0).contains(&ratio), "{s}: bandwidth ratio {ratio}");
    }
}

/// Fig. 4: the UCX protocol switches show as jumps between 1→2 KiB
/// (short→bcopy) and 8→16 KiB (bcopy→rendezvous).
#[test]
fn fig4_protocol_jumps() {
    let mut o = opts();
    o.size_stride = 1; // need adjacent sizes
    let fig = figures::fig4(&cfg(), &o);
    let v = |x: usize| fig.value("Pt2Pt single", x as f64).unwrap();
    // Baseline growth from doubling within one protocol is small at these
    // sizes; protocol switches add a visible step.
    let step_bcopy = v(2048) / v(1024);
    let step_rdv = v(16384) / v(8192);
    let step_plain = v(512) / v(256);
    assert!(
        step_bcopy > step_plain + 0.05,
        "bcopy step {step_bcopy} vs {step_plain}"
    );
    assert!(step_rdv > 1.3, "rendezvous step {step_rdv}");
}

/// Figs. 5–6: thread congestion at 32 threads and its relief with VCIs.
#[test]
fn fig5_fig6_contention_and_relief() {
    let fig5 = figures::fig5(&cfg(), &opts());
    let fig6 = figures::fig6(&cfg(), &opts());
    let x = 8 << 10; // small-message regime (present under the quick stride)
    let p5 = fig5.value("Pt2Pt part", x as f64).unwrap();
    let s5 = fig5.value("Pt2Pt single", x as f64).unwrap();
    let m5 = fig5.value("Pt2Pt many", x as f64).unwrap();
    let p6 = fig6.value("Pt2Pt part", x as f64).unwrap();
    let s6 = fig6.value("Pt2Pt single", x as f64).unwrap();
    let m6 = fig6.value("Pt2Pt many", x as f64).unwrap();

    // 1 VCI: heavy contention penalty (paper ≈30x).
    assert!(
        (15.0..50.0).contains(&(p5 / s5)),
        "fig5 part/single {}",
        p5 / s5
    );
    // part and many both suffer, with comparable overheads.
    assert!(m5 / s5 > 10.0, "fig5 many/single {}", m5 / s5);
    // 32 VCIs: contention relieved by roughly an order of magnitude
    // (paper: factor ≈10 reduction; penalty drops to ≈4).
    assert!(p6 < p5 / 5.0, "VCI relief for part: {p6} vs {p5}");
    assert!(
        (1.5..8.0).contains(&(p6 / s6)),
        "fig6 part/single {}",
        p6 / s6
    );
    // Pt2Pt many reaches Pt2Pt single performance with per-thread VCIs.
    assert!(m6 / s6 < 2.0, "fig6 many/single {}", m6 / s6);

    // RMA: many-passive is slower than single-passive with 1 VCI
    // (progress over many windows), faster with 32 VCIs (own VCIs).
    let rp_many5 = fig5.value("RMA many - passive", x as f64).unwrap();
    let rp_single5 = fig5.value("RMA single - passive", x as f64).unwrap();
    let rp_many6 = fig6.value("RMA many - passive", x as f64).unwrap();
    let rp_single6 = fig6.value("RMA single - passive", x as f64).unwrap();
    assert!(
        rp_many5 > rp_single5,
        "fig5 RMA many {rp_many5} vs single {rp_single5}"
    );
    assert!(
        rp_many6 < rp_single6,
        "fig6 RMA many {rp_many6} vs single {rp_single6}"
    );
}

/// Fig. 7: aggregation reduces the many-small-partitions overhead toward
/// (but not reaching) the single-message bound.
#[test]
fn fig7_aggregation_shape() {
    let fig = figures::fig7(&cfg(), &opts());
    let x = 128 << 10; // present under the quick stride; partitions are 1 KiB
    let noag = fig.value("Pt2Pt part (no aggr)", x as f64).unwrap();
    let ag512 = fig.value("Pt2Pt part aggr=512", x as f64).unwrap();
    let ag16k = fig.value("Pt2Pt part aggr=16384", x as f64).unwrap();
    let many = fig.value("Pt2Pt many", x as f64).unwrap();
    let single = fig.value("Pt2Pt single", x as f64).unwrap();

    // Larger aggregation bounds help more; at this size the 512 B bound
    // is below the 1 KiB partitions and therefore inert.
    assert!(ag16k < noag / 2.0, "aggr 16k {ag16k} vs none {noag}");
    assert!(
        ((ag512 - noag) / noag).abs() < 0.1,
        "aggr below partition size must be inert"
    );
    assert!(ag16k < ag512, "aggr 16k {ag16k} vs aggr 512 {ag512}");
    // Pt2Pt many matches the non-aggregated partitioned path.
    let rel = (many - noag).abs() / noag;
    assert!(rel < 0.5, "many {many} vs no-aggr part {noag}");
    // Single remains the lower bound: the atomic updates keep partitioned
    // above it (paper: floor ≈3x).
    assert!(
        ag16k > single,
        "aggregated {ag16k} must stay above single {single}"
    );
    let floor = ag16k / single;
    assert!((1.5..6.0).contains(&floor), "aggregation floor {floor}");
    // Aggregation is beneficial only below N_part × aggr bound: at 16 MiB
    // total, aggr=512 equals no aggregation (partitions exceed the bound).
    let big = 16 << 20;
    let noag_big = fig.value("Pt2Pt part (no aggr)", big as f64).unwrap();
    let ag512_big = fig.value("Pt2Pt part aggr=512", big as f64).unwrap();
    assert!(((ag512_big - noag_big) / noag_big).abs() < 0.1);
}

/// Fig. 8: the early-bird gain curve.
#[test]
fn fig8_early_bird_shape() {
    let fig = figures::fig8(&cfg(), &opts());
    let big = 64 << 20;
    let small = 4 << 10;
    for s in [
        "gain Pt2Pt part",
        "gain Pt2Pt many",
        "gain RMA single - passive",
    ] {
        let g_big = fig.value(s, big as f64).unwrap();
        let g_small = fig.value(s, small as f64).unwrap();
        // Paper: measured ≈2.54 against theory 2.67 at large sizes...
        assert!((2.2..2.7).contains(&g_big), "{s}: large-size gain {g_big}");
        // ...and no early-bird benefit at small sizes (Pt2Pt many with
        // only 4 lightly-contended threads hovers at ≈1; the others lose
        // outright).
        assert!(g_small < 1.1, "{s}: small-size gain {g_small}");
    }
    assert!(
        fig.value("gain Pt2Pt part", small as f64).unwrap() < 1.0,
        "partitioned must lose at small sizes"
    );
    // The gain is approach-agnostic at large sizes (within a few %).
    let a = fig.value("gain Pt2Pt part", big as f64).unwrap();
    let b = fig.value("gain Pt2Pt many", big as f64).unwrap();
    assert!((a - b).abs() / a < 0.1, "gains diverge: {a} vs {b}");
    // Crossover (gain = 1) lies around the paper's ≈100 kB.
    let part = fig
        .series
        .iter()
        .find(|s| s.label == "gain Pt2Pt part")
        .unwrap();
    let crossover = part
        .points
        .windows(2)
        .find(|w| w[0].y < 1.0 && w[1].y >= 1.0)
        .map(|w| (w[0].x, w[1].x))
        .expect("gain must cross 1");
    // The quick stride makes the bracket wide; the first size at which
    // pipelining wins must be in the tens-of-kB to ~1 MB range around the
    // paper's ≈100 kB.
    assert!(
        crossover.1 >= 3e4 && crossover.1 <= 1.1e6,
        "crossover bracket {crossover:?} too far from ≈100 kB"
    );
}
