//! End-to-end trace capture on the real runtime: a contended run must
//! yield shard-lock-wait spans and early-bird events, the Chrome
//! exporter must produce loadable JSON for them, and the `PCOMM_TRACE`
//! environment hook must write that JSON to disk. Tracing off must stay
//! off.

use std::sync::Mutex;

use pcomm::core::part::PartOptions;
use pcomm::core::Universe;
use pcomm::trace::{chrome_trace_json, EventKind, Trace, TraceData};

/// `Universe::run` reads `PCOMM_TRACE`; serialize the tests that touch
/// the environment or run untraced universes.
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// A 4-rank job on a single shard: ranks 2 and 3 flood rank 0 with eager
/// messages (lock contention on the one shard) while rank 1 streams a
/// partitioned send to rank 0 (early-bird injections).
fn contended_run() -> TraceData {
    let n_parts = 8;
    let part_bytes = 2048;
    let (_, data) = Universe::new(4).with_shards(1).run_traced(|comm| {
        match comm.rank() {
            0 => {
                let precv = comm.precv_init(1, 9, n_parts, part_bytes, PartOptions::default());
                precv.start();
                let mut buf = [0u8; 256];
                for _ in 0..2 * 32 {
                    comm.recv_into(None, Some(5), &mut buf);
                }
                precv.wait();
            }
            1 => {
                let psend = comm.psend_init(0, 9, n_parts, part_bytes, PartOptions::default());
                psend.start();
                for p in 0..n_parts {
                    psend.write_partition(p, |buf| buf.fill(p as u8));
                    psend.pready(p);
                }
                psend.wait();
            }
            _ => {
                let buf = [7u8; 256];
                for _ in 0..32 {
                    comm.send(0, 5, &buf);
                }
            }
        }
        comm.barrier();
    });
    data
}

#[test]
fn contended_run_captures_lock_waits_and_early_birds() {
    let _g = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let data = contended_run();
    assert_eq!(data.dropped, 0, "default ring must not drop this workload");
    let lock_waits = data
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::LockWait { .. }))
        .count();
    let early_birds: Vec<_> = data
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::EarlyBird { .. }))
        .collect();
    assert!(lock_waits > 0, "single-shard run must record lock waits");
    assert!(
        !early_birds.is_empty(),
        "pready-driven partitioned send must record early-bird events"
    );
    // Early-bird sends come from the sending rank.
    assert!(early_birds.iter().all(|e| e.rank == 1));
    // The merged timeline is sorted.
    for w in data.events.windows(2) {
        assert!(w[1].ts_ns >= w[0].ts_ns, "snapshot must be time-sorted");
    }
}

#[test]
fn chrome_export_contains_span_and_instant_names() {
    let _g = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let data = contended_run();
    let json = chrome_trace_json(&data.events, data.dropped);
    assert!(json.starts_with('{') && json.ends_with('}'));
    assert!(json.contains("\"traceEvents\""));
    // Lock waits render as complete spans, early-birds as instants.
    assert!(json.contains("\"name\":\"shard_lock_wait\",\"cat\":\"pcomm\",\"ph\":\"X\""));
    assert!(json.contains("\"name\":\"early_bird_send\",\"cat\":\"pcomm\",\"ph\":\"i\""));
    // Balanced braces/brackets outside strings (no string values contain
    // either, by construction).
    let (mut depth, mut max_depth) = (0i64, 0i64);
    for c in json.chars() {
        match c {
            '{' | '[' => depth += 1,
            '}' | ']' => depth -= 1,
            _ => {}
        }
        assert!(depth >= 0);
        max_depth = max_depth.max(depth);
    }
    assert_eq!(depth, 0);
    assert!(max_depth >= 3, "events nest under traceEvents");
}

#[test]
fn env_hook_writes_chrome_json() {
    let _g = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let path = std::env::temp_dir().join(format!("pcomm_trace_{}.json", std::process::id()));
    std::env::set_var("PCOMM_TRACE", &path);
    Universe::new(2)
        .run(|comm| {
            if comm.rank() == 0 {
                comm.send(1, 3, &[1, 2, 3, 4]);
            } else {
                let mut b = [0u8; 4];
                comm.recv_into(Some(0), Some(3), &mut b);
            }
        })
        .unwrap();
    std::env::remove_var("PCOMM_TRACE");
    let json = std::fs::read_to_string(&path).expect("PCOMM_TRACE file must exist");
    let _ = std::fs::remove_file(&path);
    assert!(json.contains("\"traceEvents\""));
    assert!(json.contains("eager_send"));
}

#[test]
fn disabled_trace_records_nothing() {
    let _g = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let trace = Trace::disabled();
    assert!(!trace.is_enabled());
    assert!(trace.snapshot().is_none());
    // A run without an attached trace and without PCOMM_TRACE behaves
    // exactly as before tracing existed: results only, no side effects.
    let out = Universe::new(2).with_trace(Trace::disabled()).run(|comm| {
        let peer = 1 - comm.rank();
        let mut buf = vec![comm.rank() as u8; 4096];
        if comm.rank() == 0 {
            comm.send(peer, 0, &buf);
            comm.recv_into(Some(peer), Some(0), &mut buf);
        } else {
            let mut tmp = vec![0u8; 4096];
            comm.recv_into(Some(peer), Some(0), &mut tmp);
            comm.send(peer, 0, &tmp);
        }
        buf[0]
    });
    // Rank 0 got its own zeros echoed back; rank 1 kept its own buffer.
    assert_eq!(out.unwrap(), vec![0, 1]);
}
