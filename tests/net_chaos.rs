//! Chaos over the wire: the fault-injection layer and the error taxonomy
//! must survive the jump from shared memory to real sockets. A seeded
//! drop plan on a UDS mesh must recover through bounded resends; a
//! certain-drop plan must surface `PcommError::MessageLost` on *both*
//! sides (the abort travels as a wire frame); and killing one rank's OS
//! process must come back as a structured `PeerPanicked` error on the
//! survivor instead of a hang.

use std::io::Read;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use pcomm::core::part::PartOptions;
use pcomm::core::{PcommError, Universe};
use pcomm::net::{launch, Backend, MultiprocEnv};

const ECHO_TAGS: i64 = 16;

/// The workload every SPMD child runs: 16 tagged eager messages
/// rank 0 → rank 1, echoed back once at the end.
fn echo_workload() -> Result<Vec<u8>, PcommError> {
    Universe::new(2).run(|comm| {
        if comm.rank() == 0 {
            for tag in 0..ECHO_TAGS {
                comm.send(1, tag, &[tag as u8; 32]);
            }
            let mut b = [0u8; 1];
            comm.recv_into(Some(1), Some(99), &mut b);
            b[0]
        } else {
            let mut sum = 0u8;
            let mut b = [0u8; 32];
            for tag in 0..ECHO_TAGS {
                comm.recv_into(Some(0), Some(tag), &mut b);
                assert!(b.iter().all(|&x| x == tag as u8), "payload survived chaos");
                sum = sum.wrapping_add(b[0]);
            }
            comm.send(0, 99, &[sum]);
            sum
        }
    })
}

const STREAM_PARTS: usize = 8;
const STREAM_PART_BYTES: usize = 4 * 1024;

/// The streaming workload: one partitioned transfer rank 1 → rank 0
/// with the default (streaming, early-bird) options, partitions readied
/// one by one so every `PartData` range crosses the wire separately.
fn stream_workload() -> Result<Vec<u8>, PcommError> {
    Universe::new(2).run(|comm| {
        let opts = PartOptions::default();
        if comm.rank() == 1 {
            let ps = comm.psend_init(0, 5, STREAM_PARTS, STREAM_PART_BYTES, opts);
            ps.start();
            for p in 0..STREAM_PARTS {
                ps.write_partition(p, |b| b.fill(p as u8 + 1));
                ps.pready(p);
            }
            ps.wait();
            0u8
        } else {
            let pr = comm.precv_init(1, 5, STREAM_PARTS, STREAM_PART_BYTES, opts);
            pr.start();
            pr.wait();
            let mut sum = 0u8;
            for p in 0..STREAM_PARTS {
                pr.read_partition(p, |b| {
                    assert!(
                        b.iter().all(|&x| x == p as u8 + 1),
                        "partition {p} payload survived chaos"
                    );
                    sum = sum.wrapping_add(b[0]);
                });
            }
            sum
        }
    })
}

/// SPMD child: seeded `PartData` drops with a retry budget must still
/// land every partition intact. Empty no-op when run as a plain test.
#[test]
fn net_chaos_stream_recovery_child() {
    if MultiprocEnv::from_env().is_none() {
        return;
    }
    stream_workload().expect("bounded resend must recover dropped PartData ranges");
}

/// SPMD child: certain drop with no retries must yield `MessageLost` on
/// both ranks of a streaming transfer. Empty no-op as a plain test.
#[test]
fn net_chaos_stream_lost_child() {
    if MultiprocEnv::from_env().is_none() {
        return;
    }
    match stream_workload() {
        Err(PcommError::MessageLost { .. }) => {}
        other => panic!("expected MessageLost on the streaming wire, got {other:?}"),
    }
}

/// SPMD child: the streaming path must come back clean under the verify
/// layer (the parent arms `PCOMM_VERIFY=1`; a finding turns the run
/// into an error). Empty no-op when run as a plain test.
#[test]
fn net_chaos_stream_verify_child() {
    if MultiprocEnv::from_env().is_none() {
        return;
    }
    stream_workload().expect("streaming must be clean under PCOMM_VERIFY=1");
}

/// SPMD child: drops at p=0.5 with a deep retry budget must still
/// complete with intact data. Empty no-op when run as a plain test.
#[test]
fn net_chaos_recovery_child() {
    if MultiprocEnv::from_env().is_none() {
        return;
    }
    echo_workload().expect("bounded resend must recover dropped frames");
}

/// SPMD child: certain drop with no retries must yield `MessageLost` on
/// both ranks — the sender raises it, the receiver learns it from the
/// abort frame. Empty no-op when run as a plain test.
#[test]
fn net_chaos_lost_child() {
    if MultiprocEnv::from_env().is_none() {
        return;
    }
    let out = echo_workload();
    match out {
        Err(PcommError::MessageLost { src, dst, .. }) => {
            assert_eq!((src, dst), (0, 1), "the dropped message was 0 -> 1");
        }
        other => panic!("expected MessageLost on the wire, got {other:?}"),
    }
}

/// SPMD child: rank 1's process dies mid-run; rank 0, parked in a
/// receive, must get a structured `PeerPanicked` instead of hanging.
/// Empty no-op when run as a plain test.
#[test]
fn net_chaos_kill_child() {
    let Some(env) = MultiprocEnv::from_env() else {
        return;
    };
    let out = Universe::new(2).run(|comm| {
        if comm.rank() == 0 {
            let mut b = [0u8; 8];
            comm.recv_into(Some(1), Some(9), &mut b);
        } else {
            // Simulate a crashed rank: vanish without teardown.
            std::process::exit(42);
        }
    });
    assert_eq!(env.rank, 0, "only rank 0 survives to inspect the result");
    match out {
        Err(PcommError::PeerPanicked { rank, message }) => {
            assert_eq!(rank, 1, "the dead peer is rank 1");
            assert!(
                message.contains("rank process exited")
                    || message.contains("connection")
                    || message.contains("broke"),
                "message names the lost connection: {message}"
            );
        }
        other => panic!("expected PeerPanicked for the dead rank, got {other:?}"),
    }
}

fn spawn_mesh(
    child_test: &str,
    faults: Option<&str>,
    verify: bool,
) -> (std::path::PathBuf, Vec<Child>) {
    let dir = launch::unique_rendezvous_dir().expect("rendezvous dir");
    let spmd = MultiprocEnv {
        rank: 0,
        n_ranks: 2,
        dir: dir.clone(),
        backend: Backend::Uds,
    };
    let exe = std::env::current_exe().expect("test binary path");
    let children = (0..2)
        .map(|rank| {
            let mut cmd = Command::new(&exe);
            cmd.args([child_test, "--exact", "--nocapture"])
                .stdout(Stdio::piped())
                .stderr(Stdio::piped());
            match faults {
                Some(spec) => cmd.env("PCOMM_FAULTS", spec),
                None => cmd.env_remove("PCOMM_FAULTS"),
            };
            if verify {
                cmd.env("PCOMM_VERIFY", "1");
            } else {
                cmd.env_remove("PCOMM_VERIFY");
            }
            spmd.apply_to(&mut cmd, rank);
            cmd.spawn().expect("spawn SPMD child")
        })
        .collect();
    (dir, children)
}

/// Wait for a child with a hard deadline; returns its exit code.
fn wait_code(mut child: Child, what: &str) -> i32 {
    let deadline = Instant::now() + Duration::from_secs(180);
    loop {
        if let Some(status) = child.try_wait().expect("poll child") {
            let code = status.code().unwrap_or(-1);
            if code != 0 && code != 42 {
                let mut err = String::new();
                if let Some(mut s) = child.stderr.take() {
                    let _ = s.read_to_string(&mut err);
                }
                panic!("{what} exited with {code}\n--- stderr ---\n{err}");
            }
            return code;
        }
        if Instant::now() >= deadline {
            let _ = child.kill();
            panic!("{what} hung past the deadline");
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn seeded_drops_over_uds_recover_via_resend() {
    let (dir, children) = spawn_mesh(
        "net_chaos_recovery_child",
        Some("seed=7,drop=0.5,retries=24"),
        false,
    );
    for (rank, child) in children.into_iter().enumerate() {
        assert_eq!(wait_code(child, &format!("rank {rank}")), 0);
    }
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn certain_drop_over_uds_is_message_lost_on_both_ranks() {
    let (dir, children) = spawn_mesh(
        "net_chaos_lost_child",
        Some("seed=1,drop=1.0,retries=0"),
        false,
    );
    for (rank, child) in children.into_iter().enumerate() {
        // Exit 0 means the child saw exactly MessageLost — on both sides.
        assert_eq!(wait_code(child, &format!("rank {rank}")), 0);
    }
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn seeded_part_data_drops_over_uds_recover_via_resend() {
    let (dir, children) = spawn_mesh(
        "net_chaos_stream_recovery_child",
        Some("seed=11,drop=0.5,retries=24"),
        false,
    );
    for (rank, child) in children.into_iter().enumerate() {
        assert_eq!(wait_code(child, &format!("rank {rank}")), 0);
    }
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn certain_part_data_drop_is_message_lost_on_both_ranks() {
    let (dir, children) = spawn_mesh(
        "net_chaos_stream_lost_child",
        Some("seed=3,drop=1.0,retries=0"),
        false,
    );
    for (rank, child) in children.into_iter().enumerate() {
        // Exit 0 means the child saw exactly MessageLost — on both sides.
        assert_eq!(wait_code(child, &format!("rank {rank}")), 0);
    }
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn streaming_transfer_is_clean_under_verify() {
    let (dir, children) = spawn_mesh("net_chaos_stream_verify_child", None, true);
    for (rank, child) in children.into_iter().enumerate() {
        assert_eq!(wait_code(child, &format!("rank {rank}")), 0);
    }
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn killed_rank_process_surfaces_peer_panicked_not_a_hang() {
    let (dir, children) = spawn_mesh("net_chaos_kill_child", None, false);
    let codes: Vec<i32> = children
        .into_iter()
        .enumerate()
        .map(|(rank, child)| wait_code(child, &format!("rank {rank}")))
        .collect();
    assert_eq!(codes[0], 0, "rank 0 must report PeerPanicked and pass");
    assert_eq!(codes[1], 42, "rank 1 died by design");
    let _ = std::fs::remove_dir_all(dir);
}
