//! Boundary behaviour of the eager/rendezvous protocol switch: messages
//! at exactly `eager_max`, one byte either side of it, and — the
//! regression this file pins down — `with_eager_max(0)`, which must
//! route *every* message through rendezvous instead of (as it once did)
//! sending everything eagerly.

use pcomm::core::Universe;
use pcomm::trace::EventKind;

/// Ship one `len`-byte message through a universe with the given eager
/// ceiling and report how it travelled: `(eager_sends, rdv_sends)`.
fn protocol_of(eager_max: usize, len: usize) -> (usize, usize) {
    let (out, data) = Universe::new(2)
        .with_eager_max(eager_max)
        .run_traced(move |comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, &vec![0xA5u8; len]);
            } else {
                let mut buf = vec![0u8; len];
                comm.recv_into(Some(0), Some(7), &mut buf);
                assert!(buf.iter().all(|&b| b == 0xA5), "payload corrupted");
            }
        });
    out.expect("boundary roundtrip must complete");
    let mut eager = 0;
    let mut rdv = 0;
    for e in &data.events {
        match e.kind {
            EventKind::EagerSend { .. } => eager += 1,
            EventKind::RdvSend { .. } => rdv += 1,
            _ => {}
        }
    }
    (eager, rdv)
}

#[test]
fn at_eager_max_stays_eager() {
    let (eager, rdv) = protocol_of(1024, 1024);
    assert_eq!((eager, rdv), (1, 0), "len == eager_max is still eager");
}

#[test]
fn one_below_eager_max_stays_eager() {
    let (eager, rdv) = protocol_of(1024, 1023);
    assert_eq!((eager, rdv), (1, 0), "len < eager_max is eager");
}

#[test]
fn one_above_eager_max_goes_rendezvous() {
    let (eager, rdv) = protocol_of(1024, 1025);
    assert_eq!((eager, rdv), (0, 1), "len > eager_max must rendezvous");
}

#[test]
fn eager_max_zero_forces_rendezvous_for_all_sizes() {
    // Regression: the gate used to read `len <= eager_max`, which made a
    // zero ceiling route everything *eagerly* (0 <= 0). A zero ceiling
    // means "no eager path at all" — even a 1-byte message rendezvouses.
    for len in [1usize, 64, 4096] {
        let (eager, rdv) = protocol_of(0, len);
        assert_eq!(
            (eager, rdv),
            (0, 1),
            "eager_max=0 must force rendezvous for {len}-byte messages"
        );
    }
}
