//! Transport agreement: every one of the eight benchmark strategies must
//! deliver byte-identical data whether the two ranks share an address
//! space (shared-memory fabric), live in separate OS processes wired
//! together over Unix domain sockets, or share a mapped segment over the
//! same-host `ipc` fabric. The receiver folds every received byte into
//! an FNV-1a digest; the digests must match across fabrics, and the
//! multi-process runs must come back clean under `PCOMM_VERIFY=1`
//! (a finding turns the run into an error, which fails the child).

use std::io::Read;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use pcomm::core::strategies::{measure_validated, RealApproach, RealScenario};
use pcomm::net::{launch, Backend, MultiprocEnv};

/// Two scenarios: one all-eager, one whose bulk buffers cross the 64 KiB
/// eager ceiling so the single-message strategy exercises the wire
/// rendezvous (RTS/CTS/RdvData) path.
fn scenarios() -> Vec<RealScenario> {
    vec![
        RealScenario::immediate(2, 2, 96, 2, 2),
        RealScenario::immediate(2, 1, 40 * 1024, 1, 2),
    ]
}

/// Receiver-side digests for every (scenario, approach) pair, in a fixed
/// order both sides of the comparison share.
fn all_digests() -> Vec<u64> {
    scenarios()
        .iter()
        .flat_map(|sc| {
            RealApproach::ALL
                .iter()
                .map(|&a| measure_validated(a, sc).1)
                .collect::<Vec<_>>()
        })
        .collect()
}

/// SPMD child body: re-runs every strategy, now with the `PCOMM_NET_*`
/// environment routing the universe over sockets. The receiving rank
/// writes its digests where the parent can read them. Runs (and returns
/// immediately) as an ordinary empty test when the env is absent.
#[test]
fn net_agreement_child() {
    let Some(env) = MultiprocEnv::from_env() else {
        return;
    };
    let digests = all_digests();
    if env.rank == 1 {
        let lines: String = digests.iter().map(|d| format!("{d:#018x}\n")).collect();
        std::fs::write(env.dir.join("out-1"), lines).expect("write digest file");
    }
}

fn wait_with_deadline(mut child: Child, what: &str) -> std::process::Output {
    let deadline = Instant::now() + Duration::from_secs(180);
    loop {
        match child.try_wait().expect("poll child") {
            Some(status) => {
                let mut stdout = String::new();
                let mut stderr = String::new();
                if let Some(mut s) = child.stdout.take() {
                    let _ = s.read_to_string(&mut stdout);
                }
                if let Some(mut s) = child.stderr.take() {
                    let _ = s.read_to_string(&mut stderr);
                }
                assert!(
                    status.success(),
                    "{what} failed ({status})\n--- stdout ---\n{stdout}\n--- stderr ---\n{stderr}"
                );
                return std::process::Output {
                    status,
                    stdout: stdout.into_bytes(),
                    stderr: stderr.into_bytes(),
                };
            }
            None => {
                assert!(
                    Instant::now() < deadline,
                    "{what} hung past the deadline; killing it"
                );
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

/// Run the SPMD child pair with `extra_env` on both ranks and return
/// the receiver's digests. Verify is always armed: any race/protocol
/// finding fails the child run.
fn wire_digests(extra_env: &[(&str, &str)], what: &str) -> Vec<u64> {
    let dir = launch::unique_rendezvous_dir().expect("rendezvous dir");
    let spmd = MultiprocEnv {
        rank: 0,
        n_ranks: 2,
        dir: dir.clone(),
        backend: Backend::Uds,
    };
    let exe = std::env::current_exe().expect("test binary path");
    let children: Vec<Child> = (0..2)
        .map(|rank| {
            let mut cmd = Command::new(&exe);
            cmd.args(["net_agreement_child", "--exact", "--nocapture"])
                .env("PCOMM_VERIFY", "1")
                .env_remove("PCOMM_FAULTS")
                .stdout(Stdio::piped())
                .stderr(Stdio::piped());
            for (k, v) in extra_env {
                cmd.env(k, v);
            }
            spmd.apply_to(&mut cmd, rank);
            cmd.spawn().expect("spawn SPMD child")
        })
        .collect();
    for (rank, child) in children.into_iter().enumerate() {
        wait_with_deadline(child, &format!("{what} rank {rank} child"));
    }

    let raw = std::fs::read_to_string(dir.join("out-1")).expect("receiver digest file");
    let wire: Vec<u64> = raw
        .lines()
        .map(|l| u64::from_str_radix(l.trim_start_matches("0x"), 16).expect("digest line"))
        .collect();
    let _ = std::fs::remove_dir_all(&dir);
    wire
}

#[test]
fn all_strategies_agree_across_fabrics() {
    // Reference digests on the shared-memory fabric, in this process.
    let local = all_digests();
    let labels: Vec<String> = scenarios()
        .iter()
        .enumerate()
        .flat_map(|(i, _)| {
            RealApproach::ALL
                .iter()
                .map(move |a| format!("scenario {i} / {}", a.label()))
                .collect::<Vec<_>>()
        })
        .collect();

    // The same workload as two OS processes, on every wire fabric the
    // platform supports: UDS streams always, the shared-segment ipc
    // fabric where the raw-syscall layer exists.
    let mut fabrics = vec![("uds", vec![])];
    if pcomm::net::sys::supported() {
        fabrics.push(("ipc", vec![("PCOMM_NET_FABRIC", "ipc")]));
    }
    for (fabric, extra_env) in fabrics {
        let wire = wire_digests(&extra_env, fabric);
        assert_eq!(
            wire.len(),
            local.len(),
            "{fabric}: one digest per (scenario, approach)"
        );
        for ((l, w), label) in local.iter().zip(&wire).zip(&labels) {
            assert_eq!(l, w, "{label}: shared-memory and {fabric} fabrics disagree");
        }
    }
}
