//! Multi-rank integration: both runtimes beyond the two-rank benchmark
//! topology.

use pcomm::core::{part::PartOptions, Universe};
use pcomm::netmodel::MachineConfig;
use pcomm::simcore::Sim;
use pcomm::simmpi::part::{precv_init, psend_init, PartOptions as SimPartOptions};
use pcomm::simmpi::World;

/// Real runtime: a 4-rank partitioned ring delivers every stamp intact.
#[test]
fn real_ring_of_partitioned_sends() {
    let n_ranks = 4;
    let n_parts = 4;
    let part_bytes = 256;
    Universe::new(n_ranks)
        .with_shards(2)
        .run(|comm| {
            let right = (comm.rank() + 1) % comm.size();
            let left = (comm.rank() + comm.size() - 1) % comm.size();
            let ps = comm.psend_init(right, 0, n_parts, part_bytes, PartOptions::default());
            let pr = comm.precv_init(left, 0, n_parts, part_bytes, PartOptions::default());
            for round in 0..5u8 {
                pr.start();
                ps.start();
                for p in 0..n_parts {
                    ps.write_partition(p, |b| b.fill(comm.rank() as u8 * 16 + round));
                    ps.pready(p);
                }
                ps.wait();
                pr.wait();
                for p in 0..n_parts {
                    assert!(
                        pr.partition(p)
                            .iter()
                            .all(|&b| b == left as u8 * 16 + round),
                        "rank {} round {round} partition {p}",
                        comm.rank()
                    );
                }
            }
        })
        .unwrap();
}

/// Real runtime: all-to-one funnel — every rank sends to rank 0 with
/// distinct tags; wildcards on the root drain them all.
#[test]
fn real_all_to_one_funnel() {
    let n_ranks = 5;
    Universe::new(n_ranks)
        .run(|comm| {
            if comm.rank() == 0 {
                let mut seen = vec![false; n_ranks];
                seen[0] = true;
                for _ in 1..n_ranks {
                    let (data, info) = comm.recv_vec(None, None, 16);
                    assert_eq!(data, vec![info.src as u8; 8]);
                    assert!(!seen[info.src], "duplicate from {}", info.src);
                    seen[info.src] = true;
                }
                assert!(seen.iter().all(|&s| s));
            } else {
                comm.send(0, comm.rank() as i64, &[comm.rank() as u8; 8]);
            }
        })
        .unwrap();
}

/// Simulator: a 4-rank world runs two concurrent partitioned channels
/// (0→1 and 2→3) without interference and with deterministic timing.
#[test]
fn sim_concurrent_partitioned_channels() {
    fn run_pair_times() -> (f64, f64) {
        let sim = Sim::new();
        let world = World::new(&sim, MachineConfig::meluxina_quiet(), 4, 2, 3);
        let opts = SimPartOptions {
            first_iteration_cts: false,
            ..SimPartOptions::default()
        };
        let mut done_at = Vec::new();
        for (src, dst) in [(0usize, 1usize), (2, 3)] {
            let ps = psend_init(&world.comm_world(src), dst, 0, 4, 2048, 4, opts.clone());
            let pr = precv_init(&world.comm_world(dst), src, 0, 4, 4, 2048, opts.clone());
            sim.spawn({
                let ps = ps.clone();
                async move {
                    ps.start().await;
                    for p in 0..4 {
                        ps.pready(p).await;
                    }
                    ps.wait().await;
                }
            });
            done_at.push(sim.spawn({
                let sim = sim.clone();
                async move {
                    pr.start().await;
                    pr.wait().await;
                    sim.now().as_us_f64()
                }
            }));
        }
        sim.run();
        (
            done_at[0].try_take().unwrap(),
            done_at[1].try_take().unwrap(),
        )
    }
    let (a, b) = run_pair_times();
    // Disjoint rank pairs use disjoint links: identical completion times.
    assert!((a - b).abs() < 1e-9, "channels interfered: {a} vs {b}");
    // And the whole thing is deterministic.
    let (a2, b2) = run_pair_times();
    assert_eq!(a, a2);
    assert_eq!(b, b2);
}
