//! End-to-end tests of the verification layer (`pcomm-verify`) against
//! both runtimes: golden planted-violation fixtures with provenance
//! assertions, clean-run sweeps under seeded pready jitter, and the
//! cross-runtime `parrived` agreement check.

use pcomm_core::part::PartOptions;
use pcomm_core::{FaultPlan, Universe};
use pcomm_netmodel::MachineConfig;
use pcomm_simcore::Sim;
use pcomm_simmpi::part as simpart;
use pcomm_simmpi::World;
use pcomm_trace::{Event, EventKind};
use pcomm_verify::{analyze, AccessKind, DeadlockFinding, LintKind, Side};

fn ev(ts_ns: u64, rank: u16, kind: EventKind) -> Event {
    Event { ts_ns, rank, kind }
}

// ---------------------------------------------------------------------
// Cross-runtime semantics: `parrived` on a never-started request.
// ---------------------------------------------------------------------

/// MPI defines `MPI_Parrived` on an inactive request as complete
/// (`flag = true`). Both runtimes must agree — the real runtime via its
/// pre-set arrival signals, the simulator via the started-state check.
#[test]
fn parrived_on_inactive_request_agrees_across_runtimes() {
    // Real runtime: init both sides, never start, probe every partition.
    let real = Universe::new(2)
        .run(|comm| {
            if comm.rank() == 0 {
                let _ps = comm.psend_init(1, 3, 4, 64, PartOptions::default());
                true
            } else {
                let pr = comm.precv_init(0, 3, 4, 64, PartOptions::default());
                (0..4).all(|p| pr.parrived(p))
            }
        })
        .unwrap();
    assert!(real[1], "real runtime: inactive request must report true");

    // Simulator, improved path.
    let sim = Sim::new();
    let world = World::new(&sim, MachineConfig::meluxina_quiet(), 2, 1, 1);
    let cs = world.comm_world(0);
    let cr = world.comm_world(1);
    let _ps = simpart::psend_init(&cs, 1, 3, 4, 64, 4, simpart::PartOptions::default());
    let pr = simpart::precv_init(&cr, 0, 3, 4, 4, 64, simpart::PartOptions::default());
    let sim_improved = (0..4).all(|p| pr.parrived(p));

    // Simulator, legacy AM path.
    let opts = simpart::PartOptions {
        path: simpart::PartPath::LegacyAm,
        ..simpart::PartOptions::default()
    };
    let _ps2 = simpart::psend_init(&cs, 1, 4, 4, 64, 4, opts.clone());
    let pr2 = simpart::precv_init(&cr, 0, 4, 4, 4, 64, opts);
    let sim_legacy = (0..4).all(|p| pr2.parrived(p));

    assert_eq!(
        real[1], sim_improved,
        "improved-path simulator disagrees with the real runtime"
    );
    assert_eq!(
        real[1], sim_legacy,
        "legacy-path simulator disagrees with the real runtime"
    );
}

// ---------------------------------------------------------------------
// Clean runs: zero false positives under a seeded jitter sweep.
// ---------------------------------------------------------------------

/// A correct partitioned roundtrip must verify clean under every pready
/// permutation the chaos stream emits: 16 seeds, 2 iterations each.
#[test]
fn real_runtime_roundtrip_clean_across_16_seed_jitter_sweep() {
    for seed in 1..=16u64 {
        let u = Universe::new(2)
            .with_shards(2)
            .with_fault_plan(FaultPlan::seeded(seed).jitter(true));
        let (out, report) = u.run_verified(|comm| {
            if comm.rank() == 0 {
                let ps = comm.psend_init(1, 7, 8, 128, PartOptions::default());
                for _ in 0..2 {
                    ps.start();
                    for p in 0..8 {
                        ps.write_partition(p, |b| b.fill(p as u8));
                    }
                    ps.pready_range(0, 7);
                    ps.wait();
                }
            } else {
                let pr = comm.precv_init(0, 7, 8, 128, PartOptions::default());
                for _ in 0..2 {
                    pr.start();
                    pr.wait();
                }
                assert_eq!(pr.partition(5)[0], 5);
            }
        });
        out.unwrap();
        assert!(report.is_clean(), "seed {seed} false positive: {report}");
        assert!(
            report.stats.verify_events > 0,
            "seed {seed}: nothing traced"
        );
        assert_eq!(report.stats.requests, 1);
    }
}

/// Every link of a ring derives the *same* partitioned ctx (part_ctx is
/// deterministic in parent ctx and tag only), so request identity must
/// fold the sender's rank in — without that, the analyzer merges the
/// links into one request and reports cross-rank "races" between
/// unrelated send buffers.
#[test]
fn ring_links_sharing_a_ctx_are_distinct_requests() {
    let (out, report) = Universe::new(3).run_verified(|comm| {
        let rank = comm.rank();
        let next = (rank + 1) % 3;
        let prev = (rank + 2) % 3;
        let ps = comm.psend_init(next, 11, 4, 64, PartOptions::default());
        let pr = comm.precv_init(prev, 11, 4, 64, PartOptions::default());
        ps.start();
        pr.start();
        for p in 0..4 {
            ps.write_partition(p, |b| b.fill(rank as u8));
            ps.pready(p);
        }
        ps.wait();
        pr.wait();
        assert_eq!(pr.partition(0)[0], prev as u8);
    });
    out.unwrap();
    assert!(
        report.is_clean(),
        "ring link merged into false race: {report}"
    );
    assert_eq!(report.stats.requests, 3, "one request per ring link");
}

/// The consumer-overlap pattern — mid-iteration `read_partition` after a
/// passed arrival check — must not be flagged even without an explicit
/// `parrived` probe on the reading thread.
#[test]
fn mid_iteration_checked_read_is_not_a_false_positive() {
    let (out, report) = Universe::new(2).run_verified(|comm| {
        if comm.rank() == 0 {
            let ps = comm.psend_init(1, 5, 4, 64, PartOptions::default());
            ps.start();
            for p in 0..4 {
                ps.write_partition(p, |b| b.fill(p as u8));
                ps.pready(p);
            }
            ps.wait();
        } else {
            let pr = comm.precv_init(0, 5, 4, 64, PartOptions::default());
            pr.start();
            for p in 0..4 {
                // Spin until the covering message lands, then read while
                // the iteration is still active.
                while !pr.parrived(p) {
                    std::thread::yield_now();
                }
                pr.read_partition(p, |b| assert_eq!(b[0], p as u8));
            }
            pr.wait();
        }
    });
    out.unwrap();
    assert!(report.is_clean(), "consumer overlap flagged: {report}");
}

// ---------------------------------------------------------------------
// Planted violations, real runtime.
// ---------------------------------------------------------------------

/// A second `pready` of one partition in one iteration is rejected by
/// the runtime *and* linted by the analyzer with full provenance.
#[test]
fn double_pready_is_linted_with_provenance() {
    let (out, report) = Universe::new(2).run_verified(|comm| {
        if comm.rank() == 0 {
            let ps = comm.psend_init(1, 9, 2, 64, PartOptions::default());
            ps.start();
            ps.write_partition(0, |b| b.fill(1));
            ps.write_partition(1, |b| b.fill(2));
            ps.pready(0);
            assert!(ps.try_pready(0).is_err(), "second pready must be rejected");
            ps.pready(1);
            ps.wait();
        } else {
            let pr = comm.precv_init(0, 9, 2, 64, PartOptions::default());
            pr.start();
            pr.wait();
        }
    });
    out.unwrap();
    let lint = report
        .lints
        .iter()
        .find(|l| l.kind == LintKind::DoublePready)
        .unwrap_or_else(|| panic!("expected a double-pready lint: {report}"));
    assert_eq!(lint.rank, 0);
    assert_eq!(lint.part, Some(0));
    assert_eq!(lint.iter, 0);
}

// ---------------------------------------------------------------------
// Golden fixtures: synthesized streams through the public `analyze`.
// ---------------------------------------------------------------------

/// A user write landing after the partition's `pready` races the
/// transfer's read at injection; the race pass pins both endpoints and
/// the lint pass flags the ordering violation independently.
#[test]
fn fixture_user_write_after_pready_race() {
    let req = 42u16;
    let events = vec![
        ev(
            0,
            0,
            EventKind::VerifyPartInit {
                req,
                sender: true,
                parts: 1,
                msgs: 1,
            },
        ),
        ev(
            1,
            0,
            EventKind::VerifyLayoutMsg {
                req,
                msg: 0,
                first_spart: 0,
                n_sparts: 1,
                first_rpart: 0,
                n_rparts: 1,
                bytes: 64,
            },
        ),
        ev(
            2,
            0,
            EventKind::VerifyStart {
                req,
                sender: true,
                iter: 0,
                tid: 1,
            },
        ),
        ev(
            3,
            0,
            EventKind::VerifyWrite {
                req,
                part: 0,
                iter: 0,
                tid: 1,
                dur_ns: 1,
            },
        ),
        ev(
            4,
            0,
            EventKind::VerifyPready {
                req,
                part: 0,
                iter: 0,
                tid: 1,
            },
        ),
        // Planted: a second thread rewrites the partition after pready.
        ev(
            5,
            0,
            EventKind::VerifyWrite {
                req,
                part: 0,
                iter: 0,
                tid: 2,
                dur_ns: 1,
            },
        ),
        ev(
            6,
            0,
            EventKind::VerifyMsgSend {
                req,
                msg: 0,
                iter: 0,
                tid: 1,
            },
        ),
        ev(
            7,
            0,
            EventKind::VerifyWaitDone {
                req,
                sender: true,
                iter: 0,
                tid: 1,
            },
        ),
    ];
    let report = analyze(&events);
    let race = report
        .races
        .iter()
        .find(|r| {
            r.first.kind == AccessKind::UserWrite && r.second.kind == AccessKind::TransferRead
        })
        .unwrap_or_else(|| panic!("expected write/transfer-read race: {report}"));
    assert_eq!(race.req, req);
    assert_eq!(race.side, Side::Send);
    assert_eq!(race.part, 0);
    assert_eq!(race.first.tid, 2, "racy endpoint is the planted writer");
    assert_eq!(race.first.seq, 5, "provenance points at the planted write");
    assert!(
        report
            .lints
            .iter()
            .any(|l| l.kind == LintKind::WriteAfterPready && l.part == Some(0)),
        "lint pass must flag the same violation: {report}"
    );
}

/// Two ranks blocked on each other form a wait-for cycle: an exact
/// deadlock verdict with the tag chain, not a heuristic stall.
#[test]
fn fixture_two_rank_tag_cycle_deadlock() {
    let events = vec![
        ev(
            10,
            0,
            EventKind::VerifyBlocked {
                peer: Some(1),
                tag: Some(7),
            },
        ),
        ev(
            11,
            1,
            EventKind::VerifyBlocked {
                peer: Some(0),
                tag: Some(9),
            },
        ),
    ];
    let report = analyze(&events);
    assert_eq!(report.deadlocks.len(), 1, "{report}");
    match &report.deadlocks[0] {
        DeadlockFinding::Cycle { edges } => {
            assert_eq!(edges.len(), 2);
            let ranks: Vec<u16> = edges.iter().map(|e| e.from_rank).collect();
            let mut sorted = ranks.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1]);
            let tags: Vec<Option<i64>> = edges.iter().map(|e| e.tag).collect();
            assert!(tags.contains(&Some(7)) && tags.contains(&Some(9)));
        }
        other => panic!("expected a cycle, got {other}"),
    }
}

/// A blocked rank whose peer is not blocked on it is an orphan wait —
/// the "lost message / missing pready" verdict.
#[test]
fn fixture_orphan_wait_is_not_a_cycle() {
    let events = vec![ev(
        10,
        0,
        EventKind::VerifyBlocked {
            peer: Some(1),
            tag: Some(3),
        },
    )];
    let report = analyze(&events);
    assert_eq!(report.deadlocks.len(), 1);
    match &report.deadlocks[0] {
        DeadlockFinding::Orphan {
            rank, peer, tag, ..
        } => {
            assert_eq!(*rank, 0);
            assert_eq!(*peer, Some(1));
            assert_eq!(*tag, Some(3));
        }
        other => panic!("expected an orphan wait, got {other}"),
    }
}
