//! Randomized tests of the discrete-event kernel: the simulator's
//! correctness guarantees (FIFO fairness, timer ordering, determinism)
//! under randomly generated task structures. Off by default; enable
//! with `cargo test --features proptests`.

#![cfg(feature = "proptests")]

mod prop_util;

use std::cell::RefCell;
use std::rc::Rc;

use prop_util::{cases, usize_in, vec_u64};

use pcomm::simcore::sync::{channel, Barrier, Resource, Semaphore};
use pcomm::simcore::{Dur, Sim};

/// Timers fire in (time, registration) order regardless of the order
/// tasks are spawned or the durations chosen.
#[test]
fn timers_fire_in_time_order() {
    cases(48, |rng| {
        let delays = vec_u64(rng, 1, 40, 0, 1000);
        let sim = Sim::new();
        let fired = Rc::new(RefCell::new(Vec::new()));
        for (i, &d) in delays.iter().enumerate() {
            let s = sim.clone();
            let fired = Rc::clone(&fired);
            sim.spawn(async move {
                s.sleep(Dur::from_ns(d)).await;
                fired.borrow_mut().push((d, i));
            });
        }
        sim.run();
        let log = fired.borrow();
        assert_eq!(log.len(), delays.len());
        for w in log.windows(2) {
            // Non-decreasing times; equal times resolve in spawn order.
            assert!(
                w[0].0 < w[1].0 || (w[0].0 == w[1].0 && w[0].1 < w[1].1),
                "ordering violated: {:?} then {:?}",
                w[0],
                w[1]
            );
        }
    });
}

/// A contended resource serializes: total time equals the sum of the
/// hold durations, and grants happen in request order.
#[test]
fn resource_serializes_exactly() {
    cases(48, |rng| {
        let holds = vec_u64(rng, 1, 20, 1, 50);
        let sim = Sim::new();
        let res = Resource::new(&sim);
        let order = Rc::new(RefCell::new(Vec::new()));
        for (i, &h) in holds.iter().enumerate() {
            let res = res.clone();
            let order = Rc::clone(&order);
            sim.spawn(async move {
                res.occupy(Dur::from_us(h)).await;
                order.borrow_mut().push(i);
            });
        }
        sim.run();
        let total: u64 = holds.iter().sum();
        assert_eq!(sim.now().as_us_f64(), total as f64);
        // FIFO among same-instant requesters = spawn order.
        assert_eq!(order.borrow().clone(), (0..holds.len()).collect::<Vec<_>>());
    });
}

/// Channel delivery preserves send order for any message count and any
/// sender pacing.
#[test]
fn channel_fifo() {
    cases(48, |rng| {
        let paces = vec_u64(rng, 1, 60, 0, 100);
        let sim = Sim::new();
        let (tx, mut rx) = channel::<usize>();
        let s = sim.clone();
        let paces2 = paces.clone();
        sim.spawn(async move {
            for (i, &p) in paces2.iter().enumerate() {
                s.sleep(Dur::from_ns(p)).await;
                tx.send(i);
            }
        });
        let got = sim.spawn({
            let n = paces.len();
            async move {
                let mut v = Vec::new();
                for _ in 0..n {
                    v.push(rx.recv().await.unwrap());
                }
                v
            }
        });
        sim.run();
        assert_eq!(
            got.try_take().unwrap(),
            (0..paces.len()).collect::<Vec<_>>()
        );
    });
}

/// A semaphore with k permits bounds concurrency at exactly k and the
/// makespan matches the greedy schedule bound.
#[test]
fn semaphore_bounds_concurrency() {
    cases(48, |rng| {
        let permits = usize_in(rng, 1, 6);
        let jobs = vec_u64(rng, 1, 25, 1, 30);
        let sim = Sim::new();
        let sem = Semaphore::new(permits);
        let active = Rc::new(RefCell::new((0usize, 0usize))); // (now, max)
        for &j in &jobs {
            let sem = sem.clone();
            let s = sim.clone();
            let active = Rc::clone(&active);
            sim.spawn(async move {
                let _g = sem.acquire().await;
                {
                    let mut a = active.borrow_mut();
                    a.0 += 1;
                    a.1 = a.1.max(a.0);
                }
                s.sleep(Dur::from_us(j)).await;
                active.borrow_mut().0 -= 1;
            });
        }
        sim.run();
        let (now, peak) = *active.borrow();
        assert_eq!(now, 0);
        assert!(
            peak <= permits,
            "concurrency {peak} exceeded permits {permits}"
        );
        // Work conservation: makespan >= total/permits and >= longest job.
        let total: u64 = jobs.iter().sum();
        let longest = *jobs.iter().max().unwrap();
        let makespan = sim.now().as_us_f64();
        assert!(makespan + 1e-9 >= total as f64 / permits as f64);
        assert!(makespan + 1e-9 >= longest as f64);
    });
}

/// Barriers synchronize any team size: all release times equal the
/// slowest arrival, every cycle.
#[test]
fn barrier_release_at_max() {
    cases(48, |rng| {
        let arrivals = vec_u64(rng, 2, 16, 0, 500);
        let sim = Sim::new();
        let b = Barrier::new(arrivals.len());
        let releases = Rc::new(RefCell::new(Vec::new()));
        for &a in &arrivals {
            let s = sim.clone();
            let b = b.clone();
            let rel = Rc::clone(&releases);
            sim.spawn(async move {
                s.sleep(Dur::from_ns(a)).await;
                b.wait().await;
                rel.borrow_mut().push(s.now().as_ps() as f64 / 1e3);
            });
        }
        sim.run();
        let max = *arrivals.iter().max().unwrap() as f64;
        for &r in releases.borrow().iter() {
            assert_eq!(r, max);
        }
    });
}

/// Whole-sim determinism: a random mixed workload produces the same
/// final virtual time and poll count on every run.
#[test]
fn mixed_workload_deterministic() {
    fn build(jobs: &[(u64, u64)]) -> (f64, u64) {
        let sim = Sim::new();
        let res = Resource::new(&sim);
        let b = Barrier::new(jobs.len());
        for &(delay, hold) in jobs {
            let s = sim.clone();
            let res = res.clone();
            let b = b.clone();
            sim.spawn(async move {
                s.sleep(Dur::from_ns(delay)).await;
                res.occupy(Dur::from_us(hold)).await;
                b.wait().await;
            });
        }
        let report = sim.try_run();
        (report.finished_at.as_us_f64(), report.polls)
    }

    cases(32, |rng| {
        let delays = vec_u64(rng, 1, 20, 0, 200);
        let jobs: Vec<(u64, u64)> = delays.iter().map(|&d| (d, 1 + d % 39)).collect();
        assert_eq!(build(&jobs), build(&jobs));
    });
}
