//! End-to-end chaos tests on the real runtime: a deadlock must come back
//! as a structured `StallReport` instead of a hang, seeded fault plans
//! must reproduce bit-for-bit, bounded retries must recover dropped
//! messages (and give up cleanly when they can't), and misuse must
//! surface as `PcommError::Misuse` — all through the public
//! `Universe::run` API, the way a user sees it.

use std::sync::Mutex;

use pcomm::core::{FaultKind, FaultPlan, PcommError, Universe};
use pcomm::trace::EventKind;

/// `Universe::run` reads `PCOMM_FAULTS` / `PCOMM_WATCHDOG_MS`; serialize
/// the tests so the env test can't leak a plan into the others.
static ENV_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn deadlock_returns_stall_report_instead_of_hanging() {
    let _g = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Rank 0 posts a receive rank 1 will never answer; rank 1 returns
    // immediately. Without the watchdog this parks rank 0 forever (also
    // on a 1-CPU box: the waiter futex-parks, it doesn't spin).
    let err = Universe::new(2)
        .with_watchdog_ms(300)
        .run(|comm| {
            if comm.rank() == 0 {
                let mut b = [0u8; 8];
                comm.recv_into(Some(1), Some(42), &mut b);
            }
        })
        .unwrap_err();
    let report = err.stall_report().expect("deadlock must be a Stall");
    assert_eq!(report.watchdog_ms, 300);
    assert!(report.quiet_ms >= 300);
    assert!(
        report.finished_ranks.contains(&1),
        "rank 1 returned before the stall: {report}"
    );
    // The report names the blocked receive and its tag.
    assert!(
        report
            .blocked
            .iter()
            .any(|b| b.rank == 0 && b.tag == Some(42)),
        "blocked waits must name tag 42: {report}"
    );
    assert!(
        report
            .unmatched_posted
            .iter()
            .any(|q| q.rank == 0 && q.tag == Some(42)),
        "unmatched posted recv must show tag 42: {report}"
    );
}

/// The chaos workload the reproducibility tests run: 24 tagged eager
/// messages rank 0 → rank 1, echoed back once at the end.
#[allow(clippy::type_complexity)]
fn chaos_workload(plan: FaultPlan) -> (Result<Vec<u8>, PcommError>, Vec<(u16, EventKind)>) {
    let (out, data) = Universe::new(2).with_fault_plan(plan).run_traced(|comm| {
        if comm.rank() == 0 {
            for tag in 0..24 {
                comm.send(1, tag, &[tag as u8; 32]);
            }
            let mut b = [0u8; 1];
            comm.recv_into(Some(1), Some(99), &mut b);
            b[0]
        } else {
            let mut sum = 0u8;
            let mut b = [0u8; 32];
            for tag in 0..24 {
                comm.recv_into(Some(0), Some(tag), &mut b);
                assert!(b.iter().all(|&x| x == tag as u8), "payload survived chaos");
                sum = sum.wrapping_add(b[0]);
            }
            comm.send(0, 99, &[sum]);
            sum
        }
    });
    let faults = data
        .events
        .into_iter()
        .filter(|e| {
            matches!(
                e.kind,
                EventKind::FaultInjected { .. } | EventKind::RetryAttempt { .. }
            )
        })
        .map(|e| (e.rank, e.kind))
        .collect();
    (out, faults)
}

#[test]
fn seeded_fault_plan_is_bit_for_bit_reproducible() {
    let _g = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let plan = FaultPlan::seeded(42)
        .drops(0.25)
        .delays(0.2, 50)
        .retries(16);
    let (out_a, faults_a) = chaos_workload(plan.clone());
    let (out_b, faults_b) = chaos_workload(plan);
    assert_eq!(out_a.unwrap(), out_b.unwrap(), "results agree under chaos");
    assert!(
        !faults_a.is_empty(),
        "p=0.45 over 25 messages must inject something"
    );
    assert_eq!(
        faults_a, faults_b,
        "same seed + same workload = same fault sequence"
    );
    // A different seed steers differently.
    let (_, faults_c) = chaos_workload(
        FaultPlan::seeded(43)
            .drops(0.25)
            .delays(0.2, 50)
            .retries(16),
    );
    assert_ne!(faults_a, faults_c, "the seed must drive the fault stream");
}

#[test]
fn drop_retry_recovers_the_data() {
    let _g = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Half of all attempts drop; a 24-deep retry budget makes loss of
    // any message effectively impossible, so the run must complete with
    // intact data and visible retries.
    let plan = FaultPlan::seeded(7).drops(0.5).retries(24);
    let (out, faults) = chaos_workload(plan);
    out.expect("retries must recover every dropped message");
    assert!(
        faults
            .iter()
            .any(|(_, k)| matches!(k, EventKind::RetryAttempt { .. })),
        "p=0.5 drops must force at least one resend"
    );
    assert!(
        faults.iter().any(|(_, k)| matches!(
            k,
            EventKind::FaultInjected {
                fault: FaultKind::Drop,
                ..
            }
        )),
        "drops must be traced"
    );
}

#[test]
fn certain_drop_exhausts_retries_into_message_lost() {
    let _g = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let err = Universe::new(2)
        .with_fault_plan(FaultPlan::seeded(3).drops(1.0).retries(2))
        .run(|comm| {
            if comm.rank() == 0 {
                comm.send(1, 5, &[1, 2, 3, 4]);
            } else {
                let mut b = [0u8; 4];
                comm.recv_into(Some(0), Some(5), &mut b);
            }
        })
        .unwrap_err();
    match err {
        PcommError::MessageLost {
            src,
            dst,
            tag,
            attempts,
        } => {
            assert_eq!((src, dst, tag), (0, 1, 5));
            assert_eq!(attempts, 3, "1 original + 2 retries");
        }
        other => panic!("expected MessageLost, got {other}"),
    }
}

#[test]
fn oversized_message_is_misuse_not_a_panic() {
    let _g = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Rank 0's 64-byte eager message lands in rank 1's 8-byte buffer:
    // an API-contract violation the fabric reports instead of tearing
    // down the process.
    let err = Universe::new(2)
        .run(|comm| {
            if comm.rank() == 0 {
                comm.send(1, 3, &[9u8; 64]);
            } else {
                let mut b = [0u8; 8];
                comm.recv_into(Some(0), Some(3), &mut b);
            }
        })
        .unwrap_err();
    match err {
        PcommError::Misuse { detail, .. } => {
            assert!(detail.contains("overflows"), "{detail}");
        }
        other => panic!("expected Misuse, got {other}"),
    }
}

#[test]
fn pcomm_faults_env_attaches_a_plan() {
    let _g = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // A certain-drop spec through the environment: the run must consult
    // it and fail with MessageLost, proving the env hook reaches the
    // fabric. (retries=0: the first drop is final.)
    std::env::set_var("PCOMM_FAULTS", "seed=1,drop=1.0,retries=0");
    let out = Universe::new(2).run(|comm| {
        if comm.rank() == 0 {
            comm.send(1, 7, &[0u8; 16]);
        } else {
            let mut b = [0u8; 16];
            comm.recv_into(Some(0), Some(7), &mut b);
        }
    });
    std::env::remove_var("PCOMM_FAULTS");
    assert!(
        matches!(out, Err(PcommError::MessageLost { tag: 7, .. })),
        "env-attached plan must drop the message: {out:?}"
    );
}

#[test]
fn explicit_plan_beats_env_plan() {
    let _g = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // A builder-supplied no-op plan must win over a hostile env spec.
    std::env::set_var("PCOMM_FAULTS", "seed=1,drop=1.0,retries=0");
    let out = Universe::new(2)
        .with_fault_plan(FaultPlan::seeded(0))
        .run(|comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, &[5u8; 16]);
            } else {
                let mut b = [0u8; 16];
                comm.recv_into(Some(0), Some(7), &mut b);
                assert_eq!(b[0], 5);
            }
        });
    std::env::remove_var("PCOMM_FAULTS");
    out.expect("builder plan (no faults) must override the environment");
}
