//! Stress tests of the real fabric: exactly-once delivery under
//! concurrent senders, wildcard receivers, and mixed protocols.

use std::sync::atomic::{AtomicU64, Ordering};

use pcomm::core::Universe;
use pcomm::prng::{Rng64, Xoshiro256pp};

/// Many concurrent senders with distinct tags, wildcard receivers: every
/// message is delivered exactly once and the payload sum is preserved.
#[test]
fn exactly_once_under_wildcard_storm() {
    let n_senders = 6;
    let msgs_per_sender = 40;
    let sent_sum = AtomicU64::new(0);
    let recv_sum = AtomicU64::new(0);
    Universe::new(2)
        .with_shards(1)
        .run(|comm| {
            if comm.rank() == 0 {
                std::thread::scope(|s| {
                    for t in 0..n_senders {
                        let comm = comm.clone();
                        let sent_sum = &sent_sum;
                        s.spawn(move || {
                            let mut rng = Xoshiro256pp::seed_from_u64(t as u64);
                            for i in 0..msgs_per_sender {
                                let val = (rng.next_bounded(200) + 1) as u8;
                                sent_sum.fetch_add(val as u64, Ordering::Relaxed);
                                comm.send(1, (t * 1000 + i) as i64, &[val]);
                            }
                        });
                    }
                });
            } else {
                // Two wildcard receiver threads drain everything.
                std::thread::scope(|s| {
                    for _ in 0..2 {
                        let comm = comm.clone();
                        let recv_sum = &recv_sum;
                        s.spawn(move || {
                            for _ in 0..(n_senders * msgs_per_sender / 2) {
                                let mut b = [0u8; 1];
                                comm.recv_into(None, None, &mut b);
                                recv_sum.fetch_add(b[0] as u64, Ordering::Relaxed);
                            }
                        });
                    }
                });
            }
        })
        .unwrap();
    assert_eq!(
        sent_sum.load(Ordering::Relaxed),
        recv_sum.load(Ordering::Relaxed),
        "messages lost or duplicated"
    );
}

/// Mixed eager and rendezvous messages interleaved on one channel keep
/// FIFO order and integrity.
#[test]
fn mixed_protocol_fifo() {
    let sizes = [16usize, 100_000, 64, 70_000, 8, 90_000];
    Universe::new(2)
        .with_eager_max(64 * 1024)
        .run(|comm| {
            if comm.rank() == 0 {
                for (i, &len) in sizes.iter().enumerate() {
                    let payload = vec![i as u8 + 1; len];
                    comm.send(1, 0, &payload);
                }
            } else {
                for (i, &len) in sizes.iter().enumerate() {
                    let mut buf = vec![0u8; len];
                    let info = comm.recv_into(Some(0), Some(0), &mut buf);
                    assert_eq!(info.len, len, "message {i} size mismatch");
                    assert!(
                        buf.iter().all(|&b| b == i as u8 + 1),
                        "message {i} corrupted"
                    );
                }
            }
        })
        .unwrap();
}

/// Rendezvous backpressure: many large sends queue as unexpected RTSs;
/// late receivers still drain them all in order.
#[test]
fn rendezvous_backlog_drains() {
    let n = 8;
    let len = 200_000;
    Universe::new(2)
        .run(|comm| {
            if comm.rank() == 0 {
                std::thread::scope(|s| {
                    // Each send blocks until matched; issue them from separate
                    // threads so they all become pending at once.
                    for i in 0..n {
                        let comm = comm.clone();
                        s.spawn(move || {
                            let payload = vec![i as u8; len];
                            comm.send(1, i as i64, &payload);
                        });
                    }
                });
            } else {
                std::thread::sleep(std::time::Duration::from_millis(20));
                for i in 0..n {
                    let mut buf = vec![0u8; len];
                    comm.recv_into(Some(0), Some(i as i64), &mut buf);
                    assert!(buf.iter().all(|&b| b == i as u8));
                }
            }
        })
        .unwrap();
}

/// High-churn persistent requests across many iterations do not leak
/// matches (counts line up exactly).
#[test]
fn persistent_churn_counts() {
    let iters = 200;
    Universe::new(2)
        .run(|comm| {
            let matched_before = comm.matched_messages();
            if comm.rank() == 0 {
                let ps = comm.send_init(1, 0, 32);
                for i in 0..iters {
                    ps.write(|b| b.fill(i as u8));
                    ps.start();
                    ps.wait();
                }
            } else {
                let pr = comm.recv_init(0, 0, 32);
                for i in 0..iters {
                    pr.start();
                    let info = pr.wait();
                    assert_eq!(info.len, 32);
                    assert_eq!(pr.last_info(), Some(info));
                    pr.read(|b| assert!(b.iter().all(|&x| x == i as u8)));
                }
            }
            comm.barrier();
            let matched_after = comm.matched_messages();
            assert_eq!(
                matched_after - matched_before,
                iters as u64,
                "match count mismatch"
            );
        })
        .unwrap();
}
