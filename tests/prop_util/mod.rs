//! Deterministic harness for the randomized (property-style) tests.
//!
//! Each case gets an RNG seeded from `BASE_SEED` and the case index, so
//! any failure replays exactly; the harness reports the failing case
//! number after the panic message of the assertion that tripped.

// Each test binary compiles this module separately and uses a subset.
#![allow(dead_code)]

use pcomm::prng::{Rng64, Xoshiro256pp};

pub const BASE_SEED: u64 = 0x5eed_cafe_f00d_0001;

/// Run `n` randomized cases of `f`.
pub fn cases<F>(n: u64, f: F)
where
    F: Fn(&mut Xoshiro256pp),
{
    for case in 0..n {
        let mut rng =
            Xoshiro256pp::seed_from_u64(BASE_SEED ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut rng)));
        if run.is_err() {
            panic!("randomized case {case}/{n} failed (BASE_SEED {BASE_SEED:#x})");
        }
    }
}

/// Uniform `usize` in `[lo, hi)`.
pub fn usize_in(rng: &mut impl Rng64, lo: usize, hi: usize) -> usize {
    lo + rng.next_bounded((hi - lo) as u64) as usize
}

/// Uniform `u64` in `[lo, hi)`.
pub fn u64_in(rng: &mut impl Rng64, lo: u64, hi: u64) -> u64 {
    lo + rng.next_bounded(hi - lo)
}

/// Vector of uniform `u64`s in `[lo, hi)`, with length in `[min_len, max_len)`.
pub fn vec_u64(rng: &mut impl Rng64, min_len: usize, max_len: usize, lo: u64, hi: u64) -> Vec<u64> {
    let len = usize_in(rng, min_len, max_len);
    (0..len).map(|_| u64_in(rng, lo, hi)).collect()
}

/// `Some(value in [lo, hi))` half the time, else `None`.
pub fn maybe_usize(rng: &mut impl Rng64, lo: usize, hi: usize) -> Option<usize> {
    if rng.next_u64() & 1 == 0 {
        None
    } else {
        Some(usize_in(rng, lo, hi))
    }
}
