//! Integration tests spanning the real runtime: stress, data integrity
//! across random ready orders, and qualitative agreement with the paper.

use std::sync::Arc;

use pcomm::core::part::PartOptions;
use pcomm::core::strategies::{measure, RealApproach, RealScenario};
use pcomm::core::Universe;
use pcomm::prng::{Rng64, Xoshiro256pp};

/// Random pready orders across threads and iterations never lose or
/// corrupt a partition.
#[test]
fn random_ready_orders_are_safe() {
    let n_threads = 4;
    let theta = 4;
    let n_parts = n_threads * theta;
    let part_bytes = 512;
    let iters = 25;
    Universe::new(2)
        .with_shards(4)
        .run(|comm| {
            if comm.rank() == 0 {
                let ps = comm.psend_init(1, 0, n_parts, part_bytes, PartOptions::default());
                let mut rng = Xoshiro256pp::seed_from_u64(1);
                for it in 0..iters {
                    // Random assignment of partitions to threads each round.
                    let mut order: Vec<usize> = (0..n_parts).collect();
                    rng.shuffle(&mut order);
                    let chunks: Vec<Vec<usize>> = order.chunks(theta).map(|c| c.to_vec()).collect();
                    ps.start();
                    std::thread::scope(|s| {
                        for chunk in &chunks {
                            let ps = ps.clone();
                            s.spawn(move || {
                                for &p in chunk {
                                    ps.write_partition(p, |b| b.fill((it as usize * 31 + p) as u8));
                                    ps.pready(p);
                                }
                            });
                        }
                    });
                    ps.wait();
                }
            } else {
                let pr = comm.precv_init(0, 0, n_parts, part_bytes, PartOptions::default());
                for it in 0..iters {
                    pr.start();
                    pr.wait();
                    for p in 0..n_parts {
                        let expect = (it as usize * 31 + p) as u8;
                        assert!(
                            pr.partition(p).iter().all(|&b| b == expect),
                            "iter {it}, partition {p} corrupted"
                        );
                    }
                }
            }
        })
        .unwrap();
}

/// Aggregated and non-aggregated paths deliver identical data.
#[test]
fn aggregation_preserves_data() {
    for aggr in [None, Some(1024), Some(4096), Some(1 << 20)] {
        let opts = PartOptions {
            aggr_size: aggr,
            ..PartOptions::default()
        };
        Universe::new(2)
            .run(move |comm| {
                let n_parts = 16;
                let part_bytes = 768;
                if comm.rank() == 0 {
                    let ps = comm.psend_init(1, 0, n_parts, part_bytes, opts.clone());
                    ps.start();
                    for p in 0..n_parts {
                        ps.write_partition(p, |b| {
                            for (i, x) in b.iter_mut().enumerate() {
                                *x = ((p * 7 + i) % 251) as u8;
                            }
                        });
                        ps.pready(p);
                    }
                    ps.wait();
                } else {
                    let pr = comm.precv_init(0, 0, n_parts, part_bytes, opts.clone());
                    pr.start();
                    pr.wait();
                    for p in 0..n_parts {
                        let data = pr.partition(p);
                        for (i, &x) in data.iter().enumerate() {
                            assert_eq!(x as usize, (p * 7 + i) % 251, "p{p} i{i} aggr {aggr:?}");
                        }
                    }
                }
            })
            .unwrap();
    }
}

/// Legacy and improved paths deliver the same bytes.
#[test]
fn legacy_and_improved_agree_on_data() {
    for legacy in [false, true] {
        let opts = PartOptions {
            legacy_single_message: legacy,
            ..PartOptions::default()
        };
        Universe::new(2)
            .run(move |comm| {
                if comm.rank() == 0 {
                    let ps = comm.psend_init(1, 0, 8, 333, opts.clone());
                    ps.start();
                    for p in 0..8 {
                        ps.write_partition(p, |b| b.fill(p as u8 * 3));
                        ps.pready(p);
                    }
                    ps.wait();
                } else {
                    let pr = comm.precv_init(0, 0, 8, 333, opts.clone());
                    pr.start();
                    pr.wait();
                    for p in 0..8 {
                        assert!(pr.partition(p).iter().all(|&b| b == p as u8 * 3));
                    }
                }
            })
            .unwrap();
    }
}

/// All eight real strategies complete a mixed workload with delays.
#[test]
fn all_real_strategies_with_delays() {
    let mut sc = RealScenario::immediate(2, 2, 1024, 2, 3);
    sc.delays_us = vec![0.0, 30.0, 10.0, 50.0];
    for a in RealApproach::ALL {
        let times = measure(a, &sc);
        assert_eq!(times.len(), 3, "{a:?}");
    }
}

/// The real fabric keeps per-channel FIFO even under concurrent senders
/// on different communicators.
#[test]
fn concurrent_channels_keep_fifo() {
    Universe::new(2)
        .with_shards(4)
        .run(|comm| {
            let n_chans = 4;
            let per_chan = 50;
            let comms: Vec<_> = (0..n_chans).map(|_| comm.dup()).collect();
            if comm.rank() == 0 {
                std::thread::scope(|s| {
                    for (c, cm) in comms.iter().enumerate() {
                        s.spawn(move || {
                            for i in 0..per_chan {
                                cm.send(1, 9, &[(c * per_chan + i) as u8]);
                            }
                        });
                    }
                });
            } else {
                std::thread::scope(|s| {
                    for (c, cm) in comms.iter().enumerate() {
                        s.spawn(move || {
                            for i in 0..per_chan {
                                let mut b = [0u8; 1];
                                cm.recv_into(Some(0), Some(9), &mut b);
                                assert_eq!(
                                    b[0] as usize,
                                    c * per_chan + i,
                                    "channel {c} out of order"
                                );
                            }
                        });
                    }
                });
            }
        })
        .unwrap();
}

/// Partitioned + RMA coexist on one fabric.
#[test]
fn mixed_partitioned_and_rma_traffic() {
    Universe::new(2)
        .run(|comm| {
            if comm.rank() == 0 {
                let win = Arc::new(comm.win_create_origin(1, 4096));
                let ps = comm.psend_init(1, 1, 4, 256, PartOptions::default());
                for _ in 0..5 {
                    win.start_epoch();
                    win.put(0, &[0xAB; 4096]);
                    win.complete_epoch();
                    ps.start();
                    for p in 0..4 {
                        ps.pready(p);
                    }
                    ps.wait();
                }
            } else {
                let win = comm.win_create_target(0, 4096);
                let pr = comm.precv_init(0, 1, 4, 256, PartOptions::default());
                for _ in 0..5 {
                    win.post();
                    win.wait_epoch();
                    pr.start();
                    pr.wait();
                }
                win.read(|b| assert!(b.iter().all(|&x| x == 0xAB)));
            }
        })
        .unwrap();
}
