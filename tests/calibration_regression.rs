//! Calibration regression: pin the quiet-machine (noise-free) simulator
//! values that EXPERIMENTS.md reports, so any change to the cost model or
//! to the runtime's control flow that would silently shift the figures is
//! caught here.
//!
//! Tolerances are tight (±2%) because the quiet machine is deterministic;
//! an intentional recalibration should update these pins *and*
//! EXPERIMENTS.md together.

use pcomm::netmodel::MachineConfig;
use pcomm::simcore::Dur;
use pcomm::simmpi::scenario::{run_scenario, Approach, Scenario};

fn steady_us(approach: Approach, sc: &Scenario, n_vcis: usize) -> f64 {
    let times = run_scenario(&MachineConfig::meluxina_quiet(), n_vcis, 0, approach, sc);
    times.last().unwrap().as_us_f64()
}

fn assert_close(actual: f64, pinned: f64, what: &str) {
    let rel = (actual - pinned).abs() / pinned;
    assert!(
        rel < 0.02,
        "{what}: {actual:.4} us drifted from pinned {pinned:.4} us ({:.1}%)",
        rel * 100.0
    );
}

/// Fig. 4 anchor points (1 thread, 1 partition).
#[test]
fn fig4_anchors() {
    let sc = |bytes| Scenario::immediate(1, 1, bytes, 3);
    // 16 B short-protocol latencies.
    assert_close(
        steady_us(Approach::PtpSingle, &sc(16), 1),
        2.121,
        "single@16B",
    );
    assert_close(steady_us(Approach::PtpPart, &sc(16), 1), 2.171, "part@16B");
    assert_close(
        steady_us(Approach::PtpPartOld, &sc(16), 1),
        3.644,
        "old@16B",
    );
    assert_close(
        steady_us(Approach::RmaSinglePassive, &sc(16), 1),
        6.331,
        "rma-passive@16B",
    );
    assert_close(
        steady_us(Approach::RmaSingleActive, &sc(16), 1),
        4.640,
        "rma-active@16B",
    );
    // 16 MiB bandwidth regime: everything near the 671 us wire time.
    let wire = (16u64 << 20) as f64 / 25e9 * 1e6;
    for a in [Approach::PtpPart, Approach::PtpSingle, Approach::PtpMany] {
        let t = steady_us(a, &sc(16 << 20), 1);
        assert!(
            t > wire && t < wire * 1.02,
            "{a:?}@16MiB: {t} vs wire {wire}"
        );
    }
}

/// Protocol switch steps (Fig. 4): short→bcopy and bcopy→rendezvous.
#[test]
fn protocol_switch_anchors() {
    let sc = |bytes| Scenario::immediate(1, 1, bytes, 3);
    let t1k = steady_us(Approach::PtpSingle, &sc(1024), 1);
    let t2k = steady_us(Approach::PtpSingle, &sc(2048), 1);
    let t8k = steady_us(Approach::PtpSingle, &sc(8192), 1);
    let t16k = steady_us(Approach::PtpSingle, &sc(16384), 1);
    // bcopy adds two copies (~0.17 us each at 2 KiB).
    assert!(t2k - t1k > 0.25, "bcopy step too small: {t1k} → {t2k}");
    // Rendezvous adds an RTS/CTS round trip (~2.7 us) minus the copies.
    assert!(
        t16k - t8k > 1.0,
        "rendezvous step too small: {t8k} → {t16k}"
    );
}

/// Fig. 5/6 contention anchors.
#[test]
fn contention_anchors() {
    let sc = Scenario::immediate(32, 1, 512, 3); // 16 KiB total
    let single_1 = steady_us(Approach::PtpSingle, &sc, 1);
    let part_1 = steady_us(Approach::PtpPart, &sc, 1);
    let part_32 = steady_us(Approach::PtpPart, &sc, 32);
    let many_32 = steady_us(Approach::PtpMany, &sc, 32);
    let ratio_1 = part_1 / single_1;
    let ratio_32 = part_32 / single_1;
    assert!(
        (25.0..35.0).contains(&ratio_1),
        "1-VCI contention factor {ratio_1} (paper ≈30)"
    );
    assert!(
        (2.0..5.0).contains(&ratio_32),
        "32-VCI residual factor {ratio_32} (paper ≈4)"
    );
    assert!(
        many_32 < single_1 * 1.2,
        "many with per-thread VCIs must reach single: {many_32} vs {single_1}"
    );
}

/// Fig. 7 aggregation anchors.
#[test]
fn aggregation_anchors() {
    let mut sc = Scenario::immediate(4, 32, 512, 3); // 64 KiB total
    let single = steady_us(Approach::PtpSingle, &sc, 1);
    let noag = steady_us(Approach::PtpPart, &sc, 1);
    sc.aggr_size = Some(16384);
    let ag = steady_us(Approach::PtpPart, &sc, 1);
    let f_noag = noag / single;
    let f_ag = ag / single;
    assert!(
        (9.0..17.0).contains(&f_noag),
        "no-aggregation factor {f_noag} (paper ≈10)"
    );
    assert!(
        (2.0..4.0).contains(&f_ag),
        "aggregated factor {f_ag} (paper ≈3)"
    );
}

/// Fig. 8 early-bird anchor.
#[test]
fn early_bird_anchor() {
    let part_bytes = 16 << 20;
    let gamma = 1e-10; // 100 µs/MB
    let mut sc = Scenario::immediate(4, 1, part_bytes, 3);
    sc.delays[3] = Dur::from_secs_f64(gamma * part_bytes as f64);
    let gain = steady_us(Approach::PtpSingle, &sc, 1) / steady_us(Approach::PtpPart, &sc, 1);
    assert!(
        (2.55..2.67).contains(&gain),
        "early-bird gain {gain} (paper ≈2.54, theory 2.667)"
    );
}
